"""Certificate-gated process parallelism.

:func:`parallel_map` is the library's only sanctioned way to fan work
out across processes, and it refuses to fan out a function that the
static effect analysis has not certified parallel-safe.  The
certificate is the JSON document emitted by ``repro lint --effects
--certificate out.json`` (see :mod:`repro.lint.effects`): for every
solver entry point and every ``@effects``-declared function it records
the interprocedurally inferred effect set and a ``parallel_safe``
verdict.  Gating at dispatch time turns "this refactor quietly added a
global write to a pooled worker" from a heisenbug into an immediate,
attributable failure.

This module deliberately consumes the certificate as a plain JSON
document and never imports :mod:`repro.lint` — the lint tier sits at
the top of the layer order and the runtime gate near the bottom, so the
certificate file is the one-way bridge between them.

Typical use::

    from repro.parallel import load_certificate, parallel_map

    certificate = load_certificate("certificate.json")
    results = parallel_map(worker, jobs, certificate=certificate)

With ``on_uncertified="serial"`` an uncertified callable degrades to an
ordinary in-process map with a :class:`UserWarning` instead of raising
:class:`~repro.exceptions.ParallelSafetyError`.
"""

from __future__ import annotations

import functools
import json
import os
import warnings
from collections.abc import Iterable, Mapping
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any, Callable, TypeVar

from .exceptions import ParallelSafetyError, ValidationError

__all__ = [
    "CERTIFICATE_ENV_VAR",
    "certificate_entry",
    "load_certificate",
    "parallel_map",
    "resolve_qualified_name",
]

_T = TypeVar("_T")
_R = TypeVar("_R")

#: Environment variable consulted when no certificate is passed explicitly.
CERTIFICATE_ENV_VAR = "REPRO_PARALLEL_CERTIFICATE"

#: The ``kind`` discriminator of a parallel-safety certificate document.
#: Kept in sync with ``repro.lint.effects.CERTIFICATE_KIND`` (the lint
#: tier owns the schema; this module only recognises it).
_CERTIFICATE_KIND = "repro-parallel-safety-certificate"


def load_certificate(
    source: Mapping[str, Any] | str | Path | None = None,
) -> dict[str, Any] | None:
    """Load a parallel-safety certificate from *source*.

    *source* may be an already-parsed certificate mapping, a path to the
    JSON file written by ``repro lint --certificate``, or ``None`` — in
    which case the :data:`CERTIFICATE_ENV_VAR` environment variable is
    consulted and ``None`` is returned when it is unset.  A present but
    malformed certificate raises
    :class:`~repro.exceptions.ValidationError`: a bad certificate must
    never be mistaken for "no certificate" and silently disable the
    gate's approval path.
    """
    if source is None:
        env = os.environ.get(CERTIFICATE_ENV_VAR)
        if not env:
            return None
        source = env
    if isinstance(source, Mapping):
        document: Any = dict(source)
    else:
        path = Path(source)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ValidationError(
                f"cannot read parallel-safety certificate {str(path)!r}: {exc}"
            ) from exc
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(
                f"parallel-safety certificate {str(path)!r} is not valid "
                f"JSON: {exc}"
            ) from exc
    if not isinstance(document, dict):
        raise ValidationError(
            "parallel-safety certificate must be a JSON object, got "
            f"{type(document).__name__}"
        )
    if document.get("kind") != _CERTIFICATE_KIND:
        raise ValidationError(
            "certificate 'kind' must be "
            f"{_CERTIFICATE_KIND!r}, got {document.get('kind')!r}"
        )
    functions = document.get("functions")
    if not isinstance(functions, dict):
        raise ValidationError(
            "certificate must carry a 'functions' object mapping "
            "qualified names to effect entries"
        )
    return document


def resolve_qualified_name(fn: Callable[..., Any]) -> tuple[str | None, str]:
    """The certifiable qualified name of *fn*, or why it has none.

    Returns ``(qualified_name, "")`` on success and ``(None, reason)``
    when *fn* cannot be certified by name: :class:`functools.partial`
    chains are unwrapped to the underlying function (binding arguments
    does not change its effect set), but lambdas and functions defined
    inside other functions have no importable module-level name — the
    same property that makes them unpicklable for process pools.
    """
    target: Callable[..., Any] = fn
    while isinstance(target, functools.partial):
        target = target.func
    qualname = getattr(target, "__qualname__", None)
    module = getattr(target, "__module__", None)
    if qualname is None or module is None:
        return None, f"{target!r} has no __module__/__qualname__"
    if "<lambda>" in qualname:
        return None, "lambdas cannot be certified (no importable name)"
    if "<locals>" in qualname:
        return None, (
            f"{qualname!r} is defined inside a function; only "
            "module-level callables can be certified (and pickled)"
        )
    return f"{module}.{qualname}", ""


def certificate_entry(
    certificate: Mapping[str, Any], fn: Callable[..., Any]
) -> dict[str, Any] | None:
    """The certificate entry covering *fn*, or ``None`` if uncovered."""
    qualified, _ = resolve_qualified_name(fn)
    if qualified is None:
        return None
    entry = certificate.get("functions", {}).get(qualified)
    return entry if isinstance(entry, dict) else None


def _certification_problem(
    fn: Callable[..., Any],
    certificate: Mapping[str, Any] | None,
) -> str | None:
    """Why *fn* may not fan out, or ``None`` when it is certified."""
    qualified, reason = resolve_qualified_name(fn)
    if qualified is None:
        return reason
    if certificate is None:
        return (
            f"no parallel-safety certificate available for {qualified!r}; "
            "generate one with 'repro lint --effects --certificate' and "
            f"pass it (or set ${CERTIFICATE_ENV_VAR})"
        )
    entry = certificate.get("functions", {}).get(qualified)
    if not isinstance(entry, dict):
        return (
            f"{qualified!r} is not covered by the certificate; declare "
            "its effects with @effects(...) or make it a solver entry "
            "point so the analysis certifies it"
        )
    if entry.get("parallel_safe") is not True:
        effects = entry.get("effects", [])
        return (
            f"{qualified!r} is certified with effects {effects!r}, "
            "which are not parallel-safe"
        )
    return None


def parallel_map(
    fn: Callable[[_T], _R],
    items: Iterable[_T],
    *,
    certificate: Mapping[str, Any] | str | Path | None = None,
    max_workers: int | None = None,
    on_uncertified: str = "error",
) -> list[_R]:
    """Map *fn* over *items* with a process pool, gated on the certificate.

    *fn* must resolve to a module-level callable whose certificate entry
    says ``parallel_safe`` (``functools.partial`` over such a callable is
    fine).  *certificate* follows :func:`load_certificate` semantics; when
    it is ``None`` and :data:`CERTIFICATE_ENV_VAR` is unset there is no
    certificate and the gate fails closed.

    *on_uncertified* chooses the failure mode: ``"error"`` (default)
    raises :class:`~repro.exceptions.ParallelSafetyError`; ``"serial"``
    emits a :class:`UserWarning` and maps in-process, preserving results
    while giving up the speedup.  Results are returned in input order
    either way.
    """
    if on_uncertified not in ("error", "serial"):
        raise ValidationError(
            "on_uncertified must be 'error' or 'serial', got "
            f"{on_uncertified!r}"
        )
    if max_workers is not None and max_workers < 1:
        raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
    document = load_certificate(certificate)
    problem = _certification_problem(fn, document)
    materialized = list(items)
    if problem is not None:
        if on_uncertified == "error":
            raise ParallelSafetyError(
                f"refusing to fan out uncertified callable: {problem}"
            )
        warnings.warn(
            f"parallel_map falling back to serial execution: {problem}",
            UserWarning,
            stacklevel=2,
        )
        return [fn(item) for item in materialized]
    if not materialized:
        return []
    with ProcessPoolExecutor(max_workers=max_workers) as executor:
        return list(executor.map(fn, materialized))
