"""Read/write quorum systems.

Replicated-data protocols (Gifford's weighted voting, ABD atomic
registers) distinguish *read* quorums from *write* quorums: every read
quorum must intersect every write quorum (so a read sees the latest
write), and every pair of write quorums must intersect (so writes are
totally ordered).  Read quorums need not intersect each other, which is
exactly what makes reads cheap.

The paper's placement machinery extends naturally: a workload mixes
reads and writes with some read fraction, inducing per-element loads via
the mixture of the two access strategies.  Lemma 3.1's proof, however,
*requires* pairwise intersection of sampled quorums, which fails for a
pair of reads — so the QPP 5x reduction does **not** carry over, while
the single-source algorithm (which never uses intersection) does.  See
:func:`repro.core.rw_placement.solve_rw_ssqpp`.

This module provides the value type and two classical constructions:

* :func:`read_one_write_all` — ROWA: any singleton reads, the full
  universe writes.
* :func:`grid_rw` — rows read, row+column writes (the read/write split
  of the Grid from Cheung et al.).
"""

from __future__ import annotations

from collections.abc import Iterable

from .._validation import check_integer_in_range, check_probability
from ..exceptions import IntersectionError, ValidationError
from .base import Element, QuorumSystem, _verify_intersection
from .strategy import AccessStrategy

__all__ = ["ReadWriteQuorumSystem", "read_one_write_all", "grid_rw"]


class ReadWriteQuorumSystem:
    """A pair of families (reads, writes) with R-W and W-W intersection.

    Parameters
    ----------
    read_quorums, write_quorums:
        The two families.  Write quorums must pairwise intersect, and
        every read quorum must intersect every write quorum.  Read
        quorums are free to be disjoint from each other.
    name:
        Label for reports.
    """

    __slots__ = ("_reads", "_writes", "_universe", "name")

    def __init__(
        self,
        read_quorums: Iterable[Iterable[Element]],
        write_quorums: Iterable[Iterable[Element]],
        *,
        name: str = "read/write system",
    ) -> None:
        reads = tuple(frozenset(q) for q in read_quorums)
        writes = tuple(frozenset(q) for q in write_quorums)
        if not reads or not writes:
            raise ValidationError("need at least one read and one write quorum")
        for family, label in ((reads, "read"), (writes, "write")):
            for quorum in family:
                if not quorum:
                    raise ValidationError(f"{label} quorums must be non-empty")
        if len(set(reads)) != len(reads) or len(set(writes)) != len(writes):
            raise ValidationError("duplicate quorums are not allowed")
        _verify_intersection(writes)  # W-W
        for read in reads:  # R-W
            for write in writes:
                if read.isdisjoint(write):
                    raise IntersectionError(read, write)
        universe: set[Element] = set()
        for quorum in reads + writes:
            universe.update(quorum)
        self._reads = reads
        self._writes = writes
        self._universe = tuple(
            sorted(universe, key=lambda e: (type(e).__name__, repr(e)))
        )
        self.name = name

    # -- accessors ------------------------------------------------------------------

    @property
    def read_quorums(self) -> tuple[frozenset, ...]:
        return self._reads

    @property
    def write_quorums(self) -> tuple[frozenset, ...]:
        return self._writes

    @property
    def universe(self) -> tuple[Element, ...]:
        return self._universe

    @property
    def universe_size(self) -> int:
        return len(self._universe)

    def write_system(self) -> QuorumSystem:
        """The write family as an ordinary quorum system (it pairwise
        intersects, so all of the paper's machinery applies to it)."""
        return QuorumSystem(
            self._writes,
            universe=self._universe,
            name=f"{self.name} (writes)",
            check=False,
        )

    # -- workload mixing -------------------------------------------------------------

    def combined_family(self) -> list[frozenset]:
        """Reads then writes, deduplicated, in a deterministic order.

        Used by the placement layer, which treats each distinct quorum as
        one access target regardless of which family (or both) it serves.
        """
        combined: list[frozenset] = []
        seen: set[frozenset] = set()
        for quorum in self._reads + self._writes:
            if quorum not in seen:
                seen.add(quorum)
                combined.append(quorum)
        return combined

    def workload_weights(
        self,
        read_fraction: float,
        *,
        read_strategy: list[float] | None = None,
        write_strategy: list[float] | None = None,
    ) -> tuple[QuorumSystem, AccessStrategy]:
        """The mixed workload as a (family, weights) pair.

        Parameters
        ----------
        read_fraction:
            Fraction of accesses that are reads, in [0, 1].
        read_strategy / write_strategy:
            Probability weights within each family (uniform by default).

        Returns
        -------
        (QuorumSystem, AccessStrategy)
            The deduplicated combined family wrapped as a
            ``QuorumSystem`` built with ``check=False`` — it is generally
            *not* a quorum system (reads may be disjoint) and must only
            be fed to intersection-free machinery such as the placement
            evaluators and the single-source LP.  The strategy carries
            the mixed weights.
        """
        rho = check_probability(read_fraction, "read_fraction")
        reads = list(self._reads)
        writes = list(self._writes)
        if read_strategy is None:
            read_strategy = [1.0 / len(reads)] * len(reads)
        if write_strategy is None:
            write_strategy = [1.0 / len(writes)] * len(writes)
        if len(read_strategy) != len(reads) or len(write_strategy) != len(writes):
            raise ValidationError("strategy lengths must match the families")

        weights: dict[frozenset, float] = {}
        for quorum, weight in zip(reads, read_strategy):
            weights[quorum] = weights.get(quorum, 0.0) + rho * weight
        for quorum, weight in zip(writes, write_strategy):
            weights[quorum] = weights.get(quorum, 0.0) + (1 - rho) * weight

        family = self.combined_family()
        system = QuorumSystem(
            family,
            universe=self._universe,
            name=f"{self.name} (rho={rho:g})",
            check=False,
        )
        aligned = [weights.get(quorum, 0.0) for quorum in system.quorums]
        return system, AccessStrategy.from_weights(system, aligned)

    def __repr__(self) -> str:
        return (
            f"ReadWriteQuorumSystem(name={self.name!r}, reads={len(self._reads)}, "
            f"writes={len(self._writes)}, universe={self.universe_size})"
        )


def read_one_write_all(n: int) -> ReadWriteQuorumSystem:
    """ROWA over ``n`` elements: singleton reads, one all-element write."""
    check_integer_in_range(n, "n", low=1)
    reads = [frozenset([i]) for i in range(n)]
    writes = [frozenset(range(n))]
    return ReadWriteQuorumSystem(reads, writes, name=f"rowa({n})")


def grid_rw(k: int) -> ReadWriteQuorumSystem:
    """The Grid's read/write split: any full row reads; a full row plus a
    full column writes.

    Rows pairwise *don't* intersect (cheap concurrent reads), but every
    row crosses every write's column, and two writes meet row-to-column
    both ways.
    """
    check_integer_in_range(k, "k", low=1)
    rows = [frozenset((i, j) for j in range(k)) for i in range(k)]
    writes = []
    for i in range(k):
        for j in range(k):
            column = frozenset((r, j) for r in range(k))
            writes.append(rows[i] | column)
    # Deduplicate degenerate k = 1 writes.
    writes = list(dict.fromkeys(writes))
    return ReadWriteQuorumSystem(rows, writes, name=f"grid_rw({k})")
