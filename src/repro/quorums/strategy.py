"""Access strategies over quorum systems.

An *access strategy* (Naor & Wool) for a quorum system ``Q`` is a
probability distribution ``p : Q -> [0, 1]``; a client performing a quorum
access samples a quorum from ``p`` and contacts all of its members.  The
strategy induces a *load* on every element ``u``:

    load(u) = sum_{Q containing u} p(Q)

which is the input the placement algorithms of the paper balance against
physical node capacities.  This module provides :class:`AccessStrategy`
plus the §6 extension machinery (per-client strategies are mixtures of
strategies; non-uniform client access rates are rate-weighted mixtures).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .._validation import (
    PROBABILITY_TOLERANCE,
    check_nonnegative,
    require,
)
from ..exceptions import ValidationError
from .base import Element, QuorumSystem

__all__ = ["AccessStrategy"]


class AccessStrategy:
    """A probability distribution over the quorums of a fixed system.

    Instances are immutable.  Probabilities are stored densely, aligned
    with ``system.quorums`` order.

    Examples
    --------
    >>> from repro.quorums import QuorumSystem, AccessStrategy
    >>> qs = QuorumSystem([{1, 2}, {2, 3}], name="pair")
    >>> p = AccessStrategy.uniform(qs)
    >>> p.load(2)
    1.0
    >>> p.load(1)
    0.5
    >>> p.max_load()
    1.0
    """

    __slots__ = ("_system", "_probabilities", "_loads")

    def __init__(self, system: QuorumSystem, probabilities: Sequence[float]) -> None:
        require(isinstance(system, QuorumSystem), "system must be a QuorumSystem")
        probs = np.asarray(list(probabilities), dtype=float)
        if probs.shape != (len(system),):
            raise ValidationError(
                f"strategy needs exactly {len(system)} probabilities "
                f"(one per quorum), got {probs.shape[0]}"
            )
        if np.any(probs < -PROBABILITY_TOLERANCE):
            raise ValidationError("probabilities must be non-negative")
        probs = np.clip(probs, 0.0, None)
        total = float(probs.sum())
        if abs(total - 1.0) > 1e-6:
            raise ValidationError(
                f"probabilities must sum to 1 (got {total}); use "
                "AccessStrategy.from_weights for unnormalized weights"
            )
        self._system = system
        self._probabilities = probs / total
        self._probabilities.setflags(write=False)
        self._loads: np.ndarray | None = None

    # -- constructors ---------------------------------------------------------------

    @classmethod
    def uniform(cls, system: QuorumSystem) -> "AccessStrategy":
        """The uniform strategy ``p(Q) = 1/|Q|`` (the paper's default for
        Grid and Majority, where it is load-optimal)."""
        m = len(system)
        return cls(system, np.full(m, 1.0 / m))

    @classmethod
    def from_weights(
        cls, system: QuorumSystem, weights: Sequence[float] | Mapping[int, float]
    ) -> "AccessStrategy":
        """Build a strategy from non-negative weights, normalizing their sum.

        *weights* may be a dense sequence (one weight per quorum) or a
        sparse mapping from quorum index to weight (missing indices get
        weight zero).
        """
        m = len(system)
        if isinstance(weights, Mapping):
            dense = np.zeros(m)
            for index, weight in weights.items():
                if not 0 <= int(index) < m:
                    raise ValidationError(f"quorum index {index} out of range [0, {m})")
                dense[int(index)] = check_nonnegative(weight, f"weights[{index}]")
        else:
            dense = np.asarray([check_nonnegative(w, "weight") for w in weights], dtype=float)
            if dense.shape != (m,):
                raise ValidationError(f"expected {m} weights, got {dense.shape[0]}")
        total = float(dense.sum())
        if total <= 0:
            raise ValidationError("at least one weight must be positive")
        return cls(system, dense / total)

    @classmethod
    def point_mass(cls, system: QuorumSystem, quorum_index: int) -> "AccessStrategy":
        """The degenerate strategy that always accesses one fixed quorum."""
        m = len(system)
        if not 0 <= quorum_index < m:
            raise ValidationError(f"quorum index {quorum_index} out of range [0, {m})")
        probs = np.zeros(m)
        probs[quorum_index] = 1.0
        return cls(system, probs)

    @classmethod
    def mixture(
        cls, strategies: Sequence["AccessStrategy"], weights: Sequence[float]
    ) -> "AccessStrategy":
        """A convex combination of strategies over the *same* system.

        This implements the §6 observation that assigning every client the
        average of the per-client strategies preserves the average-delay
        analysis: the average strategy is exactly this mixture with weights
        proportional to the clients' access rates.
        """
        require(len(strategies) > 0, "mixture requires at least one strategy")
        require(
            len(strategies) == len(weights),
            "mixture requires one weight per strategy",
        )
        system = strategies[0].system
        for strategy in strategies[1:]:
            if strategy.system != system:
                raise ValidationError("all strategies in a mixture must share one system")
        w = np.asarray([check_nonnegative(x, "mixture weight") for x in weights], dtype=float)
        total = float(w.sum())
        if total <= 0:
            raise ValidationError("mixture weights must not all be zero")
        w = w / total
        probs = np.zeros(len(system))
        for strategy, weight in zip(strategies, w):
            probs += weight * strategy.probabilities
        return cls(system, probs)

    # -- accessors -------------------------------------------------------------------

    @property
    def system(self) -> QuorumSystem:
        return self._system

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only probability vector aligned with ``system.quorums``."""
        return self._probabilities

    def probability(self, quorum_index: int) -> float:
        return float(self._probabilities[quorum_index])

    def support(self) -> tuple[int, ...]:
        """Indices of quorums with strictly positive probability."""
        return tuple(int(i) for i in np.nonzero(self._probabilities > 0)[0])

    # -- loads -----------------------------------------------------------------------

    def _load_vector(self) -> np.ndarray:
        if self._loads is None:
            loads = np.zeros(self._system.universe_size)
            for index, quorum in enumerate(self._system.quorums):
                p = self._probabilities[index]
                if p == 0:
                    continue
                for element in quorum:
                    loads[self._system.element_index(element)] += p
            loads.setflags(write=False)
            self._loads = loads
        return self._loads

    def load(self, element: Element) -> float:
        """``load(u) = sum over quorums containing u of p(Q)``."""
        return float(self._load_vector()[self._system.element_index(element)])

    def loads(self) -> dict[Element, float]:
        """Load of every universe element."""
        vector = self._load_vector()
        return {u: float(vector[i]) for i, u in enumerate(self._system.universe)}

    def load_array(self) -> np.ndarray:
        """Loads as an array aligned with ``system.universe`` order."""
        return self._load_vector()

    def max_load(self) -> float:
        """The system load of this strategy: the most loaded element."""
        return float(self._load_vector().max())

    def total_load(self) -> float:
        """Sum of element loads, equal to the expected quorum size."""
        return float(self._load_vector().sum())

    def expected_quorum_size(self) -> float:
        """Expected number of elements contacted per access (= total load)."""
        return float(
            sum(p * len(q) for p, q in zip(self._probabilities, self._system.quorums))
        )

    # -- sampling ---------------------------------------------------------------------

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Sample quorum indices from this distribution.

        Returns a single ``int`` when *size* is None, else an ndarray of
        indices.  Sampling drives the discrete access simulation used in
        the examples; the analytic evaluators never sample.
        """
        result = rng.choice(len(self._system), size=size, p=self._probabilities)
        if size is None:
            return int(result)
        return result

    # -- comparison ---------------------------------------------------------------------

    def allclose(self, other: "AccessStrategy", tolerance: float = 1e-9) -> bool:
        """True if *other* is the same distribution over the same system."""
        return self._system == other._system and bool(
            np.allclose(self._probabilities, other._probabilities, atol=tolerance)
        )

    def __repr__(self) -> str:
        return (
            f"AccessStrategy(system={self._system.name!r}, "
            f"support={len(self.support())}/{len(self._system)}, "
            f"max_load={self.max_load():.4f})"
        )


def iter_strategy(strategy: AccessStrategy) -> Iterable[tuple[float, frozenset]]:
    """Yield ``(probability, quorum)`` pairs with positive probability."""
    for index in strategy.support():
        yield strategy.probability(index), strategy.system.quorums[index]
