"""The B-Grid quorum system (Naor & Wool 1998).

Elements are arranged in a rectangular grid of ``d`` columns whose rows
are split into ``h`` *bands* of ``r`` rows each (``n = d * h * r``).  The
``r`` elements sharing a band and a column form a *mini-column*.

A quorum is built from two parts:

* one mini-column in **every** band (any column per band), and
* for one chosen band, one *representative* element out of each of the
  band's ``d`` mini-columns.

Intersection: let quorums ``A`` and ``B`` choose representative bands
``i_A`` and ``i_B``.  ``B`` contains a full mini-column in band ``i_A``
(say in column ``c``), and ``A`` contains one representative from every
mini-column of band ``i_A`` — in particular from the one in column ``c``
— so they share that element.

The B-Grid is the classical construction balancing load ``O(1/sqrt(n))``
with asymptotically optimal availability; it appears here as a third
structured family (alongside Grid and Majority) for the placement
benchmarks.  Enumeration is ``h * d**h * r**d`` quorums, so only small
parameters are practical; the constructor *verifies* the intersection
property rather than assuming this module's reasoning.
"""

from __future__ import annotations

from itertools import product

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .base import QuorumSystem

__all__ = ["bgrid"]

_MAX_ENUMERATED_QUORUMS = 100_000


def bgrid(columns: int, bands: int, band_rows: int) -> QuorumSystem:
    """The B-Grid over ``columns * bands * band_rows`` elements.

    Parameters
    ----------
    columns:
        Number of grid columns ``d``.
    bands:
        Number of bands ``h``.
    band_rows:
        Rows per band ``r`` (the mini-column height).

    Universe elements are triples ``(band, row_in_band, column)``.

    Raises
    ------
    ValidationError
        If the quorum enumeration would exceed the library guard.
    """
    check_integer_in_range(columns, "columns", low=1)
    check_integer_in_range(bands, "bands", low=1)
    check_integer_in_range(band_rows, "band_rows", low=1)

    count = bands * columns**bands * band_rows**columns
    if count > _MAX_ENUMERATED_QUORUMS:
        raise ValidationError(
            f"bgrid({columns},{bands},{band_rows}) would enumerate {count} "
            "quorums; choose smaller parameters"
        )

    def mini_column(band: int, column: int) -> frozenset:
        return frozenset(
            (band, row, column) for row in range(band_rows)
        )

    universe = [
        (band, row, column)
        for band in range(bands)
        for row in range(band_rows)
        for column in range(columns)
    ]

    quorums: list[frozenset] = []
    seen: set[frozenset] = set()
    for representative_band in range(bands):
        # One mini-column per band: a column choice for each band.
        for column_choices in product(range(columns), repeat=bands):
            cover = frozenset().union(
                *(mini_column(band, column) for band, column in enumerate(column_choices))
            )
            # One representative per mini-column of the chosen band.
            for rows in product(range(band_rows), repeat=columns):
                representatives = frozenset(
                    (representative_band, rows[column], column)
                    for column in range(columns)
                )
                quorum = cover | representatives
                if quorum not in seen:
                    seen.add(quorum)
                    quorums.append(quorum)

    # check=True: certify the intersection argument at construction time.
    return QuorumSystem(
        quorums,
        universe=universe,
        name=f"bgrid({columns},{bands},{band_rows})",
        check=True,
    )
