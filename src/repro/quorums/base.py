"""Core quorum-system type.

A *quorum system* over a universe ``U`` is a family ``Q = {Q_1, ..., Q_m}``
of subsets of ``U`` (the *quorums*) such that every pair of quorums has a
non-empty intersection.  This module provides :class:`QuorumSystem`, the
immutable value type the whole library is built around, together with the
structural checks used throughout the paper (intersection property,
coterie minimality, element degrees).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Hashable
from typing import Any

from .._validation import require
from ..exceptions import IntersectionError, ValidationError

__all__ = ["QuorumSystem", "Element"]

#: Universe elements may be any hashable value (ints, strings, tuples...).
Element = Hashable


def _sort_key(element: Element) -> tuple[str, str]:
    """A total order over heterogeneous hashables: by type name, then repr."""
    return (type(element).__name__, repr(element))


class QuorumSystem:
    """An immutable quorum system: a pairwise-intersecting family of sets.

    Parameters
    ----------
    quorums:
        The family of quorums.  Each quorum may be any iterable of hashable
        elements; duplicates *within* a quorum are collapsed, but duplicate
        *quorums* are rejected (they would silently distort access
        strategies and loads).
    universe:
        Optional explicit universe.  Must contain every element appearing
        in a quorum; defaults to the union of the quorums.  Elements of the
        universe that appear in no quorum are permitted (they simply carry
        zero load and are never placed preferentially).
    name:
        Human-readable label used in reprs and benchmark reports.
    check:
        When true (the default), eagerly verify the pairwise intersection
        property and raise :class:`IntersectionError` on violation.
        Constructions that guarantee the property by design pass
        ``check=False`` to skip the quadratic verification; tests
        re-verify them explicitly.

    Examples
    --------
    >>> qs = QuorumSystem([{1, 2}, {2, 3}, {1, 3}], name="triangle")
    >>> len(qs)
    3
    >>> qs.universe
    (1, 2, 3)
    >>> qs.element_degree(2)
    2
    """

    __slots__ = ("_quorums", "_universe", "_universe_index", "name", "_membership")

    def __init__(
        self,
        quorums: Iterable[Iterable[Element]],
        *,
        universe: Iterable[Element] | None = None,
        name: str = "quorum system",
        check: bool = True,
    ) -> None:
        frozen = tuple(frozenset(q) for q in quorums)
        require(len(frozen) > 0, "a quorum system must contain at least one quorum")
        for q in frozen:
            require(len(q) > 0, "quorums must be non-empty")
        if len(set(frozen)) != len(frozen):
            raise ValidationError("duplicate quorums are not allowed")

        union: set[Element] = set()
        for q in frozen:
            union.update(q)
        if universe is None:
            universe_tuple = tuple(sorted(union, key=_sort_key))
        else:
            universe_tuple = tuple(sorted(set(universe), key=_sort_key))
            missing = union.difference(universe_tuple)
            require(
                not missing,
                f"universe is missing elements used by quorums: {sorted(missing, key=_sort_key)!r}",
            )

        if check:
            _verify_intersection(frozen)

        self._quorums = frozen
        self._universe = universe_tuple
        self._universe_index = {u: i for i, u in enumerate(universe_tuple)}
        self.name = name
        # Lazily built: element -> tuple of quorum indices containing it.
        self._membership: dict[Element, tuple[int, ...]] | None = None

    # -- basic container protocol --------------------------------------------------

    def __len__(self) -> int:
        return len(self._quorums)

    def __iter__(self) -> Iterator[frozenset]:
        return iter(self._quorums)

    def __getitem__(self, index: int) -> frozenset:
        return self._quorums[index]

    def __contains__(self, quorum: Any) -> bool:
        try:
            return frozenset(quorum) in set(self._quorums)
        except TypeError:
            return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuorumSystem):
            return NotImplemented
        return set(self._quorums) == set(other._quorums)

    def __hash__(self) -> int:
        return hash(frozenset(self._quorums))

    def __repr__(self) -> str:
        return (
            f"QuorumSystem(name={self.name!r}, quorums={len(self)}, "
            f"universe={len(self._universe)})"
        )

    # -- structure -------------------------------------------------------------------

    @property
    def quorums(self) -> tuple[frozenset, ...]:
        """The quorums, in construction order."""
        return self._quorums

    @property
    def universe(self) -> tuple[Element, ...]:
        """The universe, in a deterministic sorted order."""
        return self._universe

    @property
    def universe_size(self) -> int:
        return len(self._universe)

    def element_index(self, element: Element) -> int:
        """Position of *element* in :attr:`universe` (stable across runs)."""
        try:
            return self._universe_index[element]
        except KeyError:
            raise ValidationError(f"{element!r} is not in the universe") from None

    def _membership_map(self) -> dict[Element, tuple[int, ...]]:
        if self._membership is None:
            mapping: dict[Element, list[int]] = {u: [] for u in self._universe}
            for index, quorum in enumerate(self._quorums):
                for element in quorum:
                    mapping[element].append(index)
            self._membership = {u: tuple(ids) for u, ids in mapping.items()}
        return self._membership

    def quorums_containing(self, element: Element) -> tuple[int, ...]:
        """Indices of quorums containing *element* (empty if unused)."""
        if element not in self._universe_index:
            raise ValidationError(f"{element!r} is not in the universe")
        return self._membership_map()[element]

    def element_degree(self, element: Element) -> int:
        """Number of quorums containing *element*."""
        return len(self.quorums_containing(element))

    # -- quorum-system predicates ------------------------------------------------------

    def verify_intersection(self) -> None:
        """Re-verify the pairwise intersection property.

        Useful for constructions built with ``check=False``; raises
        :class:`IntersectionError` naming the offending pair.
        """
        _verify_intersection(self._quorums)

    def is_coterie(self) -> bool:
        """True if no quorum strictly contains another (i.e. the family is
        an antichain, the *coterie* condition of Garcia-Molina & Barbara)."""
        for i, a in enumerate(self._quorums):
            for b in self._quorums[i + 1 :]:
                if a < b or b < a:
                    return False
        return True

    def min_quorum_size(self) -> int:
        return min(len(q) for q in self._quorums)

    def max_quorum_size(self) -> int:
        return max(len(q) for q in self._quorums)

    # -- derived systems -----------------------------------------------------------------

    def relabel(self, mapping: dict[Element, Element], *, name: str | None = None) -> "QuorumSystem":
        """Apply an injective relabeling to the universe.

        Raises if *mapping* is not injective on the universe (two elements
        mapping to the same target would merge quorum members and can break
        quorum sizes and loads silently).
        """
        targets = [mapping.get(u, u) for u in self._universe]
        if len(set(targets)) != len(targets):
            raise ValidationError("relabeling must be injective on the universe")
        new_quorums = [frozenset(mapping.get(u, u) for u in q) for q in self._quorums]
        return QuorumSystem(
            new_quorums,
            universe=targets,
            name=name or self.name,
            check=False,
        )

    def reduced(self, *, name: str | None = None) -> "QuorumSystem":
        """Drop dominated quorums, returning the coterie of minimal quorums.

        A quorum that strictly contains another can be removed without
        affecting the intersection property; the result has (weakly) lower
        load under its optimal strategy.
        """
        minimal: list[frozenset] = []
        for q in self._quorums:
            if not any(other < q for other in self._quorums):
                minimal.append(q)
        # Preserve order, drop duplicates (can't occur; quorums are unique).
        return QuorumSystem(
            minimal, universe=self._universe, name=name or f"{self.name} (reduced)", check=False
        )


def _verify_intersection(quorums: tuple[frozenset, ...]) -> None:
    for i, a in enumerate(quorums):
        for b in quorums[i + 1 :]:
            if a.isdisjoint(b):
                raise IntersectionError(a, b)
