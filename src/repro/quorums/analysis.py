"""Structural and probabilistic analysis of quorum systems.

Utilities that characterize a quorum system independently of any network:
resilience (how many element crash failures can always be tolerated),
availability under independent failures, degree statistics, and strategy
quality summaries.  These feed the experiment harness, which reports them
alongside placement quality so that the load/delay trade-off the paper
discusses is visible in benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from .._validation import check_integer_in_range, check_probability
from ..exceptions import ValidationError
from .base import Element, QuorumSystem
from .strategy import AccessStrategy

__all__ = [
    "DegreeStatistics",
    "degree_statistics",
    "resilience",
    "availability_monte_carlo",
    "availability_exact",
    "is_dominated_by",
]

_MAX_EXACT_UNIVERSE = 20


@dataclass(frozen=True)
class DegreeStatistics:
    """Summary of how evenly quorum membership spreads over the universe."""

    min_degree: int
    max_degree: int
    mean_degree: float
    min_quorum_size: int
    max_quorum_size: int
    mean_quorum_size: float


def degree_statistics(system: QuorumSystem) -> DegreeStatistics:
    """Degree and quorum-size statistics for *system*."""
    degrees = [system.element_degree(u) for u in system.universe]
    sizes = [len(q) for q in system.quorums]
    return DegreeStatistics(
        min_degree=min(degrees),
        max_degree=max(degrees),
        mean_degree=float(np.mean(degrees)),
        min_quorum_size=min(sizes),
        max_quorum_size=max(sizes),
        mean_quorum_size=float(np.mean(sizes)),
    )


def resilience(system: QuorumSystem) -> int:
    """The resilience of *system*: the largest ``f`` such that after any
    ``f`` element crashes some quorum survives intact.

    Equivalently ``(minimum hitting set of the quorums) - 1``: an
    adversary kills the system exactly by hitting every quorum.  Computed
    by exhaustive search over candidate hitting sets in increasing size,
    so it is exact but limited to universes of at most
    ``20`` elements.
    """
    if len(system.universe) > _MAX_EXACT_UNIVERSE:
        raise ValidationError(
            f"resilience is computed exactly and supports at most "
            f"{_MAX_EXACT_UNIVERSE} universe elements (got {len(system.universe)})"
        )
    universe = system.universe
    quorums = system.quorums
    for size in range(1, len(universe) + 1):
        for candidate in combinations(universe, size):
            failed = frozenset(candidate)
            if all(not failed.isdisjoint(q) for q in quorums):
                return size - 1
    # Unreachable: the full universe always hits every (non-empty) quorum.
    raise AssertionError("no hitting set found; quorum system is malformed")


def availability_exact(system: QuorumSystem, failure_probability: float) -> float:
    """Probability that some quorum is fully alive when each element fails
    independently with probability *failure_probability*.

    Exhaustive over element subsets — exact, exponential, guarded to
    universes of at most 20 elements.  Use
    :func:`availability_monte_carlo` beyond that.
    """
    p_fail = check_probability(failure_probability, "failure_probability")
    universe = list(system.universe)
    if len(universe) > _MAX_EXACT_UNIVERSE:
        raise ValidationError(
            f"availability_exact supports at most {_MAX_EXACT_UNIVERSE} "
            f"elements (got {len(universe)}); use availability_monte_carlo"
        )
    total = 0.0
    n = len(universe)
    for mask in range(1 << n):
        alive = frozenset(universe[i] for i in range(n) if mask >> i & 1)
        if any(q <= alive for q in system.quorums):
            k = len(alive)
            total += (1 - p_fail) ** k * p_fail ** (n - k)
    return total


def availability_monte_carlo(
    system: QuorumSystem,
    failure_probability: float,
    *,
    samples: int = 10_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of quorum availability.

    Each trial fails every element independently and checks whether a
    fully-alive quorum remains.  Deterministic given *rng*.
    """
    p_fail = check_probability(failure_probability, "failure_probability")
    check_integer_in_range(samples, "samples", low=1)
    generator = rng if rng is not None else np.random.default_rng(0)
    universe = list(system.universe)
    n = len(universe)
    quorum_masks = []
    index = {u: i for i, u in enumerate(universe)}
    for quorum in system.quorums:
        mask = 0
        for element in quorum:
            mask |= 1 << index[element]
        quorum_masks.append(mask)
    successes = 0
    for _ in range(samples):
        draws = generator.random(n)
        alive_mask = 0
        for i in range(n):
            if draws[i] >= p_fail:
                alive_mask |= 1 << i
        if any(mask & alive_mask == mask for mask in quorum_masks):
            successes += 1
    return successes / samples


def is_dominated_by(first: QuorumSystem, second: QuorumSystem) -> bool:
    """True if every quorum of *first* contains some quorum of *second*.

    Domination (Garcia-Molina & Barbara) means *second* is at least as
    good as *first* for availability and load: any strategy on *first*
    can be simulated on *second* using subsets.
    """
    return all(
        any(candidate <= quorum for candidate in second.quorums)
        for quorum in first.quorums
    )


def strategy_summary(strategy: AccessStrategy) -> dict[str, float]:
    """Headline numbers for a strategy: max/total load, expected size."""
    return {
        "max_load": strategy.max_load(),
        "total_load": strategy.total_load(),
        "expected_quorum_size": strategy.expected_quorum_size(),
        "support_size": float(len(strategy.support())),
    }
