"""Degenerate single-element constructions.

The singleton system is the trivial quorum system: one quorum holding one
element.  It is the extreme point of the load/delay trade-off discussed in
the paper's related-work section — Lin's 2-approximation for the
load-oblivious problem outputs exactly a singleton placed at the network's
1-median, which has optimal delay but the worst possible load.  We ship it
both as a baseline and as a building block for composition.
"""

from __future__ import annotations

from ..exceptions import ValidationError
from .base import Element, QuorumSystem

__all__ = ["singleton", "star"]


def singleton(element: Element = 0) -> QuorumSystem:  # repro-lint: disable=R001
    """The one-quorum, one-element system ``{{element}}``.

    Its unique strategy has ``load(element) = 1``: the entire access
    traffic lands on a single universe element.
    """
    return QuorumSystem([{element}], name="singleton", check=False)


def star(n: int, *, hub: Element | None = None) -> QuorumSystem:
    """The star (centralized) system over ``n`` elements.

    Universe ``{0, .., n-1}``; quorums are ``{hub, i}`` for every other
    element ``i`` plus the singleton ``{hub}``.  Every quorum contains the
    hub, so intersection is immediate, and the hub's load is 1 under any
    strategy — the classic primary-site protocol, included as the
    high-load baseline.
    """
    if n < 1:
        raise ValidationError("star requires n >= 1")
    center: Element = 0 if hub is None else hub
    universe = list(range(n)) if hub is None else [hub, *range(n - 1)]
    others = [u for u in universe if u != center]
    quorums: list[set[Element]] = [{center}]
    quorums.extend({center, other} for other in others)
    return QuorumSystem(quorums, universe=universe, name=f"star({n})", check=False)
