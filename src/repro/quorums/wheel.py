"""The wheel quorum system.

The wheel over ``n`` elements has a *hub* element and ``n - 1`` *spokes*.
Quorums are the pairs ``{hub, spoke_i}`` plus the single large quorum of
all spokes.  Any two pair-quorums share the hub; a pair-quorum and the
rim quorum share the spoke.

The wheel is the textbook example of a system whose *load* is optimized
by a highly non-uniform strategy (put probability ~1/2 on the rim), which
makes it a useful stress case for the Naor-Wool strategy LP in
:mod:`repro.quorums.optimal_strategy` and for placements whose element
loads differ wildly.
"""

from __future__ import annotations

from .._validation import check_integer_in_range
from .base import QuorumSystem

__all__ = ["wheel"]


def wheel(n: int) -> QuorumSystem:
    """The wheel system over universe ``{0, .., n-1}`` with hub ``0``.

    Requires ``n >= 3`` (with fewer elements the rim quorum degenerates
    into one of the pair quorums).
    """
    check_integer_in_range(n, "n", low=3)
    hub = 0
    spokes = list(range(1, n))
    quorums: list[frozenset] = [frozenset(spokes)]
    quorums.extend(frozenset([hub, spoke]) for spoke in spokes)
    return QuorumSystem(quorums, universe=range(n), name=f"wheel({n})", check=False)
