"""Quorum systems: the core abstraction plus the classical constructions.

The paper's placement algorithms take a quorum system and an access
strategy as input; this subpackage provides both.  Exports:

* :class:`QuorumSystem`, :class:`AccessStrategy` — the value types.
* Constructions — :func:`majority`, :func:`threshold`,
  :func:`weighted_majority`, :func:`grid`, :func:`rectangular_grid`,
  :func:`projective_plane` (Maekawa), :func:`tree_quorum_system`,
  :func:`crumbling_wall`, :func:`cw_log`, :func:`wheel`,
  :func:`singleton`, :func:`star`, :func:`compose`,
  :func:`recursive_majority`.
* Analysis — :func:`optimal_strategy` / :func:`system_load` (Naor-Wool
  LP), :func:`resilience`, availability estimators, degree statistics.
"""

from .analysis import (
    DegreeStatistics,
    availability_exact,
    availability_monte_carlo,
    degree_statistics,
    is_dominated_by,
    resilience,
    strategy_summary,
)
from .base import Element, QuorumSystem
from .bgrid import bgrid
from .composition import compose, recursive_majority
from .crumbling_walls import crumbling_wall, cw_log
from .duality import dual_system, is_non_dominated, is_self_dual, minimal_transversals
from .fpp import is_prime, projective_plane
from .grid import grid, grid_element, grid_quorum_index, rectangular_grid
from .majority import majority, threshold, weighted_majority
from .paths import paths_system
from .optimal_strategy import OptimalStrategyResult, optimal_strategy, system_load
from .readwrite import ReadWriteQuorumSystem, grid_rw, read_one_write_all
from .singleton import singleton, star
from .strategy import AccessStrategy
from .tree import complete_binary_tree_nodes, tree_quorum_system
from .wheel import wheel

__all__ = [
    "AccessStrategy",
    "DegreeStatistics",
    "Element",
    "OptimalStrategyResult",
    "QuorumSystem",
    "ReadWriteQuorumSystem",
    "availability_exact",
    "availability_monte_carlo",
    "bgrid",
    "complete_binary_tree_nodes",
    "compose",
    "crumbling_wall",
    "cw_log",
    "degree_statistics",
    "dual_system",
    "grid",
    "grid_element",
    "grid_rw",
    "grid_quorum_index",
    "is_dominated_by",
    "is_non_dominated",
    "is_self_dual",
    "is_prime",
    "majority",
    "minimal_transversals",
    "optimal_strategy",
    "projective_plane",
    "paths_system",
    "read_one_write_all",
    "recursive_majority",
    "rectangular_grid",
    "resilience",
    "singleton",
    "star",
    "strategy_summary",
    "system_load",
    "threshold",
    "tree_quorum_system",
    "weighted_majority",
    "wheel",
]
