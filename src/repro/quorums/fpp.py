"""Finite-projective-plane quorum systems (Maekawa 1985).

Maekawa observed that the lines of a finite projective plane of order
``q`` form a quorum system with optimal load: there are
``n = q^2 + q + 1`` points and equally many lines, every line has
``q + 1 ~ sqrt(n)`` points, any two lines meet in exactly one point, and
under the uniform strategy each point carries load
``(q + 1)/(q^2 + q + 1) = O(1/sqrt(n))`` — matching the Naor-Wool lower
bound.

The construction here works for any *prime* order ``q`` (prime powers
would need finite-field arithmetic beyond Z_q): points and lines are the
one- and two-dimensional subspaces of ``GF(q)^3``, represented by
normalized homogeneous coordinate triples, with incidence given by a zero
dot product mod ``q``.
"""

from __future__ import annotations

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .base import QuorumSystem

__all__ = ["projective_plane", "is_prime"]


def is_prime(q: int) -> bool:
    """Trial-division primality test (adequate for plane orders)."""
    check_integer_in_range(q, "q")
    if q < 2:
        return False
    if q < 4:
        return True
    if q % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= q:
        if q % divisor == 0:
            return False
        divisor += 2
    return True


def _normalized_triples(q: int) -> list[tuple[int, int, int]]:
    """Canonical representatives of the projective points of PG(2, q).

    A projective point is a nonzero triple up to scalar multiples; the
    canonical representative has its first nonzero coordinate equal to 1.
    There are exactly ``q^2 + q + 1`` of them: ``(1, y, z)``, ``(0, 1, z)``
    and ``(0, 0, 1)``.
    """
    triples: list[tuple[int, int, int]] = []
    triples.extend((1, y, z) for y in range(q) for z in range(q))
    triples.extend((0, 1, z) for z in range(q))
    triples.append((0, 0, 1))
    return triples


def projective_plane(q: int) -> QuorumSystem:
    """The quorum system of lines of the projective plane ``PG(2, q)``.

    Parameters
    ----------
    q:
        The plane order; must be a prime (2, 3, 5, 7, ...).  The resulting
        system has universe size and quorum count ``q^2 + q + 1`` and
        quorum size ``q + 1``.

    Raises
    ------
    ValidationError
        If ``q`` is not prime.
    """
    check_integer_in_range(q, "q", low=2)
    if not is_prime(q):
        raise ValidationError(
            f"projective_plane requires a prime order, got {q}; "
            "prime powers would require general finite-field arithmetic"
        )
    points = _normalized_triples(q)
    point_index = {p: i for i, p in enumerate(points)}
    # Lines are also indexed by normalized triples (duality of PG(2, q)):
    # line L contains point P iff <L, P> = 0 (mod q).
    quorums = []
    for line in points:
        members = [
            point_index[p]
            for p in points
            if (line[0] * p[0] + line[1] * p[1] + line[2] * p[2]) % q == 0
        ]
        quorums.append(frozenset(members))
    expected_size = q + 1
    for quorum in quorums:
        if len(quorum) != expected_size:
            raise AssertionError(
                f"internal error: line of PG(2,{q}) has {len(quorum)} points, "
                f"expected {expected_size}"
            )
    return QuorumSystem(
        quorums, universe=range(len(points)), name=f"fpp({q})", check=False
    )
