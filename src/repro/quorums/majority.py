"""Majority and threshold quorum systems.

The Majority system (Thomas 1979; Gifford 1979) takes all subsets of size
``ceil((n+1)/2)`` of an ``n``-element universe.  Section 4.2 of the paper
studies the natural generalization with a size parameter ``t``: the
quorums are *all* subsets of size ``t``, which pairwise intersect exactly
when ``2t > n``.  Under the uniform strategy every element has load
``t/n`` and, remarkably, *every* placement of this system has the same
average delay — equation (19), implemented in
:mod:`repro.core.majority_layout`.

This module also provides Gifford's weighted voting, where elements carry
vote weights and quorums are the minimal sets holding a strict majority of
votes.
"""

from __future__ import annotations

from itertools import combinations
from math import comb, fsum

from .._validation import check_integer_in_range, check_positive
from ..exceptions import ValidationError
from .base import QuorumSystem

__all__ = ["majority", "threshold", "weighted_majority"]

#: Enumerating all t-subsets is exponential; refuse absurd enumerations.
_MAX_ENUMERATED_QUORUMS = 2_000_000


def threshold(n: int, t: int) -> QuorumSystem:
    """The t-threshold system: all ``t``-subsets of ``{0, .., n-1}``.

    Requires ``2t > n`` so that any two quorums intersect (two disjoint
    ``t``-sets would need ``2t <= n`` elements).  ``threshold(n, t)`` has
    ``C(n, t)`` quorums; under the uniform strategy each element belongs
    to ``C(n-1, t-1)`` of them, giving the well-known load ``t/n``.

    Examples
    --------
    >>> qs = threshold(3, 2)
    >>> sorted(sorted(q) for q in qs.quorums)
    [[0, 1], [0, 2], [1, 2]]
    """
    check_integer_in_range(n, "n", low=1)
    check_integer_in_range(t, "t", low=1, high=n)
    if 2 * t <= n:
        raise ValidationError(
            f"threshold system needs 2t > n for intersection; got n={n}, t={t}"
        )
    if comb(n, t) > _MAX_ENUMERATED_QUORUMS:
        raise ValidationError(
            f"threshold({n}, {t}) would enumerate {comb(n, t)} quorums; "
            "this exceeds the library's enumeration guard"
        )
    quorums = [frozenset(c) for c in combinations(range(n), t)]
    return QuorumSystem(
        quorums, universe=range(n), name=f"threshold({n},{t})", check=False
    )


def majority(n: int) -> QuorumSystem:
    """The simple Majority system: all subsets of size ``floor(n/2) + 1``.

    This is ``threshold(n, floor(n/2) + 1)``, the smallest valid
    threshold, matching the classical constructions of Thomas and Gifford.
    """
    check_integer_in_range(n, "n", low=1)
    return threshold(n, n // 2 + 1)


def weighted_majority(weights: dict, *, name: str | None = None) -> QuorumSystem:
    """Gifford's weighted voting as a quorum system.

    Parameters
    ----------
    weights:
        Mapping from element to a positive vote weight.  A quorum is any
        *minimal* set whose total weight strictly exceeds half the total:
        two majorities must share an element, since disjoint sets cannot
        both hold more than half the votes.

    Notes
    -----
    Enumeration is exponential in the universe size; the function guards
    against universes larger than 20 elements.
    """
    if not weights:
        raise ValidationError("weighted_majority requires at least one element")
    if len(weights) > 20:
        raise ValidationError(
            "weighted_majority enumerates subsets and supports at most 20 elements"
        )
    for element, weight in weights.items():
        check_positive(weight, f"weights[{element!r}]")
    elements = list(weights)

    winning: list[frozenset] = []
    for size in range(1, len(elements) + 1):
        for combo in combinations(elements, size):
            members = set(combo)
            # A coalition wins iff it outweighs its complement.  Comparing the
            # two correctly-rounded partial sums (fsum) is order-preserving, so
            # a set and its complement can never *both* win — unlike the naive
            # ``2 * sum(combo) > sum(all)`` test, where accumulated rounding in
            # the grand total can certify two disjoint "majorities" at once.
            weight = fsum(weights[e] for e in combo)
            complement_weight = fsum(
                weights[e] for e in elements if e not in members
            )
            if weight > complement_weight:
                candidate = frozenset(combo)
                # Keep only minimal winning coalitions.
                if not any(existing <= candidate for existing in winning):
                    winning.append(candidate)
    return QuorumSystem(
        winning,
        universe=elements,
        name=name or f"weighted_majority({len(elements)})",
        check=False,
    )
