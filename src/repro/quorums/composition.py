"""Composition (recursive construction) of quorum systems.

Given an *outer* quorum system over ``k`` logical slots and, for each
slot, an *inner* quorum system, the composition replaces each slot with
its inner universe: a composed quorum picks an outer quorum and, for each
slot in it, an inner quorum of that slot.

Intersection is inherited: two composed quorums use outer quorums that
share a slot ``s``, and within slot ``s`` both contain an inner quorum of
the same inner system, which intersect.

The classical *recursive majority* (majority-of-majorities) arises by
composing :func:`repro.quorums.majority.majority` with itself; it is a
standard way to build systems with very high availability, and its
multi-level structure gives the placement algorithms hierarchically
clustered loads to work with.
"""

from __future__ import annotations

from itertools import product

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .base import Element, QuorumSystem
from .majority import majority

__all__ = ["compose", "recursive_majority"]

_MAX_COMPOSED_QUORUMS = 500_000


def compose(
    outer: QuorumSystem,
    inner: dict[Element, QuorumSystem],
    *,
    name: str | None = None,
) -> QuorumSystem:
    """Compose *outer* with per-slot *inner* systems.

    Parameters
    ----------
    outer:
        System whose universe elements act as slots.
    inner:
        One inner system per outer universe element.  Inner universes are
        namespaced as ``(slot, inner_element)`` so they never collide.

    Returns
    -------
    QuorumSystem
        The composed system over ``{(slot, e) : e in inner[slot].universe}``.
    """
    missing = [slot for slot in outer.universe if slot not in inner]
    if missing:
        raise ValidationError(f"no inner system supplied for slots {missing!r}")

    total = 0
    for outer_quorum in outer.quorums:
        count = 1
        for slot in outer_quorum:
            count *= len(inner[slot])
        total += count
        if total > _MAX_COMPOSED_QUORUMS:
            raise ValidationError(
                "composition would enumerate more than "
                f"{_MAX_COMPOSED_QUORUMS} quorums; reduce the components"
            )

    universe = [
        (slot, element) for slot in outer.universe for element in inner[slot].universe
    ]
    quorums: list[frozenset] = []
    seen: set[frozenset] = set()
    for outer_quorum in outer.quorums:
        slots = sorted(outer_quorum, key=lambda s: (type(s).__name__, repr(s)))
        for choice in product(*(inner[slot].quorums for slot in slots)):
            members: set[tuple[Element, Element]] = set()
            for slot, inner_quorum in zip(slots, choice):
                members.update((slot, element) for element in inner_quorum)
            quorum = frozenset(members)
            if quorum not in seen:
                seen.add(quorum)
                quorums.append(quorum)
    return QuorumSystem(
        quorums,
        universe=universe,
        name=name or f"compose({outer.name})",
        check=False,
    )


def recursive_majority(branching: int, depth: int) -> QuorumSystem:
    """Majority-of-majorities with the given branching factor and depth.

    ``depth == 1`` is the plain ``majority(branching)``; each extra level
    replaces every element with an independent ``branching``-way majority.
    The universe has ``branching ** depth`` elements.
    """
    check_integer_in_range(branching, "branching", low=2)
    check_integer_in_range(depth, "depth", low=1)
    system = majority(branching)
    for _ in range(depth - 1):
        inner = {slot: majority(branching) for slot in system.universe}
        system = compose(system, inner)
    flattened = system.relabel(
        {u: index for index, u in enumerate(system.universe)},
        name=f"recursive_majority({branching},{depth})",
    )
    return flattened
