"""Crumbling-wall quorum systems (Peleg & Wool 1997).

A *wall* arranges the universe in ``d`` rows of widths ``n_1, .., n_d``.
A quorum takes one *full* row ``i`` plus one single element from every row
below it (``j > i``).  Intersection: take quorums with full rows
``i1 <= i2``; the first quorum picks an element in every row below
``i1``, in particular in row ``i2`` — which the second quorum contains
entirely.

Peleg and Wool showed walls with suitably growing row widths (e.g. the
CWlog wall) achieve both small quorums and low load; the placement
benchmarks use them as an asymmetric contrast to the Grid's regularity.
"""

from __future__ import annotations

from itertools import product

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .base import QuorumSystem

__all__ = ["crumbling_wall", "cw_log"]

#: Quorum count is sum_i prod_{j>i} n_j; refuse walls past this budget.
_MAX_ENUMERATED_QUORUMS = 500_000


def crumbling_wall(row_widths: list[int]) -> QuorumSystem:
    """The wall with the given row widths (top row first).

    Universe elements are pairs ``(row, position)``.  A quorum is a full
    row plus one representative from each lower row; the bottom row's
    quorums are just the row itself.

    Examples
    --------
    >>> wall = crumbling_wall([1, 2])
    >>> sorted(sorted(q) for q in wall.quorums)
    [[(0, 0), (1, 0)], [(0, 0), (1, 1)], [(1, 0), (1, 1)]]
    """
    if not row_widths:
        raise ValidationError("crumbling_wall requires at least one row")
    for index, width in enumerate(row_widths):
        check_integer_in_range(width, f"row_widths[{index}]", low=1)

    rows = [
        [(i, position) for position in range(width)]
        for i, width in enumerate(row_widths)
    ]
    total = 0
    for i in range(len(rows)):
        count = 1
        for j in range(i + 1, len(rows)):
            count *= len(rows[j])
        total += count
    if total > _MAX_ENUMERATED_QUORUMS:
        raise ValidationError(
            f"crumbling_wall would enumerate {total} quorums; reduce the wall"
        )

    quorums: list[frozenset] = []
    seen: set[frozenset] = set()
    for i, row in enumerate(rows):
        lower_choices = product(*rows[i + 1 :]) if i + 1 < len(rows) else [()]
        for representatives in lower_choices:
            quorum = frozenset(row) | frozenset(representatives)
            if quorum not in seen:
                seen.add(quorum)
                quorums.append(quorum)
    universe = [cell for row in rows for cell in row]
    return QuorumSystem(
        quorums,
        universe=universe,
        name=f"wall({','.join(map(str, row_widths))})",
        check=False,
    )


def cw_log(rows: int) -> QuorumSystem:
    """The CWlog-style wall: row ``i`` (0-based) has width ``i + 1``.

    A small concrete member of the Peleg-Wool family whose quorum sizes
    grow slowly while the top rows stay narrow and hot, giving a sharply
    skewed load profile.
    """
    check_integer_in_range(rows, "rows", low=1)
    return crumbling_wall([i + 1 for i in range(rows)])
