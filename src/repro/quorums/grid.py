"""The Grid quorum system (Cheung, Ammar & Ahamad 1992; Kumar et al. 1993).

The ``k x k`` Grid arranges ``k^2`` elements in a square matrix; the
quorum ``Q_{ij}`` is the union of row ``i`` and column ``j``.  There are
``k^2`` quorums of ``2k - 1`` elements each, and any two quorums intersect
because the row of one always meets the column of the other.  Under the
uniform access strategy — which is load-optimal for the Grid (Naor & Wool
1998) — each element lies in ``2k - 1`` quorums and carries load
``(2k - 1) / k^2 = O(1/k)``.

Section 4.1 of the paper gives an *optimal* single-source placement for
this system (see :mod:`repro.core.grid_layout`); elements here are the
coordinate pairs ``(row, column)`` so that layout code can address the
logical matrix directly.
"""

from __future__ import annotations

from .._validation import check_integer_in_range
from .base import QuorumSystem

__all__ = ["grid", "rectangular_grid", "grid_element", "grid_quorum_index"]


def grid_element(row: int, column: int) -> tuple[int, int]:
    """The universe element at matrix position ``(row, column)`` (0-based)."""
    check_integer_in_range(row, "row", low=0)
    check_integer_in_range(column, "column", low=0)
    return (row, column)


def grid_quorum_index(k: int, row: int, column: int) -> int:
    """Index of quorum ``Q_{row,column}`` in ``grid(k).quorums`` order."""
    check_integer_in_range(row, "row", low=0, high=k - 1)
    check_integer_in_range(column, "column", low=0, high=k - 1)
    return row * k + column


def grid(k: int) -> QuorumSystem:
    """The square ``k x k`` Grid quorum system.

    Universe elements are pairs ``(row, column)`` with ``0 <= row,
    column < k``.  Quorums are emitted in row-major order of ``(i, j)``:
    ``quorums[i * k + j]`` is row ``i`` union column ``j``.
    """
    return rectangular_grid(k, k)


def rectangular_grid(rows: int, columns: int) -> QuorumSystem:
    """The general ``rows x columns`` grid.

    The quorum for ``(i, j)`` is row ``i`` union column ``j``; two quorums
    ``(i, j)`` and ``(i', j')`` intersect at matrix cell ``(i, j')``.  The
    square case is the classical Grid; rectangular shapes trade quorum
    size (``rows + columns - 1``) against load.
    """
    check_integer_in_range(rows, "rows", low=1)
    check_integer_in_range(columns, "columns", low=1)
    universe = [(i, j) for i in range(rows) for j in range(columns)]
    quorums: list[frozenset] = []
    seen: set[frozenset] = set()
    for i in range(rows):
        row_cells = [(i, c) for c in range(columns)]
        for j in range(columns):
            column_cells = [(r, j) for r in range(rows)]
            quorum = frozenset(row_cells) | frozenset(column_cells)
            # Degenerate single-row/column grids repeat the same quorum;
            # keep the family duplicate-free (quorum indices for k >= 2
            # square grids are unaffected).
            if quorum not in seen:
                seen.add(quorum)
                quorums.append(quorum)
    name = f"grid({rows})" if rows == columns else f"grid({rows}x{columns})"
    return QuorumSystem(quorums, universe=universe, name=name, check=False)
