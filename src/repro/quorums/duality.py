"""Coterie duality and non-domination (Garcia-Molina & Barbara 1985).

The *transversal family* ``T(Q)`` of a quorum system ``Q`` is the set of
minimal sets hitting every quorum.  It drives the classical structure
theory of coteries:

* ``T(T(Q))`` equals the reduced (antichain) form of ``Q``;
* ``T(Q)`` pairwise intersects — i.e. is itself a quorum system — only
  for *non-dominated* coteries; e.g. the (dominated) 3-of-4 majority has
  ``T = all 2-subsets``, which contains disjoint pairs;
* a coterie is **non-dominated** exactly when it equals its own
  transversal family (``is_self_dual``): no other coterie is uniformly
  better for availability.

Read quorums and write quorums of replicated-data protocols are
transversal pairs, which is why this module sits next to
:mod:`repro.quorums.readwrite`.

Computation enumerates minimal hitting sets (exponential); the guard
admits universes up to 15 elements.
"""

from __future__ import annotations

from itertools import combinations

from ..exceptions import IntersectionError, ValidationError
from .base import QuorumSystem

__all__ = [
    "minimal_transversals",
    "dual_system",
    "is_self_dual",
    "is_non_dominated",
]

_MAX_DUAL_UNIVERSE = 15


def minimal_transversals(system: QuorumSystem) -> list[frozenset]:
    """All minimal sets hitting every quorum of *system*.

    Enumerates subsets in increasing size, keeping a hit set only when
    no smaller transversal is contained in it.
    """
    universe = system.universe
    if len(universe) > _MAX_DUAL_UNIVERSE:
        raise ValidationError(
            f"minimal_transversals supports universes of at most "
            f"{_MAX_DUAL_UNIVERSE} elements (got {len(universe)})"
        )
    quorums = system.quorums
    found: list[frozenset] = []
    for size in range(1, len(universe) + 1):
        for candidate in combinations(universe, size):
            candidate_set = frozenset(candidate)
            if any(existing <= candidate_set for existing in found):
                continue
            if all(not candidate_set.isdisjoint(q) for q in quorums):
                found.append(candidate_set)
    return found


def dual_system(system: QuorumSystem) -> QuorumSystem:
    """The transversal family as a quorum system.

    Raises
    ------
    IntersectionError
        When the transversal family is *not* pairwise intersecting —
        which happens exactly when it cannot serve as a quorum system
        (the original coterie is dominated "badly enough"; see module
        docs).  Use :func:`minimal_transversals` directly when you only
        need the family.
    """
    transversals = minimal_transversals(system)
    return QuorumSystem(
        transversals,
        universe=system.universe,
        name=f"dual({system.name})",
        check=True,
    )


def is_self_dual(system: QuorumSystem) -> bool:
    """Whether the *reduced* system equals its own transversal family."""
    reduced = system.reduced()
    return set(minimal_transversals(reduced)) == set(reduced.quorums)


def is_non_dominated(system: QuorumSystem) -> bool:
    """The Garcia-Molina & Barbara non-domination test.

    A coterie ``C`` is dominated when some other coterie ``D`` is
    uniformly at least as good (every ``D``-quorum inside some
    ``C``-quorum... formally: ``D != C`` and every ``C``-quorum contains
    a ``D``-quorum).  Non-dominated coteries are optimal for
    availability, and they are exactly the self-dual ones — which is how
    this predicate is computed.
    """
    return is_self_dual(system)
