"""Tree quorum systems (Agrawal & El Abbadi 1990).

Elements are the nodes of a complete binary tree.  A quorum of the
subtree rooted at ``v`` is obtained recursively:

* the root ``v`` together with a quorum of *either* child's subtree, or
* (modeling a failed root) a quorum of the left subtree together with a
  quorum of the right subtree.

For a leaf, the only quorum is the leaf itself.  Any two quorums
intersect: walk down from the root — at each node, either both quorums
contain it (done), or at least one of them recurses into *both*
children, forcing the intersection argument into a common subtree.

Tree quorums are attractive in the placement setting because their
quorum sizes range from ``O(log n)`` (a root-to-leaf path) to ``O(n)``;
the load/delay profile is highly non-uniform, which stresses the
capacity machinery of the placement algorithms.
"""

from __future__ import annotations

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .base import QuorumSystem

__all__ = ["tree_quorum_system", "complete_binary_tree_nodes"]

#: Quorum counts grow doubly exponentially with height; enumerate safely.
_MAX_HEIGHT = 4


def complete_binary_tree_nodes(height: int) -> list[int]:
    """Node labels ``1 .. 2^(height+1) - 1`` in heap order.

    Node ``i`` has children ``2i`` and ``2i + 1``; leaves are the labels
    greater than ``2^height - 1``.
    """
    check_integer_in_range(height, "height", low=0)
    return list(range(1, 2 ** (height + 1)))


def _quorums_of(node: int, leaf_start: int) -> list[frozenset]:
    if node >= leaf_start:
        return [frozenset([node])]
    left = _quorums_of(2 * node, leaf_start)
    right = _quorums_of(2 * node + 1, leaf_start)
    result: list[frozenset] = []
    seen: set[frozenset] = set()

    def add(quorum: frozenset) -> None:
        if quorum not in seen:
            seen.add(quorum)
            result.append(quorum)

    for child_quorum in left:
        add(frozenset([node]) | child_quorum)
    for child_quorum in right:
        add(frozenset([node]) | child_quorum)
    for left_quorum in left:
        for right_quorum in right:
            add(left_quorum | right_quorum)
    return result


def tree_quorum_system(height: int) -> QuorumSystem:
    """The Agrawal-El Abbadi tree quorum system on a complete binary tree.

    Parameters
    ----------
    height:
        Tree height (0 = single node).  Heights above 4 are rejected —
        the number of quorums satisfies the recurrence
        ``m(h) = 2 m(h-1) + m(h-1)^2`` and explodes past that.
    """
    check_integer_in_range(height, "height", low=0)
    if height > _MAX_HEIGHT:
        raise ValidationError(
            f"tree_quorum_system supports height <= {_MAX_HEIGHT}; "
            f"height {height} would enumerate an astronomically large family"
        )
    nodes = complete_binary_tree_nodes(height)
    leaf_start = 2**height
    quorums = _quorums_of(1, leaf_start)
    return QuorumSystem(
        quorums, universe=nodes, name=f"tree(h={height})", check=False
    )
