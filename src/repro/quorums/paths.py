"""The Paths quorum system (Naor & Wool 1998), staircase variant.

Elements are the cells of a ``k x k`` lattice.  A quorum is the union of
a *left-right* monotone staircase (starts in column 0, ends in column
``k-1``, moving only right or down) and a *top-bottom* monotone
staircase (starts in row 0, ends in row ``k-1``, moving only down or
right).  Any LR staircase and any TB staircase must cross in a cell — a
monotone curve from the left edge to the right edge separates the top
edge from the bottom edge — so any two quorums intersect (each contains
one curve of each kind).

Naor & Wool's full Paths system uses arbitrary crossing paths and is the
construction achieving optimal load *and* optimal availability
simultaneously; the monotone restriction here keeps the family
enumerable (the number of monotone staircases is ``k * C(2(k-1), k-1)``-
ish) while preserving the intersection structure.  Construction is
verified with ``check=True``.
"""

from __future__ import annotations

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from .base import QuorumSystem

__all__ = ["paths_system"]

_MAX_ENUMERATED_QUORUMS = 100_000


def _lr_staircases(k: int) -> list[frozenset]:
    """Monotone left-right paths: start at (r, 0), move right/down,
    end in column k-1."""
    results: list[frozenset] = []

    def extend(row: int, column: int, cells: set) -> None:
        if column == k - 1:
            results.append(frozenset(cells))
            # May also continue downward? Ending at first arrival keeps
            # the family minimal-ish and the count bounded.
            return
        # move right
        extend(row, column + 1, cells | {(row, column + 1)})
        # move down
        if row + 1 < k:
            extend(row + 1, column, cells | {(row + 1, column)})

    for start_row in range(k):
        extend(start_row, 0, {(start_row, 0)})
    return list(dict.fromkeys(results))


def _tb_staircases(k: int) -> list[frozenset]:
    """Monotone top-bottom paths: start at (0, c), move down/right,
    end in row k-1 (the transpose of the LR family)."""
    return [
        frozenset((column, row) for row, column in path)
        for path in _lr_staircases(k)
    ]


def paths_system(k: int) -> QuorumSystem:
    """The monotone Paths system on the ``k x k`` lattice.

    Quorums are all unions of one LR staircase and one TB staircase.
    Only small ``k`` are practical (the family is the product of the two
    staircase families); ``k <= 4`` stays in the thousands.
    """
    check_integer_in_range(k, "k", low=1)
    lr = _lr_staircases(k)
    tb = _tb_staircases(k)
    if len(lr) * len(tb) > _MAX_ENUMERATED_QUORUMS:
        raise ValidationError(
            f"paths_system({k}) would enumerate {len(lr) * len(tb)} quorums"
        )
    quorums: list[frozenset] = []
    seen: set[frozenset] = set()
    for horizontal in lr:
        for vertical in tb:
            quorum = horizontal | vertical
            if quorum not in seen:
                seen.add(quorum)
                quorums.append(quorum)
    universe = [(r, c) for r in range(k) for c in range(k)]
    return QuorumSystem(
        quorums, universe=universe, name=f"paths({k})", check=True
    )
