"""Load-optimal access strategies via linear programming (Naor & Wool 1998).

The *system load* of a quorum system ``Q`` is

    L(Q) = min over strategies p of max over elements u of load_p(u),

the best achievable worst-element load.  It is computed exactly by the LP

    minimize  L
    s.t.      sum_Q p(Q) = 1
              sum_{Q containing u} p(Q) <= L        for every element u
              p(Q) >= 0

The paper takes the access strategy as an *input* ("chosen from the
existing literature to achieve good load-balancing"); this module is how
the library produces that input for arbitrary systems, and it also
verifies the classical closed forms (uniform is optimal for Grid and
Majority) used in Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import cost, raises
from ..lp import Model
from .base import QuorumSystem
from .strategy import AccessStrategy

__all__ = ["OptimalStrategyResult", "optimal_strategy", "system_load"]


@dataclass(frozen=True)
class OptimalStrategyResult:
    """Result of the Naor-Wool strategy LP.

    Attributes
    ----------
    strategy:
        A load-optimal access strategy.
    load:
        The system load ``L(Q)`` achieved by ``strategy``.
    """

    strategy: AccessStrategy
    load: float


@cost("n * q**2")
@raises("ValidationError")
def optimal_strategy(  # repro-lint: disable=R001 (input pre-validated by type)
    system: QuorumSystem,
) -> OptimalStrategyResult:
    """Compute a load-optimal access strategy for *system*.

    Returns the strategy together with the optimal system load.  The LP
    has one variable per quorum plus the load bound, and one constraint
    per universe element, so it is comfortably polynomial in the explicit
    system size.
    """
    model = Model(name=f"naor-wool({system.name})")
    p = model.variables(len(system), prefix="p")
    bound = model.variable("L")

    total = p[0].to_expr()
    for variable in p[1:]:
        total = total + variable
    model.add_constraint(total == 1, name="distribution")

    for element in system.universe:
        indices = system.quorums_containing(element)
        if not indices:
            continue
        load_expr = p[indices[0]].to_expr()
        for index in indices[1:]:
            load_expr = load_expr + p[index]
        model.add_constraint(load_expr <= bound, name=f"load[{element!r}]")

    model.minimize(bound)
    solution = model.solve()
    probabilities = [max(solution.value(variable), 0.0) for variable in p]
    strategy = AccessStrategy.from_weights(system, probabilities)
    return OptimalStrategyResult(strategy=strategy, load=float(solution.objective))


def system_load(system: QuorumSystem) -> float:  # repro-lint: disable=R001
    """The system load ``L(Q)``: see :func:`optimal_strategy`."""
    return optimal_strategy(system).load
