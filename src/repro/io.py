"""JSON serialization for the library's value types.

Operational users need to persist and exchange networks, quorum systems,
strategies and placements (e.g. ship a placement from a planning job to a
deployment job).  This module provides deterministic, dependency-free
JSON round-trips:

* :func:`network_to_dict` / :func:`network_from_dict`
* :func:`system_to_dict` / :func:`system_from_dict`
* :func:`strategy_to_dict` / :func:`strategy_from_dict`
* :func:`placement_to_dict` / :func:`placement_from_dict`
* :func:`save_json` / :func:`load_json` — thin file helpers.

Labels (universe elements, node names) may be strings, ints, floats,
bools, or (nested) tuples of those — tuples are encoded as
``{"t": [...]}`` objects since JSON has no tuple type.  Other label types
are rejected eagerly with a clear error.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from .core.placement import Placement
from .exceptions import ValidationError
from .network.graph import Network
from .quorums.base import QuorumSystem
from .quorums.strategy import AccessStrategy

__all__ = [
    "encode_label",
    "decode_label",
    "network_to_dict",
    "network_from_dict",
    "system_to_dict",
    "system_from_dict",
    "strategy_to_dict",
    "strategy_from_dict",
    "placement_to_dict",
    "placement_from_dict",
    "save_json",
    "load_json",
]

_SCALAR_TYPES = (str, int, float, bool)


def encode_label(label: Any) -> Any:
    """Encode a node/element label into a JSON-compatible value.

    >>> encode_label(("a", 1))
    {'t': ['a', 1]}
    >>> decode_label({'t': ['a', 1]})
    ('a', 1)
    """
    if isinstance(label, tuple):
        return {"t": [encode_label(item) for item in label]}
    if isinstance(label, _SCALAR_TYPES):
        return label
    raise ValidationError(
        f"label {label!r} of type {type(label).__name__} is not serializable; "
        "use strings, numbers, bools, or tuples of those"
    )


def decode_label(value: Any) -> Any:
    """Inverse of :func:`encode_label`."""
    if isinstance(value, dict):
        if set(value) != {"t"}:
            raise ValidationError(f"malformed encoded label {value!r}")
        return tuple(decode_label(item) for item in value["t"])
    if isinstance(value, _SCALAR_TYPES) or value is None:
        return value
    raise ValidationError(f"malformed encoded label {value!r}")


# -- Network -----------------------------------------------------------------------


def network_to_dict(network: Network) -> dict:
    """Serialize a network (nodes, edges, capacities, name)."""
    capacities = {}
    finite = {}
    for node in network.nodes:
        value = network.capacity(node)
        finite[node] = None if math.isinf(value) else value
    return {
        "kind": "network",
        "name": network.name,
        "nodes": [encode_label(v) for v in network.nodes],
        "edges": [
            [encode_label(u), encode_label(v), length]
            for u, v, length in network.edges()
        ],
        "capacities": [finite[v] for v in network.nodes],
    }


def network_from_dict(data: dict) -> Network:
    """Deserialize a network produced by :func:`network_to_dict`."""
    if data.get("kind") != "network":
        raise ValidationError("not a serialized network")
    nodes = [decode_label(v) for v in data["nodes"]]
    edges = [
        (decode_label(u), decode_label(v), float(length))
        for u, v, length in data["edges"]
    ]
    raw_capacities = data["capacities"]
    if len(raw_capacities) != len(nodes):
        raise ValidationError("capacities length does not match nodes")
    capacities = {
        node: (math.inf if value is None else float(value))
        for node, value in zip(nodes, raw_capacities)
    }
    return Network(nodes, edges, capacities=capacities, name=data.get("name", "network"))


# -- QuorumSystem -------------------------------------------------------------------


def system_to_dict(system: QuorumSystem) -> dict:
    """Serialize a quorum system (universe + quorums, sorted for
    determinism)."""
    index = {u: i for i, u in enumerate(system.universe)}
    return {
        "kind": "quorum_system",
        "name": system.name,
        "universe": [encode_label(u) for u in system.universe],
        "quorums": [
            sorted(index[u] for u in quorum) for quorum in system.quorums
        ],
    }


def system_from_dict(data: dict) -> QuorumSystem:
    """Deserialize a quorum system; re-verifies the intersection property."""
    if data.get("kind") != "quorum_system":
        raise ValidationError("not a serialized quorum system")
    universe = [decode_label(u) for u in data["universe"]]
    quorums = [
        frozenset(universe[i] for i in quorum) for quorum in data["quorums"]
    ]
    return QuorumSystem(
        quorums, universe=universe, name=data.get("name", "quorum system"), check=True
    )


# -- AccessStrategy -------------------------------------------------------------------


def strategy_to_dict(strategy: AccessStrategy) -> dict:
    """Serialize a strategy together with its system."""
    return {
        "kind": "access_strategy",
        "system": system_to_dict(strategy.system),
        "probabilities": [float(p) for p in strategy.probabilities],
    }


def strategy_from_dict(data: dict) -> AccessStrategy:
    """Deserialize a strategy produced by :func:`strategy_to_dict`."""
    if data.get("kind") != "access_strategy":
        raise ValidationError("not a serialized access strategy")
    system = system_from_dict(data["system"])
    return AccessStrategy(system, data["probabilities"])


# -- Placement ----------------------------------------------------------------------


def placement_to_dict(placement: Placement) -> dict:
    """Serialize a placement with its system and network context."""
    return {
        "kind": "placement",
        "system": system_to_dict(placement.system),
        "network": network_to_dict(placement.network),
        "mapping": [
            [encode_label(element), encode_label(node)]
            for element, node in placement.as_dict().items()
        ],
    }


def placement_from_dict(data: dict) -> Placement:
    """Deserialize a placement produced by :func:`placement_to_dict`."""
    if data.get("kind") != "placement":
        raise ValidationError("not a serialized placement")
    system = system_from_dict(data["system"])
    network = network_from_dict(data["network"])
    mapping = {
        decode_label(element): decode_label(node) for element, node in data["mapping"]
    }
    return Placement(system, network, mapping)


# -- files -------------------------------------------------------------------------


def save_json(obj: dict, path: str | Path) -> None:
    """Write a serialized object as pretty JSON."""
    Path(path).write_text(json.dumps(obj, indent=2, sort_keys=True) + "\n")


def load_json(path: str | Path) -> dict:
    """Read a JSON file produced by :func:`save_json`."""
    return json.loads(Path(path).read_text())
