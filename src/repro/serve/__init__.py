"""Placement-as-a-service: the online serving layer over the batch solvers.

The paper solves QPP once, offline.  This package wraps that solver in
a long-running, single-process service (ROADMAP item 2): an in-process
:class:`PlacementService` with a versioned snapshot cache, request
batching, and drift-triggered incremental re-solves, plus the JSONL
session loop behind ``repro serve``.  Architecture, drift policy, and
the frozen request/response schema are documented in
``docs/serving.md``.
"""

from .cache import PlacementSnapshot, SnapshotCache
from .engine import PlacementService
from .loop import SessionSummary, serve_session
from .schema import (
    REQUEST_KIND,
    REQUEST_OPS,
    RESPONSE_KIND,
    SERVE_SCHEMA_VERSION,
    serve_request,
    validate_serve_request,
    validate_serve_response,
)

__all__ = [
    "PlacementService",
    "PlacementSnapshot",
    "REQUEST_KIND",
    "REQUEST_OPS",
    "RESPONSE_KIND",
    "SERVE_SCHEMA_VERSION",
    "SessionSummary",
    "SnapshotCache",
    "serve_request",
    "serve_session",
    "validate_serve_request",
    "validate_serve_response",
]
