"""The in-process placement-serving engine.

:class:`PlacementService` wraps the batch QPP solver
(:func:`repro.core.solve_qpp`) in a long-running request loop:

* **Versioned cache** — every published placement is an immutable
  :class:`~repro.serve.cache.PlacementSnapshot`; delay queries are
  answered from the current snapshot's precomputed ``Delta_f(v)``
  vector without touching a solver (epsilon-stale reads).
* **Batching** — requests accumulate in a bounded queue and are
  drained per :meth:`tick`, at most ``max_batch`` at a time, with
  ``repro.obs`` counters/spans on every path.
* **Drift-triggered re-solve** — demand updates accumulate into the
  access distribution.  At the end of each tick the engine re-evaluates
  the *current* placement's objective under the new weights (one dot
  product against the snapshot's cached per-client vector).  When the
  relative drift exceeds ``drift_threshold``, a re-solve runs —
  optionally under ``retrying(...)`` when an error-contract certificate
  is available — and atomically publishes the next snapshot version.

The engine is single-process and deterministic: responses carry the
tick index and snapshot version, never wall-clock values, so a seeded
session replays byte-identically (``docs/serving.md``).
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any

import numpy as np

from .._validation import check_integer_in_range, check_scale, require
from ..core.placement import per_client_expected_max_delay
from ..core.qpp import solve_qpp, warm_candidates
from ..exceptions import ValidationError
from ..obs import counter, gauge, histogram, span
from ..resilience import fault_point, maybe_retrying
from .cache import PlacementSnapshot, SnapshotCache
from .schema import (
    RESPONSE_KIND,
    SERVE_SCHEMA_VERSION,
    validate_serve_request,
)

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from numpy.typing import NDArray

__all__ = ["PlacementService"]

#: Relative-drift floor: below this, projected and solved objectives are
#: considered numerically identical.
_DRIFT_TINY = 1e-12

_REQUESTS = counter("serve.request.count")
_BATCH_SIZE = histogram("serve.batch.size")
_STALE_READS = counter("serve.stale.reads")
_EXACT_READS = counter("serve.exact.reads")
_RESOLVES = counter("serve.resolve.count")
_VERSION = gauge("serve.snapshot.version")
_QUEUE_DEPTH = gauge("serve.queue.depth")
_TICK_SECONDS = histogram("serve.tick.seconds")


class PlacementService:
    """Single-process placement-as-a-service engine.

    Parameters mirror :func:`repro.core.solve_qpp` where they are
    forwarded to it (``alpha``, ``scale``, ``landmarks``, ``lp_method``,
    ``formulation``, ``parallel``, ``certificate``); the serving knobs
    are ``drift_threshold`` (relative objective drift that triggers a
    re-solve), ``max_batch`` / ``queue_limit`` (batching bounds),
    ``warm_limit`` (re-solves restrict the candidate sweep to the best
    sources of the previous solve), and ``retry_certificate`` (when an
    error contract is available, re-solves run under
    :func:`repro.resilience.retrying`).
    """

    def __init__(
        self,
        system: Any,
        strategy: Any,
        network: Any,
        *,
        alpha: float = 2.0,
        rates: Mapping[Any, float] | None = None,
        drift_threshold: float = 0.1,
        max_batch: int = 64,
        queue_limit: int = 4096,
        scale: str | None = None,
        landmarks: int = 16,
        lp_method: str = "highs",
        formulation: str = "prefix",
        parallel: str | None = None,
        certificate: Any = None,
        retry_certificate: Any = None,
        warm_limit: int | None = None,
    ) -> None:
        require(
            drift_threshold >= 0.0,
            f"drift_threshold must be >= 0, got {drift_threshold!r}",
        )
        check_integer_in_range(max_batch, "max_batch", low=1)
        check_integer_in_range(queue_limit, "queue_limit", low=1)
        check_scale(scale)
        if warm_limit is not None:
            check_integer_in_range(warm_limit, "warm_limit", low=1)
        self._system = system
        self._strategy = strategy
        self._network = network
        self._alpha = float(alpha)
        self._drift_threshold = float(drift_threshold)
        self._max_batch = int(max_batch)
        self._queue_limit = int(queue_limit)
        self._scale = scale
        self._landmarks = int(landmarks)
        self._lp_method = lp_method
        self._formulation = formulation
        self._parallel = parallel
        self._certificate = certificate
        self._warm_limit = warm_limit
        self._solver = maybe_retrying(solve_qpp, certificate=retry_certificate)
        self._view = network.lazy_metric() if scale == "large" else None
        self._node_index: dict[Any, int] = {
            node: index for index, node in enumerate(network.nodes)
        }
        self._node_by_name = {str(node): node for node in network.nodes}
        self._queue: deque[dict[str, Any]] = deque()
        self._cache = SnapshotCache()
        # Demand model: every client starts with baseline rate (uniform
        # 1.0 unless initial `rates` are given); `update` requests add
        # deltas, clamped at zero when materialized.
        self._base_rates: dict[Any, float] = (
            {node: 1.0 for node in network.nodes}
            if rates is None
            else {node: float(rates.get(node, 0.0)) for node in network.nodes}
        )
        self._delta: dict[Any, float] = {}
        self._pending_updates = 0
        self._ticks = 0
        self._queries = 0
        self._stale_reads = 0
        self._exact_reads = 0
        self._resolves = 0
        self._publish(rates if rates is not None else None, candidates=None)

    # -- public read-only state ------------------------------------------

    @property
    def version(self) -> int:
        """Version of the snapshot currently serving queries."""
        return self._cache.version

    @property
    def snapshot(self) -> PlacementSnapshot:
        """The current (immutable) snapshot."""
        return self._cache.current

    @property
    def ticks(self) -> int:
        """Number of completed ticks."""
        return self._ticks

    @property
    def resolves(self) -> int:
        """Number of snapshot publishes after the initial solve."""
        return self._resolves

    @property
    def queue_depth(self) -> int:
        """Requests waiting in the bounded queue."""
        return len(self._queue)

    @property
    def max_batch(self) -> int:
        """Maximum requests drained per tick."""
        return self._max_batch

    # -- demand model ----------------------------------------------------

    def _effective_rates(self) -> dict[Any, float]:
        rates = dict(self._base_rates)
        for node, delta in self._delta.items():
            rates[node] = max(0.0, rates[node] + delta)
        return rates

    def _weight_vector(self) -> "NDArray[np.float64]":
        rates = self._effective_rates()
        weights = np.array(
            [rates[node] for node in self._network.nodes], dtype=float
        )
        total = float(weights.sum())
        require(total > 0.0, f"total demand rate must be positive, got {total!r}")
        result: "NDArray[np.float64]" = weights / total
        return result

    def drift(self) -> float:
        """Relative drift of the snapshot objective under current demand."""
        snapshot = self._cache.current
        if self._pending_updates == 0:
            return 0.0
        projected = snapshot.projected_objective(self._weight_vector())
        return abs(projected - snapshot.objective) / max(
            abs(snapshot.objective), _DRIFT_TINY
        )

    # -- solve / publish -------------------------------------------------

    def _publish(
        self, rates: Mapping[Any, float] | None, *, candidates: Any
    ) -> PlacementSnapshot:
        fault_point("serve.resolve")
        result = self._solver(
            self._system,
            self._strategy,
            network=self._network,
            alpha=self._alpha,
            rates=rates,
            candidate_sources=candidates,
            lp_method=self._lp_method,
            formulation=self._formulation,
            parallel=self._parallel,
            certificate=self._certificate,
            scale=self._scale,
            landmarks=self._landmarks,
        )
        per_client = per_client_expected_max_delay(
            result.placement, self._strategy, metric=self._view
        )
        weights = self._weight_vector() if rates is not None else (
            np.full(len(self._node_index), 1.0 / len(self._node_index))
        )
        snapshot = PlacementSnapshot(
            version=self._cache.next_version(),
            placement=result.placement,
            result=result,
            telemetry=result.telemetry,
            per_client=per_client,
            weights=weights,
            objective=float(per_client @ weights),
        )
        self._cache.publish(snapshot)
        _VERSION.set(float(snapshot.version))
        return snapshot

    def _resolve_now(self) -> PlacementSnapshot:
        previous = self._cache.current.result
        candidates = None
        if self._warm_limit is not None and getattr(previous, "per_source", None):
            candidates = warm_candidates(previous, limit=self._warm_limit)
        with span("serve.resolve", version=self._cache.version):
            snapshot = self._publish(self._effective_rates(), candidates=candidates)
        self._resolves += 1
        self._pending_updates = 0
        _RESOLVES.inc()
        return snapshot

    # -- request intake --------------------------------------------------

    def submit(self, document: Mapping[str, Any]) -> None:
        """Validate and enqueue one request document.

        Raises :class:`ValidationError` on schema violations or when the
        bounded queue is full; the JSONL loop turns both into ``error``
        responses.
        """
        validate_serve_request(document)
        require(
            len(self._queue) < self._queue_limit,
            f"serve queue is full (queue_limit={self._queue_limit})",
        )
        self._queue.append(dict(document))
        _QUEUE_DEPTH.set(float(len(self._queue)))

    # -- responses -------------------------------------------------------

    def _response(
        self, document: Mapping[str, Any] | None, op: str, **fields: Any
    ) -> dict[str, Any]:
        response: dict[str, Any] = {
            "kind": RESPONSE_KIND,
            "schema_version": SERVE_SCHEMA_VERSION,
            "id": document.get("id") if document is not None else None,
            "op": op,
            "ok": True,
            "tick": self._ticks,
            "version": self._cache.version,
        }
        response.update(fields)
        return response

    def error_response(
        self, message: str, *, request: Mapping[str, Any] | None = None
    ) -> dict[str, Any]:
        """An ``ok=false`` response carrying *message*."""
        response = self._response(request, "error", error=message)
        response["ok"] = False
        return response

    # -- request handlers ------------------------------------------------

    def _resolve_client(self, document: Mapping[str, Any]) -> Any:
        client = document["client"]
        if client in self._node_index:
            return client
        resolved = self._node_by_name.get(str(client))
        require(resolved is not None, f"unknown client node {client!r}")
        return resolved

    def _handle_query(self, document: Mapping[str, Any]) -> dict[str, Any]:
        node = self._resolve_client(document)
        snapshot = self._cache.current
        delay = snapshot.delay_for(self._node_index[node])
        stale = self._pending_updates > 0
        self._queries += 1
        if stale:
            self._stale_reads += 1
            _STALE_READS.inc()
        else:
            self._exact_reads += 1
            _EXACT_READS.inc()
        return self._response(document, "query", delay=delay, stale=stale)

    def _handle_update(self, document: Mapping[str, Any]) -> dict[str, Any]:
        node = self._resolve_client(document)
        self._delta[node] = self._delta.get(node, 0.0) + float(document["rate"])
        self._pending_updates += 1
        return self._response(document, "update", pending=self._pending_updates)

    def _handle_stats(self, document: Mapping[str, Any]) -> dict[str, Any]:
        return self._response(
            document,
            "stats",
            queries=self._queries,
            stale_reads=self._stale_reads,
            exact_reads=self._exact_reads,
            resolves=self._resolves,
            drift=self.drift(),
        )

    def _handle_resolve(self, document: Mapping[str, Any]) -> dict[str, Any]:
        snapshot = self._resolve_now()
        return self._response(
            document, "resolve", resolved=True, version=snapshot.version
        )

    # -- the tick --------------------------------------------------------

    def tick(self) -> list[dict[str, Any]]:
        """Drain up to ``max_batch`` queued requests and answer them.

        Queries are answered from the snapshot that is current *when the
        request is processed*: an earlier ``resolve`` in the same batch
        is visible to later queries, while the end-of-tick drift
        re-solve is not — those queries were (deliberately) epsilon-
        stale and are counted in ``serve.stale.reads``.
        """
        if not self._queue:
            return []
        started = time.perf_counter()
        self._ticks += 1
        batch_size = min(self._max_batch, len(self._queue))
        responses: list[dict[str, Any]] = []
        with span("serve.tick", tick=self._ticks, batch=batch_size):
            _BATCH_SIZE.observe(float(batch_size))
            for _ in range(batch_size):
                document = self._queue.popleft()
                _REQUESTS.inc()
                try:
                    handler = {
                        "query": self._handle_query,
                        "update": self._handle_update,
                        "stats": self._handle_stats,
                        "resolve": self._handle_resolve,
                    }[document["op"]]
                    responses.append(handler(document))
                except ValidationError as exc:
                    responses.append(
                        self.error_response(str(exc), request=document)
                    )
            if (
                self._pending_updates > 0
                and self.drift() > self._drift_threshold
            ):
                self._resolve_now()
        _QUEUE_DEPTH.set(float(len(self._queue)))
        _TICK_SECONDS.observe(time.perf_counter() - started)
        return responses
