"""Versioned, immutable placement snapshots and their publish gate.

A :class:`PlacementSnapshot` freezes everything the serving engine needs
to answer a delay query without touching a solver: the placement, the
solver result that produced it, the per-client expected-max-delay vector
``Delta_f(v)`` (the paper's per-client objective, evaluated once with
the vectorized kernel), and the client-weight vector the placement was
solved for.  A query is then a single array lookup; the weighted
objective is one dot product.

:class:`SnapshotCache` is the single mutable cell.  Publishing is one
reference assignment — readers either see the old snapshot or the new
one, never a half-built state — and versions must increase by exactly
one, so a stale or duplicate publish fails loudly instead of silently
rewinding the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

import numpy as np

from .._validation import require
from ..exceptions import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from numpy.typing import NDArray

__all__ = ["PlacementSnapshot", "SnapshotCache"]


@dataclass(frozen=True)
class PlacementSnapshot:
    """One immutable, versioned answer to "where do the quorums live?".

    ``per_client`` and ``weights`` are owned by the snapshot and must
    not be mutated; ``objective == per_client @ weights`` is cached so
    the drift bound against *new* weights is a dot product plus a
    subtraction.
    """

    #: Strictly-increasing publish version, starting at 1.
    version: int
    #: The placement being served (``repro.core.Placement``).
    placement: Any
    #: The ``QPPResult`` (or compatible solve result) behind it.
    result: Any
    #: Telemetry captured by the producing solve, or ``None``.
    telemetry: Any
    #: ``Delta_f(v)`` per client index, under this placement.
    per_client: "NDArray[np.float64]"
    #: Normalized client weights the placement was solved against.
    weights: "NDArray[np.float64]"
    #: Cached ``float(per_client @ weights)``.
    objective: float

    def delay_for(self, client_index: int) -> float:
        """The snapshot's expected max access delay for one client."""
        require(
            0 <= client_index < self.per_client.shape[0],
            f"client index {client_index} out of range "
            f"[0, {int(self.per_client.shape[0])})",
        )
        return float(self.per_client[client_index])

    def projected_objective(self, weights: "NDArray[np.float64]") -> float:
        """The *current* placement's objective under new *weights* —
        the cheap delta bound that drives drift-triggered re-solves."""
        require(
            weights.shape == self.per_client.shape,
            f"weight vector shape {tuple(weights.shape)} does not match "
            f"the client population {tuple(self.per_client.shape)}",
        )
        return float(self.per_client @ weights)


class SnapshotCache:
    """The single publish point for :class:`PlacementSnapshot` records."""

    __slots__ = ("_current", "_published")

    def __init__(self) -> None:
        self._current: PlacementSnapshot | None = None
        self._published = 0

    @property
    def version(self) -> int:
        """Version of the current snapshot (0 before the first publish)."""
        return 0 if self._current is None else self._current.version

    @property
    def published(self) -> int:
        """Total number of successful publishes."""
        return self._published

    @property
    def current(self) -> PlacementSnapshot:
        """The live snapshot; raises if nothing was ever published."""
        if self._current is None:
            raise ValidationError("snapshot cache is empty: nothing published yet")
        return self._current

    def next_version(self) -> int:
        """The version the next published snapshot must carry."""
        return self.version + 1

    def publish(self, snapshot: PlacementSnapshot) -> PlacementSnapshot:
        """Atomically install *snapshot* as the current version.

        The version must be exactly ``current + 1``; on violation the
        cache is left untouched (the old snapshot keeps serving).
        """
        require(
            isinstance(snapshot, PlacementSnapshot),
            "only PlacementSnapshot records can be published, "
            f"got {type(snapshot).__name__}",
        )
        require(
            snapshot.version == self.version + 1,
            "snapshot versions must increase by exactly one: "
            f"got {snapshot.version}, expected {self.version + 1}",
        )
        self._current = snapshot
        self._published += 1
        return snapshot
