"""The stdin/stdout JSONL loop behind ``repro serve``.

One request document per input line, one response document per output
line, in order.  Requests are batched: the service ticks whenever the
queue reaches ``max_batch`` pending requests, and drains completely at
end of input.  Output is deterministic — ``json.dumps(sort_keys=True)``
plus tick/version stamps instead of wall-clock values — so a seeded
session replays byte-identically (the property
``tests/test_serve_session.py`` locks in).
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import dataclass
from typing import IO, Any

from ..exceptions import ValidationError
from .engine import PlacementService

__all__ = ["SessionSummary", "serve_session"]


@dataclass(frozen=True)
class SessionSummary:
    """What a finished JSONL session did (for logs, not for stdout)."""

    requests: int
    responses: int
    errors: int
    ticks: int
    resolves: int
    final_version: int


def _write(out: IO[str], document: dict[str, Any]) -> None:
    out.write(json.dumps(document, sort_keys=True))
    out.write("\n")


def serve_session(
    service: PlacementService, lines: Iterable[str], out: IO[str]
) -> SessionSummary:
    """Drive *service* with JSONL *lines*, writing responses to *out*."""
    requests = 0
    responses = 0
    errors = 0

    def flush_tick() -> None:
        nonlocal responses, errors
        for response in service.tick():
            if not response["ok"]:
                errors += 1
            responses += 1
            _write(out, response)

    for raw in lines:
        line = raw.strip()
        if not line:
            continue
        requests += 1
        try:
            document = json.loads(line)
        except json.JSONDecodeError as exc:
            errors += 1
            responses += 1
            _write(out, service.error_response(f"invalid JSON: {exc.msg}"))
            continue
        try:
            service.submit(document)
        except ValidationError as exc:
            errors += 1
            responses += 1
            request = document if isinstance(document, dict) else None
            _write(out, service.error_response(str(exc), request=request))
            continue
        if service.queue_depth >= service.max_batch:
            flush_tick()
    while service.queue_depth:
        flush_tick()
    out.flush()
    return SessionSummary(
        requests=requests,
        responses=responses,
        errors=errors,
        ticks=service.ticks,
        resolves=service.resolves,
        final_version=service.version,
    )
