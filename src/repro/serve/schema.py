"""The frozen ``repro-serve-request`` / ``repro-serve-response`` schema (v1).

The serving loop (`repro serve`, :mod:`repro.serve.loop`) speaks JSONL:
one request document per input line, one response document per output
line.  Like the telemetry documents (:mod:`repro.obs.report`), the
schema is validated strictly on *structure* and loosely on *values*:
every required key must be present with the right shape, but the
validators do not re-derive domain facts (whether a client exists, say —
that is the engine's job, and it answers with an ``error`` response, not
an exception).

Version policy: ``schema_version`` is checked for equality.  Any change
to the required keys below is a new schema version, never a silent edit.

Request operations
------------------

========== ==========================================================
``query``   ``client`` — answer ``Delta_f(client)`` from the snapshot
``update``  ``client``, ``rate`` — add a demand-rate delta
``stats``   service counters and current drift bound
``resolve`` force a re-solve and snapshot publish
========== ==========================================================
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from .._validation import require
from ..exceptions import ValidationError

__all__ = [
    "REQUEST_KIND",
    "REQUEST_OPS",
    "RESPONSE_KIND",
    "SERVE_SCHEMA_VERSION",
    "serve_request",
    "validate_serve_request",
    "validate_serve_response",
]

#: Version of the request/response document layout described here.
SERVE_SCHEMA_VERSION = 1

#: ``kind`` discriminator of a request document.
REQUEST_KIND = "repro-serve-request"

#: ``kind`` discriminator of a response document.
RESPONSE_KIND = "repro-serve-response"

#: The closed set of request operations (schema v1).
REQUEST_OPS = ("query", "update", "stats", "resolve")

#: Extra required request keys per operation.
_REQUEST_EXTRA_KEYS: dict[str, tuple[str, ...]] = {
    "query": ("client",),
    "update": ("client", "rate"),
    "stats": (),
    "resolve": (),
}

#: Response keys common to every operation.
_RESPONSE_COMMON_KEYS = ("kind", "schema_version", "id", "op", "ok", "tick", "version")

#: Extra required response keys per operation (successful responses).
_RESPONSE_EXTRA_KEYS: dict[str, tuple[str, ...]] = {
    "query": ("delay", "stale"),
    "update": ("pending",),
    "stats": ("queries", "stale_reads", "exact_reads", "resolves", "drift"),
    "resolve": ("resolved",),
    "error": ("error",),
}


def _require_key(document: Mapping[str, Any], key: str, label: str) -> Any:
    if key not in document:
        raise ValidationError(f"{label} is missing required key {key!r}")
    return document[key]


def serve_request(op: str, *, id: int | str, **fields: Any) -> dict[str, Any]:
    """Build (and validate) a schema-v1 request document."""
    document: dict[str, Any] = {
        "kind": REQUEST_KIND,
        "schema_version": SERVE_SCHEMA_VERSION,
        "id": id,
        "op": op,
    }
    document.update(fields)
    validate_serve_request(document)
    return document


def validate_serve_request(document: Any) -> None:
    """Check *document* against the request schema, raising
    :class:`ValidationError` on the first structural violation."""
    require(
        isinstance(document, Mapping),
        f"serve request must be a JSON object, got {type(document).__name__}",
    )
    label = "serve request"
    kind = _require_key(document, "kind", label)
    require(
        kind == REQUEST_KIND,
        f"{label} kind must be {REQUEST_KIND!r}, got {kind!r}",
    )
    version = _require_key(document, "schema_version", label)
    require(
        version == SERVE_SCHEMA_VERSION,
        f"{label} schema_version must be {SERVE_SCHEMA_VERSION}, got {version!r}",
    )
    identifier = _require_key(document, "id", label)
    require(
        isinstance(identifier, (int, str)) and not isinstance(identifier, bool),
        f"{label} id must be an integer or string, got {type(identifier).__name__}",
    )
    op = _require_key(document, "op", label)
    require(
        op in REQUEST_OPS,
        f"{label} op must be one of {REQUEST_OPS}, got {op!r}",
    )
    for key in _REQUEST_EXTRA_KEYS[op]:
        _require_key(document, key, f"{label} op={op!r}")
    if op == "update":
        rate = document["rate"]
        require(
            isinstance(rate, (int, float)) and not isinstance(rate, bool),
            f"{label} rate must be a number, got {type(rate).__name__}",
        )


def validate_serve_response(document: Any) -> None:
    """Check *document* against the response schema, raising
    :class:`ValidationError` on the first structural violation."""
    require(
        isinstance(document, Mapping),
        f"serve response must be a JSON object, got {type(document).__name__}",
    )
    label = "serve response"
    for key in _RESPONSE_COMMON_KEYS:
        _require_key(document, key, label)
    require(
        document["kind"] == RESPONSE_KIND,
        f"{label} kind must be {RESPONSE_KIND!r}, got {document['kind']!r}",
    )
    require(
        document["schema_version"] == SERVE_SCHEMA_VERSION,
        f"{label} schema_version must be {SERVE_SCHEMA_VERSION}, "
        f"got {document['schema_version']!r}",
    )
    ok = document["ok"]
    require(isinstance(ok, bool), f"{label} ok must be a boolean, got {ok!r}")
    op = document["op"]
    if not ok:
        op = "error"
    require(
        op in _RESPONSE_EXTRA_KEYS,
        f"{label} op must be one of {tuple(_RESPONSE_EXTRA_KEYS)}, got {op!r}",
    )
    for key in _RESPONSE_EXTRA_KEYS[op]:
        _require_key(document, key, f"{label} op={op!r}")
    for key in ("tick", "version"):
        value = document[key]
        require(
            isinstance(value, int) and not isinstance(value, bool),
            f"{label} {key} must be an integer, got {type(value).__name__}",
        )
