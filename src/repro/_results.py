"""The unified solver result contract (see :mod:`repro.core.results`).

Every solver entry point returns a frozen subclass of
:class:`SolveResult` carrying the same canonical core — ``placement``,
``objective``, ``load_violation_factor``, ``provenance``, ``telemetry``
— plus solver-specific diagnostics.  Lint rule R301 keeps it that way
for future solvers.

The class lives in this low-layer module (rather than ``repro.core``)
so that lower layers — :mod:`repro.gap` in particular — can return
``SolveResult`` subclasses without importing upward; the public name is
re-exported as :mod:`repro.core.results`.

Backward compatibility: each subclass lists its pre-unification
attribute names in ``_legacy_aliases`` (e.g. ``average_delay`` →
``objective``).  Reading a legacy name still works but emits a
:class:`FutureWarning` naming the canonical field; so does legacy
tuple-style unpacking of a result.  Both paths are scheduled for
removal in the next major release (graduated from
:class:`DeprecationWarning` one release after the unification landed).
"""

from __future__ import annotations

import warnings
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field
from typing import Any, ClassVar

from .obs.metrics import TelemetrySnapshot

__all__ = ["Provenance", "SolveResult", "warn_legacy"]


@dataclass(frozen=True)
class Provenance:
    """Which algorithm and paper result produced a :class:`SolveResult`.

    ``parameters`` freezes the solver parameters that affect the
    guarantee (e.g. ``alpha``) as sorted ``(name, value)`` pairs so the
    record stays hashable.
    """

    algorithm: str
    theorem: str
    parameters: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, algorithm: str, theorem: str, **parameters: Any) -> "Provenance":
        """Build a provenance record from keyword parameters."""
        return cls(
            algorithm=algorithm,
            theorem=theorem,
            parameters=tuple(sorted(parameters.items())),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "theorem": self.theorem,
            "parameters": dict(self.parameters),
        }


def warn_legacy(message: str, *, stacklevel: int = 3) -> None:
    """Emit the library's removal warning for a legacy access path.

    A :class:`FutureWarning` (visible by default in user code, unlike
    ``DeprecationWarning``): every legacy path it guards disappears in
    the next major release, and *message* names the canonical
    replacement to migrate to.
    """
    warnings.warn(message, FutureWarning, stacklevel=stacklevel)


@dataclass(frozen=True)
class SolveResult:
    """Canonical result of a solver entry point.

    Attributes
    ----------
    placement:
        The solver's chosen placement/assignment (type depends on the
        solver: a :class:`repro.core.placement.Placement` for placement
        solvers, a job→machine mapping for GAP).
    objective:
        The realized objective value the solver minimized.
    load_violation_factor:
        Worst realized ``load / capacity`` over nodes (machines); 0 for
        an unloaded instance, ``inf`` for load on a zero-capacity node.
    provenance:
        Which algorithm/theorem produced the result, with the
        guarantee-relevant parameters.
    telemetry:
        The :class:`~repro.obs.metrics.TelemetrySnapshot` of the solve
        (counter deltas + wall time), or ``None`` when not captured.
    """

    placement: Any
    objective: float
    load_violation_factor: float
    provenance: Provenance
    telemetry: TelemetrySnapshot | None = field(default=None, kw_only=True)

    #: Legacy attribute name → canonical field name, per subclass.
    _legacy_aliases: ClassVar[Mapping[str, str]] = {}

    def __getattr__(self, name: str) -> Any:
        # Only reached for attributes that are not real fields.  Dunder
        # and private lookups (copy/pickle protocols) must fail fast.
        if name.startswith("_"):
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        canonical = type(self)._legacy_aliases.get(name)
        if canonical is None:
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        warn_legacy(
            f"{type(self).__name__}.{name} is deprecated and will be "
            f"removed in the next major release; "
            f"use {type(self).__name__}.{canonical}"
        )
        return getattr(self, canonical)

    def __iter__(self) -> Iterator[Any]:
        """Legacy tuple-style unpacking: ``placement, objective, factor``.

        Deprecated; read the named fields instead.
        """
        warn_legacy(
            f"tuple unpacking of {type(self).__name__} is deprecated and "
            "will stop working in the next major release; read the named "
            "fields (placement, objective, load_violation_factor)",
            stacklevel=2,
        )
        yield self.placement
        yield self.objective
        yield self.load_violation_factor
