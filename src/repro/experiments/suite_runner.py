"""Programmatic algorithm comparison across workload instances.

Wraps the "run everything on one instance" loop the examples and some
benches need: given a :class:`~repro.experiments.workloads.PlacementInstance`,
run the paper's two solvers plus the baselines, score every placement on
both objectives, and return a structured record.  Exact optima are
attached when the instance is small enough to brute-force.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.baselines import greedy_placement, random_placement
from ..core.exact import solve_qpp_exact
from ..core.placement import (
    Placement,
    average_max_delay,
    average_total_delay,
    capacity_violation_factor,
)
from ..core.qpp import solve_qpp
from ..core.total_delay import solve_total_delay
from ..exceptions import ReproError, ValidationError
from ..obs.metrics import TelemetrySnapshot, telemetry_scope
from .workloads import PlacementInstance

__all__ = ["AlgorithmScore", "InstanceComparison", "compare_algorithms"]

#: Brute force is attempted below this state-count estimate.
_EXACT_THRESHOLD = 2_000_000


@dataclass(frozen=True)
class AlgorithmScore:
    """One algorithm's placement scored on both paper objectives."""

    name: str
    max_delay: float
    total_delay: float
    load_factor: float
    failed: bool = False

    @classmethod
    def failure(cls, name: str) -> "AlgorithmScore":
        nan = float("nan")
        return cls(name=name, max_delay=nan, total_delay=nan, load_factor=nan, failed=True)


@dataclass(frozen=True)
class InstanceComparison:
    """All algorithm scores for one instance, plus the exact optimum
    (max-delay objective) when brute force was feasible."""

    instance: PlacementInstance
    scores: list[AlgorithmScore] = field(default_factory=list)
    optimal_max_delay: float | None = None
    #: Counter deltas + wall time of the whole comparison (LP solves,
    #: metric-cache traffic), captured by :func:`compare_algorithms`.
    telemetry: TelemetrySnapshot | None = None

    def score(self, name: str) -> AlgorithmScore:
        for entry in self.scores:
            if entry.name == name:
                return entry
        raise ValidationError(f"no score recorded for algorithm {name!r}")

    def ratio_to_optimal(self, name: str) -> float:
        """``max_delay / OPT`` for the named algorithm (NaN without OPT)."""
        if self.optimal_max_delay is None or self.optimal_max_delay <= 0:
            return float("nan")
        return self.score(name).max_delay / self.optimal_max_delay


def _score(name: str, placement: Placement, instance: PlacementInstance) -> AlgorithmScore:
    return AlgorithmScore(
        name=name,
        max_delay=average_max_delay(placement, instance.strategy),
        total_delay=average_total_delay(placement, instance.strategy),
        load_factor=capacity_violation_factor(placement, instance.strategy),
    )


def compare_algorithms(
    instance: PlacementInstance,
    *,
    rng: np.random.Generator,
    alpha: float = 2.0,
    candidate_sources: int | None = 4,
    include_exact: bool = True,
) -> InstanceComparison:
    """Run the standard algorithm roster on *instance*.

    Parameters
    ----------
    candidate_sources:
        Limit the Theorem 1.2 relay sweep to the first ``k`` nodes
        (None = all; the full sweep is what the theorem requires but the
        restricted one is much faster for surveys).
    include_exact:
        Attach the brute-force optimum when the search space allows.
    """
    system, strategy, network = instance.system, instance.strategy, instance.network
    scores: list[AlgorithmScore] = []

    sources = (
        list(network.nodes)[:candidate_sources]
        if candidate_sources is not None
        else None
    )
    with telemetry_scope() as telemetry:
        qpp = solve_qpp(
            system, strategy, network=network, alpha=alpha, candidate_sources=sources
        )
        scores.append(_score("qpp", qpp.placement, instance))

        total = solve_total_delay(system, strategy, network=network)
        scores.append(_score("total_delay", total.placement, instance))

        try:
            scores.append(
                _score("greedy", greedy_placement(system, strategy, network), instance)
            )
        except ReproError:
            scores.append(AlgorithmScore.failure("greedy"))
        try:
            scores.append(
                _score(
                    "random",
                    random_placement(system, strategy, network, rng=rng),
                    instance,
                )
            )
        except ReproError:
            scores.append(AlgorithmScore.failure("random"))

        optimal: float | None = None
        if include_exact:
            states = float(network.size) ** system.universe_size
            if states <= _EXACT_THRESHOLD:
                optimal = solve_qpp_exact(
                    system, strategy, network=network
                ).objective

    return InstanceComparison(
        instance=instance,
        scores=scores,
        optimal_max_delay=optimal,
        telemetry=telemetry.snapshot,
    )
