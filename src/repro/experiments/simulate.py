"""Discrete simulation of quorum accesses.

The analytic evaluators in :mod:`repro.core.placement` compute expected
delays exactly; this module *simulates* the access process — every client
repeatedly samples a quorum from the access strategy and contacts its
placed members — and measures the empirical average max- and total-delay
plus per-node request loads.

Examples use it to show the measured system behavior converging to the
analytic objective the placement algorithms optimize; tests use it as an
independent check of the evaluators (law of large numbers, seeded).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from .._validation import check_integer_in_range
from ..exceptions import ValidationError
from ..core.placement import (
    Placement,
    average_max_delay,
    average_total_delay,
    node_loads,
)
from ..network.graph import Node
from ..quorums.strategy import AccessStrategy

__all__ = ["SimulationResult", "simulate_accesses"]


@dataclass(frozen=True)
class SimulationResult:
    """Empirical quantities from a seeded access simulation.

    Attributes
    ----------
    accesses:
        Total number of simulated quorum accesses.
    measured_max_delay / measured_total_delay:
        Empirical averages over all simulated accesses.
    analytic_max_delay / analytic_total_delay:
        The exact expectations, for comparison.
    measured_node_loads:
        Fraction of accesses that touched each node (the empirical
        counterpart of ``load_f(v)``).
    analytic_node_loads:
        ``load_f(v)`` from the strategy.
    """

    accesses: int
    measured_max_delay: float
    measured_total_delay: float
    analytic_max_delay: float
    analytic_total_delay: float
    measured_node_loads: dict[Node, float]
    analytic_node_loads: dict[Node, float]

    @property
    def max_delay_error(self) -> float:
        """Relative error of the measured vs analytic max-delay."""
        if self.analytic_max_delay == 0:
            return abs(self.measured_max_delay)
        return abs(self.measured_max_delay - self.analytic_max_delay) / self.analytic_max_delay


def simulate_accesses(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    rng: np.random.Generator,
    accesses_per_client: int = 200,
    rates: Mapping[Node, float] | None = None,
) -> SimulationResult:
    """Simulate quorum accesses from every client.

    Each client performs *accesses_per_client* accesses (scaled by its
    relative rate when *rates* is given), sampling quorums independently
    from *strategy*.  Deterministic given *rng*.
    """
    check_integer_in_range(accesses_per_client, "accesses_per_client", low=1)
    network = placement.network
    metric = network.metric()
    nodes = network.nodes

    if rates is None:
        per_client = {v: accesses_per_client for v in nodes}
    else:
        values = np.array([max(float(rates.get(v, 0.0)), 0.0) for v in nodes])
        if values.sum() <= 0:
            raise ValidationError("at least one client rate must be positive")
        scaled = values / values.max() * accesses_per_client
        per_client = {v: int(round(s)) for v, s in zip(nodes, scaled)}

    total_accesses = 0
    sum_max = 0.0
    sum_total = 0.0
    touch_counts = {v: 0 for v in nodes}

    quorum_nodes = [
        placement.quorum_node_indices(index) for index in range(len(placement.system))
    ]
    for client in nodes:
        count = per_client[client]
        if count == 0:
            continue
        row = metric.distances_from(client)
        samples = strategy.sample(rng, size=count)
        for quorum_index in np.asarray(samples).ravel():
            indices = quorum_nodes[int(quorum_index)]
            distances = row[indices]
            sum_max += float(distances.max())
            sum_total_members = 0.0
            # Per-element accounting: total delay and load both count every
            # element of the quorum, even when elements share a node.
            for element in placement.system.quorums[int(quorum_index)]:
                host = placement[element]
                sum_total_members += float(row[network.node_index(host)])
                touch_counts[host] += 1
            sum_total += sum_total_members
            total_accesses += 1

    measured_loads = {
        v: touch_counts[v] / total_accesses if total_accesses else 0.0 for v in nodes
    }
    analytic_loads = node_loads(placement, strategy)
    return SimulationResult(
        accesses=total_accesses,
        measured_max_delay=sum_max / total_accesses,
        measured_total_delay=sum_total / total_accesses,
        analytic_max_delay=average_max_delay(placement, strategy, rates=rates),
        analytic_total_delay=average_total_delay(placement, strategy, rates=rates),
        measured_node_loads=measured_loads,
        analytic_node_loads=analytic_loads,
    )
