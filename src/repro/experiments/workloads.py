"""Shared workload generation for benchmarks and integration tests.

A *placement instance* bundles everything the paper's algorithms consume:
a quorum system, an access strategy, and a capacitated network.  The
suites here are seeded and deterministic, span the quorum constructions
and topology families the benchmarks sweep over, and are sized so that
exhaustive optimal search stays feasible where a benchmark needs ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._validation import check_nonnegative, check_positive
from ..network.generators import (
    cycle_network,
    erdos_renyi_network,
    grid_network,
    random_geometric_network,
    two_cluster_network,
)
from ..network.graph import Network
from ..quorums.base import QuorumSystem
from ..quorums.crumbling_walls import crumbling_wall
from ..quorums.grid import grid
from ..quorums.majority import majority, threshold
from ..quorums.strategy import AccessStrategy
from ..quorums.wheel import wheel

__all__ = ["PlacementInstance", "feasible_uniform_capacity", "standard_suite", "small_suite"]


@dataclass(frozen=True)
class PlacementInstance:
    """A named (system, strategy, network) triple ready for placement."""

    name: str
    system: QuorumSystem
    strategy: AccessStrategy
    network: Network


def feasible_uniform_capacity(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    *,
    slack: float = 1.5,
) -> Network:
    """Uniform capacities guaranteeing a feasible packing exists.

    Every node gets ``max(max element load, slack * total load / n)``:
    each element fits on every node, and the aggregate budget exceeds the
    total load by the slack factor, so first-fit always succeeds.
    """
    check_positive(slack, "slack")
    loads = strategy.load_array()
    per_node = max(float(loads.max()), slack * float(loads.sum()) / network.size)
    return network.with_capacities(per_node)


def _tighten(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    slack: float,
) -> PlacementInstance:
    capped = feasible_uniform_capacity(system, strategy, network, slack=slack)
    return PlacementInstance(
        name=f"{system.name}@{network.name}",
        system=system,
        strategy=strategy,
        network=capped,
    )


def small_suite(seed: int = 0, *, slack: float = 1.5) -> list[PlacementInstance]:
    """Instances small enough for exhaustive optimal search.

    Universe sizes <= 6 and networks <= 7 nodes keep the brute-force
    solvers within a few hundred thousand states.
    """
    rng = np.random.default_rng(seed)
    check_nonnegative(slack, "slack")
    instances: list[PlacementInstance] = []

    geo = random_geometric_network(6, 0.6, rng=rng)
    er = erdos_renyi_network(7, 0.45, rng=rng, length_range=(1.0, 4.0))
    ring = cycle_network(6)

    for system in (majority(5), threshold(5, 4), grid(2), wheel(4)):
        strategy = AccessStrategy.uniform(system)
        for network in (geo, er, ring):
            instances.append(_tighten(system, strategy, network, slack))
    return instances


def standard_suite(seed: int = 0, *, slack: float = 1.5) -> list[PlacementInstance]:
    """The default benchmark suite: medium instances (LP-sized, not
    brute-force-sized) across system and topology families."""
    rng = np.random.default_rng(seed)
    instances: list[PlacementInstance] = []

    geo = random_geometric_network(14, 0.45, rng=rng)
    er = erdos_renyi_network(12, 0.35, rng=rng, length_range=(1.0, 5.0))
    lattice = grid_network(4, 4)
    clusters = two_cluster_network(6, bridge_length=8.0)

    systems = [
        grid(3),
        majority(7),
        wheel(6),
        crumbling_wall([1, 2, 3]),
    ]
    for system in systems:
        strategy = AccessStrategy.uniform(system)
        for network in (geo, er, lattice, clusters):
            instances.append(_tighten(system, strategy, network, slack))

    # A second wave broadening family coverage: structured voting systems
    # on Internet-like and datacenter topologies.
    from ..network.generators import barabasi_albert_network, fat_tree_network
    from ..quorums.fpp import projective_plane
    from ..quorums.paths import paths_system

    ba = barabasi_albert_network(13, 2, rng=rng, length_range=(1.0, 3.0))
    fat_tree = fat_tree_network(3)
    for system in (projective_plane(2), paths_system(2)):
        strategy = AccessStrategy.uniform(system)
        for network in (ba, fat_tree):
            instances.append(_tighten(system, strategy, network, slack))
    return instances
