"""Experiment harness: seeded workload suites and access simulation."""

from .bench import BENCH_SCHEMA_VERSION, run_bench, validate_bench_report
from .failures import FailureSimulationResult, simulate_with_failures
from .simulate import SimulationResult, simulate_accesses
from .suite_runner import AlgorithmScore, InstanceComparison, compare_algorithms
from .workloads import (
    PlacementInstance,
    feasible_uniform_capacity,
    small_suite,
    standard_suite,
)

__all__ = [
    "AlgorithmScore",
    "BENCH_SCHEMA_VERSION",
    "FailureSimulationResult",
    "InstanceComparison",
    "PlacementInstance",
    "SimulationResult",
    "feasible_uniform_capacity",
    "compare_algorithms",
    "run_bench",
    "simulate_accesses",
    "simulate_with_failures",
    "small_suite",
    "standard_suite",
    "validate_bench_report",
]
