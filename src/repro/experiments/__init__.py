"""Experiment harness: seeded workload suites and access simulation."""

from .failures import FailureSimulationResult, simulate_with_failures
from .simulate import SimulationResult, simulate_accesses
from .suite_runner import AlgorithmScore, InstanceComparison, compare_algorithms
from .workloads import (
    PlacementInstance,
    feasible_uniform_capacity,
    small_suite,
    standard_suite,
)

__all__ = [
    "AlgorithmScore",
    "FailureSimulationResult",
    "InstanceComparison",
    "PlacementInstance",
    "SimulationResult",
    "feasible_uniform_capacity",
    "compare_algorithms",
    "simulate_accesses",
    "simulate_with_failures",
    "small_suite",
    "standard_suite",
]
