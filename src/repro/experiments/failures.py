"""Access simulation under node failures (failure injection).

The delay objective the paper optimizes assumes every quorum is
reachable; operationally, nodes crash and clients *fail over* to another
quorum.  This simulator measures what a placement actually delivers under
independent node crashes:

* in each *epoch* a crash set is drawn (every node fails independently);
* each client performs accesses: it samples its quorum from the access
  strategy; if any member's host is down it falls back to the
  lowest-max-delay fully-alive quorum (the natural greedy failover);
* an access with no alive quorum fails.

Reported: success rate, the effective average max-delay of successful
accesses, and how often failover was needed.  Together with
:mod:`repro.analysis.fault_tolerance` this quantifies the paper's
dispersion argument — a collapsed placement has great delay until its
host dies, after which *every* access fails.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_integer_in_range, check_probability
from ..core.placement import Placement
from ..network.graph import Node
from ..quorums.strategy import AccessStrategy

__all__ = ["FailureSimulationResult", "simulate_with_failures"]


@dataclass(frozen=True)
class FailureSimulationResult:
    """Aggregates from a failure-injection run.

    Attributes
    ----------
    epochs / accesses:
        Crash-set draws and total attempted accesses.
    success_rate:
        Fraction of accesses that found some fully-alive quorum.
    effective_delay:
        Average max-delay over *successful* accesses (failed accesses
        contribute no delay; see ``success_rate`` for their frequency).
    failover_rate:
        Fraction of successful accesses that could not use their sampled
        quorum and fell back to an alternative.
    baseline_delay:
        The no-failure analytic average max-delay, for comparison.
    """

    epochs: int
    accesses: int
    success_rate: float
    effective_delay: float
    failover_rate: float
    baseline_delay: float

    @property
    def delay_inflation(self) -> float:
        """``effective_delay / baseline_delay`` (1.0 when failures never
        push clients to worse quorums; NaN if nothing succeeded)."""
        if self.baseline_delay > 0 and self.effective_delay == self.effective_delay:
            return self.effective_delay / self.baseline_delay
        return float("nan")


def simulate_with_failures(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    failure_probability: float,
    rng: np.random.Generator,
    epochs: int = 50,
    accesses_per_client: int = 20,
) -> FailureSimulationResult:
    """Run the failure-injection simulation (see module docstring).

    Deterministic given *rng*.  Cost is roughly
    ``epochs * clients * accesses_per_client`` plus one alive-quorum scan
    per (epoch, client).
    """
    p_fail = check_probability(failure_probability, "failure_probability")
    check_integer_in_range(epochs, "epochs", low=1)
    check_integer_in_range(accesses_per_client, "accesses_per_client", low=1)

    network = placement.network
    metric = network.metric()
    system = placement.system
    nodes: list[Node] = list(network.nodes)
    quorum_hosts = [
        placement.quorum_node_indices(q) for q in range(len(system))
    ]

    from ..core.placement import average_max_delay

    baseline = average_max_delay(placement, strategy)

    attempted = 0
    succeeded = 0
    failovers = 0
    delay_sum = 0.0

    for _ in range(epochs):
        alive = rng.random(len(nodes)) >= p_fail
        alive_quorums = [
            q for q, hosts in enumerate(quorum_hosts) if bool(alive[hosts].all())
        ]
        alive_set = set(alive_quorums)
        for client in nodes:
            row = metric.distances_from(client)
            best_alive: int | None = None
            best_alive_delay = np.inf
            for q in alive_quorums:
                delay = float(row[quorum_hosts[q]].max())
                if delay < best_alive_delay:
                    best_alive_delay = delay
                    best_alive = q
            samples = strategy.sample(rng, size=accesses_per_client)
            for sampled in np.asarray(samples).ravel():
                attempted += 1
                sampled = int(sampled)
                if sampled in alive_set:
                    succeeded += 1
                    delay_sum += float(row[quorum_hosts[sampled]].max())
                elif best_alive is not None:
                    succeeded += 1
                    failovers += 1
                    delay_sum += best_alive_delay

    success_rate = succeeded / attempted if attempted else 0.0
    effective = delay_sum / succeeded if succeeded else float("nan")
    failover_rate = failovers / succeeded if succeeded else 0.0
    return FailureSimulationResult(
        epochs=epochs,
        accesses=attempted,
        success_rate=success_rate,
        effective_delay=effective,
        failover_rate=failover_rate,
        baseline_delay=baseline,
    )
