"""The ``repro bench`` micro-suite (BENCH_3.json).

A deterministic benchmark over the vectorized evaluator kernels, the
batched metric builder, and the shared-LP solver path: every case pins
its seed, records wall-clock timings *and* a checksum of the computed
values, and the CLI writes the whole report as ``BENCH_3.json``.  Result
values are reproducible run-to-run (same seed, same libraries); timings
naturally are not, so consumers must treat ``*_seconds`` / ``speedup``
fields as informational only — the regression tests assert the values
and checksums, never the timings.

Report schema (version 3)
-------------------------

Version 2 added a top-level ``"telemetry"`` block — the
:mod:`repro.obs` counter deltas and wall time of the whole run.  Like
the timing fields it is run-dependent (the determinism tests strip it).
Version 3 adds the required ``serve_qps`` case: query throughput and
tail latency of the :mod:`repro.serve` snapshot cache.

::

    {
      "schema_version": 3,
      "quick": bool,          # --quick mode (fewer repeats)
      "seed": int,            # RNG seed for the generated networks
      "telemetry": {
        "wall_seconds": float,
        "metrics": {str: float},    # counter deltas, e.g. "lp.solve.count"
      },
      "cases": {
        "average_max_delay": {
          "network": str, "system": str, "clients": int,
          "value": float, "checksum": str,
          "vectorized_seconds": float, "reference_seconds": float,
          "speedup": float,
        },
        "average_total_delay": { same fields },
        "node_loads": {
          "network": str, "system": str,
          "capacity_violation_factor": float, "checksum": str,
          "vectorized_seconds": float, "reference_seconds": float,
          "speedup": float,
        },
        "metric_batched": {
          "network": str, "nodes": int, "checksum": str,
          "batched_seconds": float, "scalar_seconds": float,
          "speedup": float, "cache_builds": int, "cache_hits": int,
        },
        "ssqpp_solve": {
          "network": str, "system": str, "source": str,
          "lp_value": float, "delay": float, "checksum": str,
          "solve_seconds": float,
        },
        "serve_qps": {
          "network": str, "system": str, "queries": int,
          "value": float,             # mean served delay (deterministic)
          "checksum": str,
          "qps": float,               # batched queries answered per second
          "p99_seconds": float,       # per-request p99 (single-request ticks)
        },
        "qpp_sweep": {
          "network": str, "system": str, "candidates": int,
          "average_delay": float, "lower_bound": float, "checksum": str,
          "sweep_seconds": float,
        },
        # optional, written by ``repro bench --large`` only:
        "qpp_lazy_large": {
          "network": str, "nodes": int, "candidates": int,
          "average_delay": float, "metric_builds": int, "row_misses": int,
          "row_peak": int, "pruned": int, "checksum": str,
          "solve_seconds": float,
        },
      },
    }

Checksums are sha256 over the JSON encoding of the case's result values
rounded to 9 decimals (timings excluded), so two runs agree bit-for-bit
whenever the numerics agree to ~1e-9.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
from dataclasses import dataclass, field

import numpy as np

from .._validation import check_integer_in_range, require
from ..core.placement import (
    average_max_delay,
    average_max_delay_reference,
    average_total_delay,
    average_total_delay_reference,
    capacity_violation_factor,
    capacity_violation_factor_reference,
    make_placement,
    node_loads,
    node_loads_reference,
)
from ..core.qpp import solve_qpp
from ..core.ssqpp import solve_ssqpp
from ..exceptions import ValidationError
from ..network.generators import (
    grid_network,
    random_geometric_network,
    uniform_capacities,
)
from ..network.graph import Network
from ..network.metric import dijkstra, dijkstra_batched
from ..obs.metrics import telemetry_scope
from ..obs.trace import span
from ..quorums.grid import grid
from ..quorums.majority import majority
from ..quorums.strategy import AccessStrategy
from ..serve import PlacementService, serve_request

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchComparison",
    "BenchDelta",
    "DEFAULT_NOISE_BAND",
    "compare_bench_reports",
    "render_bench_comparison_markdown",
    "render_bench_comparison_text",
    "run_bench",
    "validate_bench_report",
]

BENCH_SCHEMA_VERSION = 3

#: Required keys per case, beyond the timing fields.
_CASE_VALUE_KEYS = {
    "average_max_delay": ("network", "system", "clients", "value", "checksum"),
    "average_total_delay": ("network", "system", "clients", "value", "checksum"),
    "node_loads": ("network", "system", "capacity_violation_factor", "checksum"),
    "metric_batched": ("network", "nodes", "checksum", "cache_builds", "cache_hits"),
    "ssqpp_solve": ("network", "system", "source", "lp_value", "delay", "checksum"),
    "qpp_sweep": (
        "network",
        "system",
        "candidates",
        "average_delay",
        "lower_bound",
        "checksum",
    ),
    "serve_qps": ("network", "system", "queries", "value", "checksum"),
}

_CASE_TIMING_KEYS = {
    "average_max_delay": ("vectorized_seconds", "reference_seconds", "speedup"),
    "average_total_delay": ("vectorized_seconds", "reference_seconds", "speedup"),
    "node_loads": ("vectorized_seconds", "reference_seconds", "speedup"),
    "metric_batched": ("batched_seconds", "scalar_seconds", "speedup"),
    "ssqpp_solve": ("solve_seconds",),
    "qpp_sweep": ("sweep_seconds",),
    "serve_qps": ("qps", "p99_seconds"),
}

#: Cases that only appear in some reports (e.g. ``repro bench --large``).
#: Validated when present; a report without them is still complete, and
#: the trajectory comparison treats one-sided presence as a note — a new
#: series is not a regression.
_OPTIONAL_CASE_VALUE_KEYS = {
    "qpp_lazy_large": (
        "network",
        "nodes",
        "candidates",
        "average_delay",
        "metric_builds",
        "row_misses",
        "row_peak",
        "pruned",
        "checksum",
    ),
}

_OPTIONAL_CASE_TIMING_KEYS = {
    "qpp_lazy_large": ("solve_seconds",),
}


def _checksum(values) -> str:
    """sha256 of the JSON encoding of *values*, floats rounded to 9 dp."""

    def _round(obj):
        if isinstance(obj, float):
            return round(obj, 9)
        if isinstance(obj, dict):
            return {str(k): _round(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
        if isinstance(obj, (list, tuple)):
            return [_round(v) for v in obj]
        return obj

    payload = json.dumps(_round(values), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _best_of(repeats: int, fn) -> tuple[float, object]:
    """Run *fn* ``repeats`` times; return (best wall-clock, last result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _evaluator_network(seed: int) -> Network:
    rng = np.random.default_rng(seed)
    network = random_geometric_network(100, 0.25, rng=rng)
    return uniform_capacities(network, 2.0)


def run_bench(
    *,
    quick: bool = True,
    seed: int = 0,
    large: bool = False,
    large_nodes: int = 10_000,
) -> dict:
    """Run the deterministic micro-suite and return the report dict.

    ``quick`` trims the repeat count (CI mode); result values and
    checksums are identical either way because every case is seeded.

    ``large`` additionally runs the optional ``qpp_lazy_large`` case: a
    full QPP solve on a ``large_nodes``-node geometric graph through the
    lazy-metric path, with a hard assertion — enforced via the
    :mod:`repro.obs` metric-cache counters — that no dense ``n x n``
    matrix was ever built.
    """
    check_integer_in_range(seed, "seed", low=0)
    check_integer_in_range(large_nodes, "large_nodes", low=1)
    repeats = 1 if quick else 3
    cases: dict[str, dict] = {}

    with telemetry_scope() as telemetry, span("bench.run", quick=quick, seed=seed):
        _run_cases(cases, repeats=repeats, seed=seed)
        if large:
            _run_large_case(cases, seed=seed, nodes=large_nodes)

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "quick": bool(quick),
        "seed": int(seed),
        "telemetry": telemetry.snapshot.as_dict(),
        "cases": cases,
    }


def _run_cases(cases: dict[str, dict], *, repeats: int, seed: int) -> None:
    # -- evaluator kernels: 100-node geometric network, Grid(10) system ----------
    network = _evaluator_network(seed)
    system = grid(10)
    strategy = AccessStrategy.uniform(system)
    placement = make_placement(system, network, list(network.nodes))

    vec_seconds, vec_value = _best_of(
        repeats, lambda: average_max_delay(placement, strategy)
    )
    ref_seconds, ref_value = _best_of(
        repeats, lambda: average_max_delay_reference(placement, strategy)
    )
    require(
        abs(vec_value - ref_value) <= 1e-9 * max(1.0, abs(ref_value)),
        "vectorized and reference average_max_delay disagree",
    )
    cases["average_max_delay"] = {
        "network": network.name,
        "system": "grid(10)",
        "clients": network.size,
        "value": float(vec_value),
        "checksum": _checksum(float(vec_value)),
        "vectorized_seconds": vec_seconds,
        "reference_seconds": ref_seconds,
        "speedup": ref_seconds / vec_seconds if vec_seconds > 0 else float("inf"),
    }

    vec_seconds, vec_value = _best_of(
        repeats, lambda: average_total_delay(placement, strategy)
    )
    ref_seconds, ref_value = _best_of(
        repeats, lambda: average_total_delay_reference(placement, strategy)
    )
    require(
        abs(vec_value - ref_value) <= 1e-9 * max(1.0, abs(ref_value)),
        "vectorized and reference average_total_delay disagree",
    )
    cases["average_total_delay"] = {
        "network": network.name,
        "system": "grid(10)",
        "clients": network.size,
        "value": float(vec_value),
        "checksum": _checksum(float(vec_value)),
        "vectorized_seconds": vec_seconds,
        "reference_seconds": ref_seconds,
        "speedup": ref_seconds / vec_seconds if vec_seconds > 0 else float("inf"),
    }

    vec_seconds, vec_loads = _best_of(
        repeats, lambda: node_loads(placement, strategy)
    )
    ref_seconds, ref_loads = _best_of(
        repeats, lambda: node_loads_reference(placement, strategy)
    )
    require(
        all(abs(vec_loads[v] - ref_loads.get(v, 0.0)) <= 1e-9 for v in vec_loads),
        "vectorized and reference node_loads disagree",
    )
    factor = capacity_violation_factor(placement, strategy)
    require(
        abs(factor - capacity_violation_factor_reference(placement, strategy))
        <= 1e-9 * max(1.0, abs(factor)),
        "vectorized and reference capacity_violation_factor disagree",
    )
    cases["node_loads"] = {
        "network": network.name,
        "system": "grid(10)",
        "capacity_violation_factor": float(factor),
        "checksum": _checksum(
            {str(node): load for node, load in vec_loads.items()}
        ),
        "vectorized_seconds": vec_seconds,
        "reference_seconds": ref_seconds,
        "speedup": ref_seconds / vec_seconds if vec_seconds > 0 else float("inf"),
    }

    # -- metric: batched all-pairs vs per-source scalar Dijkstra -----------------
    adjacency = {
        u: {v: network.edge_length(u, v) for v in network.neighbors(u)}
        for u in network.nodes
    }
    batched_seconds, matrix = _best_of(
        repeats, lambda: dijkstra_batched(adjacency)
    )
    scalar_seconds, _ = _best_of(
        1, lambda: [dijkstra(adjacency, u) for u in network.nodes]
    )
    cache_info = network.metric_cache_info()
    cases["metric_batched"] = {
        "network": network.name,
        "nodes": network.size,
        "checksum": _checksum(float(np.sum(matrix))),
        "batched_seconds": batched_seconds,
        "scalar_seconds": scalar_seconds,
        "speedup": scalar_seconds / batched_seconds
        if batched_seconds > 0
        else float("inf"),
        "cache_builds": cache_info.builds,
        "cache_hits": cache_info.hits,
    }

    # -- one SSQPP solve (shared-LP machinery under the hood) --------------------
    ssqpp_network = grid_network(3, 3).with_capacities(2.0)
    ssqpp_system = majority(5)
    ssqpp_strategy = AccessStrategy.uniform(ssqpp_system)
    source = ssqpp_network.nodes[0]
    solve_seconds, ssqpp_result = _best_of(
        repeats,
        lambda: solve_ssqpp(
            ssqpp_system, ssqpp_strategy, network=ssqpp_network, source=source
        ),
    )
    cases["ssqpp_solve"] = {
        "network": ssqpp_network.name,
        "system": "majority(5)",
        "source": str(source),
        "lp_value": float(ssqpp_result.lp_value),
        "delay": float(ssqpp_result.delay),
        "checksum": _checksum(
            [float(ssqpp_result.lp_value), float(ssqpp_result.delay)]
        ),
        "solve_seconds": solve_seconds,
    }

    # -- QPP sweep: every candidate reuses one shared LP base --------------------
    sweep_seconds, qpp_result = _best_of(
        1, lambda: solve_qpp(ssqpp_system, ssqpp_strategy, network=ssqpp_network)
    )
    cases["qpp_sweep"] = {
        "network": ssqpp_network.name,
        "system": "majority(5)",
        "candidates": len(qpp_result.per_source),
        "average_delay": float(qpp_result.objective),
        "lower_bound": float(qpp_result.optimum_lower_bound),
        "checksum": _checksum(
            [float(qpp_result.objective), float(qpp_result.optimum_lower_bound)]
        ),
        "sweep_seconds": sweep_seconds,
    }

    # -- serving: snapshot-cache query throughput (repro.serve) ------------------
    # Queries are answered from the versioned snapshot's precomputed
    # per-client vector, so the served values are deterministic (the
    # checksum) while qps / p99 measure the cache's read path.  Phase 1
    # drives full batches for throughput; phase 2 ticks one request at a
    # time so the p99 is a true per-request latency.
    service = PlacementService(
        majority(5),
        AccessStrategy.uniform(majority(5)),
        network,
        drift_threshold=float("inf"),
        max_batch=64,
        queue_limit=8192,
        scale="large",
        landmarks=8,
    )
    serve_rng = np.random.default_rng(seed)
    clients = [
        network.nodes[int(serve_rng.integers(0, network.size))]
        for _ in range(1024)
    ]
    documents = [
        serve_request("query", id=index, client=client)
        for index, client in enumerate(clients)
    ]
    delays: list[float] = []
    started = time.perf_counter()
    for start in range(0, len(documents), service.max_batch):
        for document in documents[start : start + service.max_batch]:
            service.submit(document)
        delays.extend(response["delay"] for response in service.tick())
    elapsed = time.perf_counter() - started
    latencies = []
    for index, client in enumerate(clients[:256]):
        document = serve_request("query", id=f"lat-{index}", client=client)
        tick_start = time.perf_counter()
        service.submit(document)
        service.tick()
        latencies.append(time.perf_counter() - tick_start)
    latencies.sort()
    p99 = latencies[max(0, math.ceil(0.99 * len(latencies)) - 1)]
    mean_delay = float(np.mean(delays))
    cases["serve_qps"] = {
        "network": network.name,
        "system": "majority(5)",
        "queries": len(documents) + len(latencies),
        "value": mean_delay,
        "checksum": _checksum(mean_delay),
        "qps": len(documents) / elapsed if elapsed > 0 else float("inf"),
        "p99_seconds": p99,
    }


def _run_large_case(cases: dict[str, dict], *, seed: int, nodes: int) -> None:
    """The optional ``qpp_lazy_large`` case: QPP at 10^4 nodes, lazily.

    Solves QPP on a *nodes*-node random geometric graph with
    ``scale="large"`` and asserts — through the metric-cache telemetry —
    that the dense all-pairs matrix was never materialized: zero
    ``Metric`` builds, and a row-cache peak far below ``n``.
    """
    from ..obs.metrics import gauge

    rng = np.random.default_rng(seed)
    # Radius ~2x the connectivity threshold sqrt(ln n / (pi n)) keeps the
    # instance connected (modulo the generator's union-find patch) while
    # the graph stays sparse.
    radius = 2.0 * float(np.sqrt(np.log(max(nodes, 2)) / (np.pi * nodes)))
    network = uniform_capacities(
        random_geometric_network(nodes, radius, rng=rng), 2.0
    )
    system = majority(5)
    strategy = AccessStrategy.uniform(system)

    solve_seconds, result = _best_of(
        1,
        lambda: solve_qpp(system, strategy, network=network, scale="large"),
    )
    cache = network.metric_cache_info()
    row_peak = float(gauge("metric.cache.row_peak").value)
    require(
        cache.builds == 0,
        "qpp_lazy_large materialized a dense metric "
        f"({cache.builds} build(s)) — the lazy path must never do that",
    )
    require(
        row_peak < network.size,
        f"qpp_lazy_large cached {row_peak:g} rows, not << n={network.size}",
    )
    pruned = result.telemetry.metrics.get("qpp.prune.skipped", 0.0)
    cases["qpp_lazy_large"] = {
        "network": network.name,
        "nodes": network.size,
        "candidates": len(result.per_source),
        "average_delay": float(result.objective),
        "metric_builds": int(cache.builds),
        "row_misses": int(cache.row_misses),
        "row_peak": int(row_peak),
        "pruned": int(pruned),
        "checksum": _checksum(float(result.objective)),
        "solve_seconds": solve_seconds,
    }


def validate_bench_report(report: dict) -> None:
    """Raise :class:`ValidationError` unless *report* matches schema v3."""
    require(isinstance(report, dict), "report must be a dict")
    for key in ("schema_version", "quick", "seed", "telemetry", "cases"):
        if key not in report:
            raise ValidationError(f"bench report is missing key {key!r}")
    if report["schema_version"] != BENCH_SCHEMA_VERSION:
        raise ValidationError(
            f"unsupported bench schema version {report['schema_version']!r}"
        )
    telemetry = report["telemetry"]
    require(isinstance(telemetry, dict), "report['telemetry'] must be a dict")
    for key in ("wall_seconds", "metrics"):
        if key not in telemetry:
            raise ValidationError(f"telemetry block is missing key {key!r}")
    require(
        isinstance(telemetry["metrics"], dict),
        "telemetry['metrics'] must be a dict",
    )
    cases = report["cases"]
    require(isinstance(cases, dict), "report['cases'] must be a dict")
    for name in _CASE_VALUE_KEYS:
        if name not in cases:
            raise ValidationError(f"bench report is missing case {name!r}")
    for name, value_keys in _CASE_VALUE_KEYS.items():
        _validate_case(name, cases[name], value_keys, _CASE_TIMING_KEYS[name])
    # Optional cases (e.g. ``--large``) are validated only when present.
    for name, value_keys in _OPTIONAL_CASE_VALUE_KEYS.items():
        if name in cases:
            _validate_case(
                name, cases[name], value_keys, _OPTIONAL_CASE_TIMING_KEYS[name]
            )


def _validate_case(
    name: str, case: object, value_keys: tuple, timing_keys: tuple
) -> None:
    require(isinstance(case, dict), f"case {name!r} must be a dict")
    assert isinstance(case, dict)
    for key in value_keys + timing_keys:
        if key not in case:
            raise ValidationError(f"case {name!r} is missing key {key!r}")
    checksum = case["checksum"]
    require(
        isinstance(checksum, str) and len(checksum) == 64,
        f"case {name!r} has a malformed checksum",
    )


# ---------------------------------------------------------------------------
# Trajectory comparison (``repro bench --compare``)
# ---------------------------------------------------------------------------

#: Default tolerated timing noise: a metric must move by more than 25%
#: before the comparison calls it a regression or an improvement.
DEFAULT_NOISE_BAND = 0.25

#: Timing metrics where *lower* is better; everything else in
#: :data:`_CASE_TIMING_KEYS` (the ``speedup`` fields) is higher-is-better.
_LOWER_IS_BETTER_SUFFIX = "_seconds"


@dataclass(frozen=True)
class BenchDelta:
    """One timing metric compared across two bench reports."""

    case: str
    metric: str
    old: float
    new: float
    ratio: float  # new / old
    verdict: str  # "ok" | "improved" | "regression"


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of :func:`compare_bench_reports`."""

    noise_band: float
    deltas: tuple[BenchDelta, ...]
    notes: tuple[str, ...] = field(default_factory=tuple)

    @property
    def regressions(self) -> tuple[BenchDelta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "regression")

    @property
    def improvements(self) -> tuple[BenchDelta, ...]:
        return tuple(d for d in self.deltas if d.verdict == "improved")


def _metric_verdict(metric: str, ratio: float, noise_band: float) -> str:
    """Classify ``ratio = new/old`` for one metric under the noise band."""
    worse = 1.0 + noise_band
    better = 1.0 / worse
    if metric.endswith(_LOWER_IS_BETTER_SUFFIX):
        if ratio > worse:
            return "regression"
        if ratio < better:
            return "improved"
        return "ok"
    # speedup-style metrics: higher is better, so the band mirrors.
    if ratio < better:
        return "regression"
    if ratio > worse:
        return "improved"
    return "ok"


def compare_bench_reports(
    old: dict, new: dict, *, noise_band: float = DEFAULT_NOISE_BAND
) -> BenchComparison:
    """Compare two bench reports' timing trajectories.

    Both reports are validated against schema v2 first.  Every timing
    metric in :data:`_CASE_TIMING_KEYS` is compared as ``new / old``:
    ``*_seconds`` fields are lower-is-better, ``speedup`` fields are
    higher-is-better, and a move within ``1 + noise_band`` either way is
    "ok".  Checksum drift and quick/seed mismatches become *notes*, not
    regressions — timings are machine-dependent, so a CI comparison
    against a committed baseline must tolerate a different host while
    still catching order-of-magnitude trajectory breaks.
    """
    require(
        isinstance(noise_band, (int, float)) and noise_band >= 0.0,
        "noise_band must be a non-negative number",
    )
    validate_bench_report(old)
    validate_bench_report(new)

    notes: list[str] = []
    if bool(old["quick"]) != bool(new["quick"]):
        notes.append(
            f"quick-mode mismatch: old quick={old['quick']}, "
            f"new quick={new['quick']} (repeat counts differ)"
        )
    if int(old["seed"]) != int(new["seed"]):
        notes.append(
            f"seed mismatch: old seed={old['seed']}, new seed={new['seed']} "
            "(cases ran on different instances)"
        )

    deltas: list[BenchDelta] = []
    all_timing_keys = {**_CASE_TIMING_KEYS, **_OPTIONAL_CASE_TIMING_KEYS}
    for case_name, timing_keys in all_timing_keys.items():
        in_old = case_name in old["cases"]
        in_new = case_name in new["cases"]
        if not in_old and not in_new:
            continue
        if in_old != in_new:
            # A series present on only one side is new (or retired), not
            # a regression: the ratchet keeps working across the commit
            # that introduces an optional case.
            side = "new" if in_new else "old"
            notes.append(
                f"case {case_name!r}: only in the {side} report "
                "(new series, not compared)"
            )
            continue
        old_case = old["cases"][case_name]
        new_case = new["cases"][case_name]
        if old_case["checksum"] != new_case["checksum"]:
            notes.append(
                f"case {case_name!r}: checksum drift (result values "
                "changed between reports)"
            )
        for metric in timing_keys:
            old_value = float(old_case[metric])
            new_value = float(new_case[metric])
            if not (old_value > 0.0) or not (new_value > 0.0):
                notes.append(
                    f"case {case_name!r}: skipped {metric} "
                    f"(non-positive value: old={old_value}, new={new_value})"
                )
                continue
            ratio = new_value / old_value
            deltas.append(
                BenchDelta(
                    case=case_name,
                    metric=metric,
                    old=old_value,
                    new=new_value,
                    ratio=ratio,
                    verdict=_metric_verdict(metric, ratio, float(noise_band)),
                )
            )
    return BenchComparison(
        noise_band=float(noise_band), deltas=tuple(deltas), notes=tuple(notes)
    )


def _format_value(metric: str, value: float) -> str:
    if metric.endswith(_LOWER_IS_BETTER_SUFFIX):
        return f"{value:.6f}s"
    return f"{value:.2f}x"


def render_bench_comparison_text(comparison: BenchComparison) -> str:
    """Human-readable comparison summary for the terminal."""
    lines = [f"bench comparison (noise band ±{comparison.noise_band:.0%})"]
    for delta in comparison.deltas:
        marker = {"regression": "!!", "improved": "++", "ok": "  "}[delta.verdict]
        lines.append(
            f"{marker} {delta.case}.{delta.metric}: "
            f"{_format_value(delta.metric, delta.old)} -> "
            f"{_format_value(delta.metric, delta.new)} "
            f"(x{delta.ratio:.2f}, {delta.verdict})"
        )
    for note in comparison.notes:
        lines.append(f"note: {note}")
    regressions = comparison.regressions
    if regressions:
        lines.append(
            f"{len(regressions)} regression(s) beyond the noise band"
        )
    else:
        lines.append("no regressions beyond the noise band")
    return "\n".join(lines)


def render_bench_comparison_markdown(comparison: BenchComparison) -> str:
    """Speedup-history table for docs and CI summaries."""
    lines = [
        f"Noise band: ±{comparison.noise_band:.0%}",
        "",
        "| case | metric | old | new | ratio | verdict |",
        "| --- | --- | --- | --- | --- | --- |",
    ]
    for delta in comparison.deltas:
        lines.append(
            f"| {delta.case} | {delta.metric} "
            f"| {_format_value(delta.metric, delta.old)} "
            f"| {_format_value(delta.metric, delta.new)} "
            f"| x{delta.ratio:.2f} | {delta.verdict} |"
        )
    for note in comparison.notes:
        lines.append(f"- note: {note}")
    return "\n".join(lines)
