"""Observability: structured tracing, metrics, and telemetry reports.

The subsystem every solver reports through (see
``docs/observability.md``):

* :mod:`repro.obs.trace` — nested spans with monotonic timings,
  no-ops until a collector is installed (usually via :func:`collect`);
* :mod:`repro.obs.metrics` — always-on counters/gauges/histograms in a
  process-wide registry, plus :func:`telemetry_scope` for per-run
  deltas;
* :mod:`repro.obs.report` — the schema-versioned telemetry document
  behind ``repro profile`` and the CI profile-smoke step.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TelemetryHandle,
    TelemetrySnapshot,
    counter,
    default_registry,
    gauge,
    histogram,
    telemetry_scope,
)
from .report import (
    TELEMETRY_SCHEMA_VERSION,
    derived_metrics,
    metrics_table_rows,
    telemetry_document,
    validate_telemetry_document,
)
from .trace import (
    JsonlSpanSink,
    Span,
    SpanHandle,
    TraceCollector,
    active_collector,
    collect,
    install_collector,
    read_spans_jsonl,
    render_span_tree,
    span,
    span_to_dicts,
    uninstall_collector,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlSpanSink",
    "MetricsRegistry",
    "Span",
    "SpanHandle",
    "TELEMETRY_SCHEMA_VERSION",
    "TelemetryHandle",
    "TelemetrySnapshot",
    "TraceCollector",
    "active_collector",
    "collect",
    "counter",
    "default_registry",
    "derived_metrics",
    "gauge",
    "histogram",
    "install_collector",
    "metrics_table_rows",
    "read_spans_jsonl",
    "render_span_tree",
    "span",
    "span_to_dicts",
    "telemetry_document",
    "telemetry_scope",
    "uninstall_collector",
    "validate_telemetry_document",
]
