"""Telemetry documents: the JSON surface of a traced run.

``repro profile`` and the CI ``profile-smoke`` step exchange one
schema-versioned document combining the span tree, the metric deltas,
and a few derived headline numbers (LP solve count, metric-cache hit
rate).  :func:`validate_telemetry_document` is the schema check; it is
deliberately strict about structure and loose about values, mirroring
``repro.experiments.bench.validate_bench_report``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence
from typing import Any

from .._validation import require
from ..exceptions import ValidationError
from .metrics import MetricsRegistry
from .trace import TraceCollector, span_to_dicts

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "telemetry_document",
    "validate_telemetry_document",
    "derived_metrics",
    "fit_scaling_exponent",
    "metrics_table_rows",
]

TELEMETRY_SCHEMA_VERSION = 1

#: Counter names the derived headline metrics read.
LP_SOLVE_COUNTER = "lp.solve.count"
METRIC_BUILD_COUNTER = "metric.cache.builds"
METRIC_HIT_COUNTER = "metric.cache.hits"


def derived_metrics(counters: Mapping[str, float]) -> dict[str, float]:
    """Headline numbers computed from raw counters.

    ``metric_cache_hit_rate`` is hits / (hits + builds), 0 when the
    cache was never touched.
    """
    builds = float(counters.get(METRIC_BUILD_COUNTER, 0.0))
    hits = float(counters.get(METRIC_HIT_COUNTER, 0.0))
    touched = builds + hits
    return {
        "lp_solve_count": float(counters.get(LP_SOLVE_COUNTER, 0.0)),
        "metric_cache_builds": builds,
        "metric_cache_hits": hits,
        "metric_cache_hit_rate": hits / touched if touched > 0 else 0.0,
    }


def telemetry_document(
    *,
    command: Sequence[str],
    exit_code: int,
    collector: TraceCollector,
    counters: Mapping[str, float],
    registry: MetricsRegistry | None = None,
) -> dict[str, Any]:
    """Assemble the schema v1 telemetry document for one traced run.

    *counters* are the counter **deltas** of the run (see
    :func:`repro.obs.metrics.telemetry_scope`); *registry*, when given,
    contributes the gauge/histogram snapshot.
    """
    spans = [row for root in collector.roots for row in span_to_dicts(root)]
    snapshot = registry.snapshot() if registry is not None else {}
    return {
        "telemetry_schema_version": TELEMETRY_SCHEMA_VERSION,
        "command": list(command),
        "exit_code": int(exit_code),
        "span_count": collector.span_count,
        "max_depth": collector.max_depth,
        "spans": spans,
        "metrics": {
            "counters": dict(sorted(counters.items())),
            "gauges": snapshot.get("gauges", {}),
            "histograms": snapshot.get("histograms", {}),
        },
        "derived": derived_metrics(counters),
    }


def validate_telemetry_document(document: Mapping[str, Any]) -> None:
    """Raise :class:`~repro.exceptions.ValidationError` unless *document*
    matches the telemetry schema (version 1)."""
    require(isinstance(document, Mapping), "telemetry document must be a mapping")
    for key in (
        "telemetry_schema_version",
        "command",
        "exit_code",
        "span_count",
        "max_depth",
        "spans",
        "metrics",
        "derived",
    ):
        if key not in document:
            raise ValidationError(f"telemetry document is missing key {key!r}")
    if document["telemetry_schema_version"] != TELEMETRY_SCHEMA_VERSION:
        raise ValidationError(
            "unsupported telemetry schema version "
            f"{document['telemetry_schema_version']!r}"
        )
    command = document["command"]
    require(
        isinstance(command, list) and all(isinstance(c, str) for c in command),
        "telemetry 'command' must be a list of strings",
    )
    spans = document["spans"]
    require(isinstance(spans, list), "telemetry 'spans' must be a list")
    for index, row in enumerate(spans):
        if not isinstance(row, Mapping):
            raise ValidationError(f"span row {index} must be a mapping")
        for key in ("id", "parent", "name", "started", "duration", "error"):
            if key not in row:
                raise ValidationError(f"span row {index} is missing key {key!r}")
    metrics = document["metrics"]
    require(isinstance(metrics, Mapping), "telemetry 'metrics' must be a mapping")
    for key in ("counters", "gauges", "histograms"):
        if key not in metrics:
            raise ValidationError(f"telemetry metrics are missing key {key!r}")
    derived = document["derived"]
    require(isinstance(derived, Mapping), "telemetry 'derived' must be a mapping")
    for key in (
        "lp_solve_count",
        "metric_cache_builds",
        "metric_cache_hits",
        "metric_cache_hit_rate",
    ):
        if key not in derived:
            raise ValidationError(f"telemetry derived block is missing key {key!r}")


def fit_scaling_exponent(
    sizes: Sequence[float], seconds: Sequence[float]
) -> float:
    """The empirical scaling exponent of timings against instance sizes.

    Fits ``seconds ~ size**e`` by ordinary least squares in log-log
    space and returns the slope ``e``.  This is the estimator behind
    rule R504 (``repro lint --cost --profile-check``): timings captured
    at two or three instance sizes are enough to contradict a
    polynomial-degree declaration, which is all the rule asks — it
    compares exponents one-sidedly, never absolute constants.

    Requires at least two observations at distinct positive sizes with
    positive timings; raises :class:`~repro.exceptions.ValidationError`
    otherwise.
    """
    require(
        len(sizes) == len(seconds),
        "sizes and seconds must have the same length",
    )
    require(len(sizes) >= 2, "need at least two observations to fit a slope")
    require(
        all(size > 0 for size in sizes) and all(sec > 0 for sec in seconds),
        "sizes and seconds must be positive for a log-log fit",
    )
    require(
        len(set(sizes)) >= 2,
        "need observations at two or more distinct sizes",
    )
    xs = [math.log(float(size)) for size in sizes]
    ys = [math.log(float(sec)) for sec in seconds]
    mean_x = sum(xs) / len(xs)
    mean_y = sum(ys) / len(ys)
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx


def metrics_table_rows(
    counters: Mapping[str, float], *, wall_seconds: float | None = None
) -> list[tuple[str, str]]:
    """(metric, value) rows for the human-readable metrics table.

    Leads with the derived headline numbers (LP solve count, metric
    cache hit rate), then every non-zero raw counter.
    """
    derived = derived_metrics(counters)
    rows: list[tuple[str, str]] = [
        ("LP solve count", f"{derived['lp_solve_count']:.0f}"),
        (
            "metric cache hit rate",
            f"{derived['metric_cache_hit_rate']:.3f} "
            f"({derived['metric_cache_hits']:.0f} hits / "
            f"{derived['metric_cache_builds']:.0f} builds)",
        ),
    ]
    if wall_seconds is not None:
        rows.append(("wall seconds", f"{wall_seconds:.4f}"))
    for name, value in sorted(counters.items()):
        if value != 0:
            rows.append((name, f"{value:g}"))
    return rows
