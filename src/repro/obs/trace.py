"""Zero-dependency structured tracing: nested spans over monotonic time.

A *span* is one named, timed region of work with arbitrary key/value
attributes.  Spans nest: entering a span while another is open makes it
a child, so a solver run produces a tree (``qpp.sweep`` containing one
``ssqpp.solve`` per candidate, each containing an ``lp.solve``).

The instrumentation contract is that tracing costs (almost) nothing
when nobody is looking.  :func:`span` checks a single module-level
reference; with no collector installed it returns a cached no-op
handle, so instrumented hot paths pay one global load and one attribute
call per span (asserted to be under 1% of solver runtime by the test
suite).  Installing a :class:`TraceCollector` — usually through the
:func:`collect` context manager — turns the same call sites into live
span recording.

Sinks receive every finished *root* span (with its whole subtree):

* the collector itself keeps roots in memory (``collector.roots``);
* :class:`JsonlSpanSink` appends one JSON object per span, flattened
  with ``id``/``parent`` references so trees survive the round trip
  (:func:`read_spans_jsonl` rebuilds them);
* :func:`render_span_tree` formats a tree for humans.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import IO, Any

from ..exceptions import ValidationError

__all__ = [
    "Span",
    "SpanHandle",
    "TraceCollector",
    "JsonlSpanSink",
    "span",
    "collect",
    "install_collector",
    "uninstall_collector",
    "active_collector",
    "read_spans_jsonl",
    "span_to_dicts",
    "render_span_tree",
]


@dataclass
class Span:
    """One recorded region of work.

    ``started`` is a :func:`time.perf_counter` timestamp (monotonic,
    process-relative — meaningful only as a difference); ``duration`` is
    seconds, ``None`` while the span is still open.  ``error`` is set
    when the span body raised.
    """

    name: str
    attributes: dict[str, Any] = field(default_factory=dict)
    started: float = 0.0
    duration: float | None = None
    error: bool = False
    children: list["Span"] = field(default_factory=list)

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    @property
    def span_count(self) -> int:
        """Number of spans in this subtree (including this one)."""
        return sum(1 for _ in self.iter_spans())

    @property
    def max_depth(self) -> int:
        """Nesting depth of this subtree (a leaf has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.max_depth for child in self.children)


class SpanHandle:
    """What :func:`span` returns: a context manager with ``set()``.

    The base class is the no-op implementation used when no collector is
    installed; :class:`TraceCollector` hands out live subclass instances.
    """

    __slots__ = ()

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        return False

    def set(self, **attributes: Any) -> None:
        """Attach attributes to the span (no-op without a collector)."""


_NULL_SPAN = SpanHandle()


class _LiveSpan(SpanHandle):
    """A handle bound to a collector; records on enter/exit."""

    __slots__ = ("_collector", "record")

    def __init__(self, collector: "TraceCollector", record: Span) -> None:
        self._collector = collector
        self.record = record

    def __enter__(self) -> "_LiveSpan":
        self._collector._push(self.record)
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.record.error = exc_type is not None
        self._collector._pop(self.record)
        return False

    def set(self, **attributes: Any) -> None:
        self.record.attributes.update(attributes)


class TraceCollector:
    """Collects finished span trees in memory and fans out to sinks.

    A *sink* is any object with an ``emit(root: Span) -> None`` method;
    it is called once per finished root span (i.e. once per outermost
    ``with span(...)`` block).
    """

    def __init__(self, sinks: Sequence[Any] = ()) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._sinks: tuple[Any, ...] = tuple(sinks)

    def start(self, name: str, attributes: dict[str, Any]) -> _LiveSpan:
        """Create a handle for a new span; recording begins on ``__enter__``."""
        return _LiveSpan(self, Span(name=name, attributes=attributes))

    def _push(self, record: Span) -> None:
        if self._stack:
            self._stack[-1].children.append(record)
        else:
            self.roots.append(record)
        self._stack.append(record)
        record.started = perf_counter()

    def _pop(self, record: Span) -> None:
        record.duration = perf_counter() - record.started
        if not self._stack or self._stack[-1] is not record:
            raise ValidationError(
                f"span {record.name!r} closed out of order; spans must be "
                "used as properly nested context managers"
            )
        self._stack.pop()
        if not self._stack:
            for sink in self._sinks:
                sink.emit(record)

    @property
    def depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    @property
    def span_count(self) -> int:
        """Total spans recorded under every finished or open root."""
        return sum(root.span_count for root in self.roots)

    @property
    def max_depth(self) -> int:
        """Deepest nesting across all roots (0 when nothing recorded)."""
        return max((root.max_depth for root in self.roots), default=0)


_ACTIVE: TraceCollector | None = None


def active_collector() -> TraceCollector | None:
    """The currently installed collector, or ``None``."""
    return _ACTIVE


def install_collector(collector: TraceCollector) -> None:
    """Make *collector* receive every :func:`span` from now on.

    Replaces any previously installed collector; prefer the
    :func:`collect` context manager, which restores the previous one.
    """
    global _ACTIVE
    _ACTIVE = collector


def uninstall_collector() -> TraceCollector | None:
    """Remove and return the installed collector (``None`` if absent)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


def span(name: str, **attributes: Any) -> SpanHandle:
    """Open a named span around a block of work::

        with span("lp.solve", candidates=n) as sp:
            ...
            sp.set(iterations=solution.iterations)

    With no collector installed this returns a shared no-op handle — the
    cheap path instrumented hot loops rely on.  Exceptions propagate and
    mark the span's ``error`` flag.
    """
    collector = _ACTIVE
    if collector is None:
        return _NULL_SPAN
    return collector.start(name, attributes)


@contextmanager
def collect(*sinks: Any) -> Iterator[TraceCollector]:
    """Install a fresh :class:`TraceCollector` for the duration of a block.

    Nestable: the previously installed collector (if any) is restored on
    exit, so ``repro profile`` can wrap code that itself collects.
    """
    collector = TraceCollector(sinks=sinks)
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = collector
    try:
        yield collector
    finally:
        _ACTIVE = previous


# -- serialization ----------------------------------------------------------------


def span_to_dicts(root: Span, *, first_id: int = 0) -> list[dict[str, Any]]:
    """Flatten a span tree to JSON-ready dicts with ``id``/``parent`` links.

    Ids are assigned depth-first starting at *first_id*; the root's
    ``parent`` is ``None``.  Attribute values that are not JSON
    serializable are stringified.
    """
    rows: list[dict[str, Any]] = []

    def visit(node: Span, parent: int | None) -> None:
        node_id = first_id + len(rows)
        rows.append(
            {
                "id": node_id,
                "parent": parent,
                "name": node.name,
                "attributes": {str(k): _jsonable(v) for k, v in node.attributes.items()},
                "started": node.started,
                "duration": node.duration,
                "error": node.error,
            }
        )
        for child in node.children:
            visit(child, node_id)

    visit(root, None)
    return rows


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class JsonlSpanSink:
    """Writes finished span trees to a JSONL file, one span per line.

    Each line is one :func:`span_to_dicts` row; ids are unique across
    the file's lifetime, so several roots coexist.  Close (or use as a
    context manager) to flush.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle: IO[str] | None = open(path, "w", encoding="utf-8")
        self._next_id = 0

    def emit(self, root: Span) -> None:
        if self._handle is None:
            raise ValidationError(f"JSONL span sink {self.path!r} is closed")
        rows = span_to_dicts(root, first_id=self._next_id)
        self._next_id += len(rows)
        for row in rows:
            self._handle.write(json.dumps(row) + "\n")

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSpanSink":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> bool:
        self.close()
        return False


def read_spans_jsonl(path: str) -> list[Span]:
    """Rebuild span trees from a :class:`JsonlSpanSink` file.

    Returns the roots in file order; raises
    :class:`~repro.exceptions.ValidationError` on malformed rows or
    dangling parent references.
    """
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{line_number}: invalid JSON in span file: {exc}"
                ) from exc
            for key in ("id", "name", "started", "duration", "error"):
                if key not in row:
                    raise ValidationError(
                        f"{path}:{line_number}: span row is missing key {key!r}"
                    )
            node = Span(
                name=row["name"],
                attributes=dict(row.get("attributes", {})),
                started=float(row["started"]),
                duration=None if row["duration"] is None else float(row["duration"]),
                error=bool(row["error"]),
            )
            by_id[int(row["id"])] = node
            parent = row.get("parent")
            if parent is None:
                roots.append(node)
            else:
                if int(parent) not in by_id:
                    raise ValidationError(
                        f"{path}:{line_number}: span {row['id']} references "
                        f"unknown parent {parent}"
                    )
                by_id[int(parent)].children.append(node)
    return roots


# -- rendering --------------------------------------------------------------------


def render_span_tree(roots: Iterable[Span]) -> str:
    """Human-readable indented tree of spans with durations and attributes.

    One line per span: name, duration in milliseconds, then the
    attributes as ``key=value`` pairs; failed spans are marked
    ``[error]``.
    """
    lines: list[str] = []

    def visit(node: Span, depth: int) -> None:
        duration = "?" if node.duration is None else f"{node.duration * 1e3:.1f}ms"
        attrs = " ".join(f"{k}={v}" for k, v in node.attributes.items())
        flag = " [error]" if node.error else ""
        suffix = f"  {attrs}" if attrs else ""
        lines.append(f"{'  ' * depth}{node.name}  {duration}{flag}{suffix}")
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)
