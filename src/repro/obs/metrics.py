"""Process-wide metrics: counters, gauges, and histograms.

Unlike spans (sampled only while a collector is installed), metrics are
always on: a counter increment is a float addition on a long-lived
object, cheap enough for the hot paths to pay unconditionally.  Hot
modules cache the metric object at import time::

    _LP_SOLVES = counter("lp.solve.count")
    ...
    _LP_SOLVES.inc()

:meth:`MetricsRegistry.reset` zeroes metrics **in place**, so cached
references stay valid across the test suite's per-test reset — the same
contract the old ``repro.network.graph`` aggregate counters had, now
provided by a single registry (which this module's default instance
is; the legacy ``metric_cache_info()`` reads through it).

:func:`telemetry_scope` measures one region of work: it snapshots the
counters, times the block, and exposes the deltas as an immutable
:class:`TelemetrySnapshot` — the ``telemetry`` handle attached to
:class:`repro.core.results.SolveResult`.

The default registry is **fork-aware**: an ``os.register_at_fork`` hook
zeroes it in every forked child, so pooled workers (see
:mod:`repro.parallel`) start from clean counters instead of inheriting
— and re-reporting — the parent's totals.
"""

from __future__ import annotations

import math
import os
import re
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from ..exceptions import ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TelemetrySnapshot",
    "TelemetryHandle",
    "default_registry",
    "counter",
    "gauge",
    "histogram",
    "telemetry_scope",
]

_NAME_PATTERN = re.compile(r"^[a-z0-9_.]+$")


def _check_name(name: str) -> str:
    if not _NAME_PATTERN.match(name):
        raise ValidationError(
            f"metric name {name!r} must match {_NAME_PATTERN.pattern!r} "
            "(lowercase dotted words, e.g. 'lp.solve.count')"
        )
    return name


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be non-negative) to the total."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name!r} cannot decrease (inc({amount!r}))"
            )
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self._value!r})"


class Gauge:
    """A point-in-time level (last value wins)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, value={self._value!r})"


#: Sample-reservoir capacity per histogram.  Reaching it halves the
#: retained samples and doubles the keep-stride, so memory stays bounded
#: while coverage stays spread evenly over the whole observation stream.
_RESERVOIR_LIMIT = 512


class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    The aggregate state is O(1); quantile estimates come from a bounded
    *deterministic* sample reservoir (stride decimation, no RNG): every
    ``stride``-th observation is retained, and when the reservoir fills
    it drops every other sample and doubles the stride.  Identical
    observation streams therefore always yield identical
    :meth:`quantile` answers — replayable, unlike random reservoirs.
    """

    __slots__ = (
        "name",
        "count",
        "total",
        "minimum",
        "maximum",
        "_samples",
        "_stride",
        "_skip",
    )

    def __init__(self, name: str) -> None:
        self.name = _check_name(name)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples: list[float] = []
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self._skip == 0:
            self._samples.append(value)
            if len(self._samples) >= _RESERVOIR_LIMIT:
                # Deterministic decimation: keep every other sample.
                self._samples = self._samples[::2]
                self._stride *= 2
            self._skip = self._stride - 1
        else:
            self._skip -= 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the retained reservoir samples.

        ``q`` is a fraction in ``[0, 1]`` (``0.99`` for p99).  Exact
        while fewer than ``_RESERVOIR_LIMIT`` values have been observed;
        an evenly-strided estimate afterwards.  Returns 0.0 when the
        histogram is empty (mirroring :attr:`mean`).
        """
        if not 0.0 <= q <= 1.0:
            raise ValidationError(
                f"quantile fraction must be in [0, 1], got {q!r}"
            )
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = max(0, math.ceil(q * len(ordered)) - 1)
        return ordered[index]

    def summary(self) -> dict[str, float]:
        """JSON-ready ``count/total/mean/min/max`` (min/max omitted empty)."""
        result: dict[str, float] = {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
        }
        if self.count:
            result["min"] = self.minimum
            result["max"] = self.maximum
        return result

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._samples.clear()
        self._stride = 1
        self._skip = 0

    def __repr__(self) -> str:
        return f"Histogram({self.name!r}, count={self.count!r})"


class MetricsRegistry:
    """Named metrics, created on first access and reset in place.

    One process-wide :func:`default_registry` instance backs the module
    conveniences (:func:`counter` / :func:`gauge` / :func:`histogram`);
    independent registries exist only for tests.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def counter_values(self) -> dict[str, float]:
        """Flat name → value snapshot of every counter."""
        return {name: metric.value for name, metric in self._counters.items()}

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of everything registered."""
        return {
            "counters": dict(sorted(self.counter_values().items())),
            "gauges": {
                name: metric.value for name, metric in sorted(self._gauges.items())
            },
            "histograms": {
                name: metric.summary()
                for name, metric in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Zero every metric **in place** (cached references stay valid)."""
        for counter_metric in self._counters.values():
            counter_metric.reset()
        for gauge_metric in self._gauges.values():
            gauge_metric.reset()
        for histogram_metric in self._histograms.values():
            histogram_metric.reset()


_DEFAULT = MetricsRegistry()


def _reset_default_after_fork() -> None:
    """Zero the default registry in a freshly forked child.

    A forked worker inherits the parent's counter totals by value; left
    alone, every child would re-report work the parent already counted,
    and a pooled solve would see its own cost inflated by whatever ran
    before the fork.  Resetting in the child keeps each process's
    telemetry attributable to its own work — this is what makes
    ``writes-metrics`` a parallel-safe effect for the certificate gate
    in :mod:`repro.parallel` (child-side increments stay in the child;
    they never merge back into the parent's registry).
    """
    _DEFAULT.reset()


if hasattr(os, "register_at_fork"):  # POSIX; no-op surface elsewhere
    os.register_at_fork(after_in_child=_reset_default_after_fork)


def default_registry() -> MetricsRegistry:
    """The process-wide registry used by all library instrumentation."""
    return _DEFAULT


def counter(name: str) -> Counter:
    """Get-or-create a counter in the default registry."""
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create a gauge in the default registry."""
    return _DEFAULT.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create a histogram in the default registry."""
    return _DEFAULT.histogram(name)


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Immutable cost record of one region of work.

    ``metrics`` holds the counter *deltas* accrued during the region
    (zero-delta counters omitted); ``wall_seconds`` the region's
    wall-clock time.  This is the ``telemetry`` handle carried by
    :class:`repro.core.results.SolveResult`.
    """

    wall_seconds: float
    metrics: Mapping[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "metrics": dict(sorted(self.metrics.items())),
        }


class TelemetryHandle:
    """Mutable cell yielded by :func:`telemetry_scope`; the snapshot is
    filled in when the scope exits."""

    __slots__ = ("_snapshot",)

    def __init__(self) -> None:
        self._snapshot: TelemetrySnapshot | None = None

    @property
    def snapshot(self) -> TelemetrySnapshot | None:
        """The finished :class:`TelemetrySnapshot` (``None`` inside the scope)."""
        return self._snapshot


@contextmanager
def telemetry_scope(
    registry: MetricsRegistry | None = None,
) -> Iterator[TelemetryHandle]:
    """Measure a region: counter deltas + wall time, even on exceptions::

        with telemetry_scope() as tel:
            ...solve...
        result = SolveResult(..., telemetry=tel.snapshot)
    """
    reg = registry if registry is not None else _DEFAULT
    handle = TelemetryHandle()
    before = reg.counter_values()
    start = perf_counter()
    try:
        yield handle
    finally:
        wall = perf_counter() - start
        deltas = {
            name: value - before.get(name, 0.0)
            for name, value in reg.counter_values().items()
            if value != before.get(name, 0.0)
        }
        handle._snapshot = TelemetrySnapshot(wall_seconds=wall, metrics=deltas)
