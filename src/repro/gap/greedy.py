"""Greedy GAP heuristic (ablation baseline for Theorem 3.11).

Assigns jobs in decreasing-load order, each to the cheapest machine with
enough remaining capacity.  No approximation guarantee — it exists so the
benchmarks can show what the LP + Shmoys-Tardos rounding buys over the
obvious heuristic (greedy respects capacities exactly but can pay
arbitrarily more cost, and can fail on feasible instances).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import cost, raises
from ..exceptions import InfeasibleError
from .instance import GAPInstance, Label

__all__ = ["GreedyAssignment", "solve_gap_greedy"]


@dataclass(frozen=True)
class GreedyAssignment:
    """A greedy assignment: complete, capacity-respecting, no guarantee."""

    assignment: dict[Label, Label]
    cost: float
    machine_loads: dict[Label, float]


@cost("n * q + q * log(q)")
@raises("InfeasibleError")
def solve_gap_greedy(instance: GAPInstance) -> GreedyAssignment:
    """Greedy cheapest-feasible-machine assignment.

    Jobs are processed in decreasing order of their *minimum* load over
    machines (heavy, inflexible jobs first).  Raises
    :class:`InfeasibleError` when the greedy order gets stuck — which can
    happen even on feasible instances; callers treating this as a
    baseline should catch it.
    """
    remaining = np.array(instance.capacities, dtype=float)

    def job_weight(j: int) -> float:
        loads = instance.loads[:, j]
        finite = loads[np.isfinite(loads)]
        return float(finite.min()) if finite.size else 0.0

    order = sorted(range(instance.num_jobs), key=job_weight, reverse=True)
    assignment: dict[Label, Label] = {}
    for j in order:
        best_machine = -1
        best_cost = np.inf
        for i in range(instance.num_machines):
            load = instance.loads[i, j]
            if not np.isfinite(load) or load > remaining[i] + 1e-12:
                continue
            cost = float(instance.costs[i, j])
            if cost < best_cost:
                best_cost = cost
                best_machine = i
        if best_machine < 0:
            raise InfeasibleError(
                f"greedy GAP stuck: job {instance.jobs[j]!r} fits on no "
                "machine with remaining capacity"
            )
        remaining[best_machine] -= float(instance.loads[best_machine, j])
        assignment[instance.jobs[j]] = instance.machines[best_machine]

    return GreedyAssignment(
        assignment=assignment,
        cost=instance.assignment_cost(assignment),
        machine_loads=instance.machine_loads(assignment),
    )
