"""Generalized Assignment Problem: LP relaxation and Shmoys-Tardos rounding.

This is the workhorse substrate behind both placement algorithms:
Theorem 3.7 (single-source max-delay) rounds its filtered LP through GAP,
and Theorem 5.1 (total delay) *is* a GAP instance.
"""

from .greedy import GreedyAssignment, solve_gap_greedy
from .instance import GAPInstance
from .lp import FractionalAssignment, solve_gap_lp
from .rounding import RoundedAssignment, round_fractional_assignment
from .solver import GAPSolution, solve_gap, solve_gap_exact

__all__ = [
    "FractionalAssignment",
    "GAPInstance",
    "GAPSolution",
    "GreedyAssignment",
    "RoundedAssignment",
    "round_fractional_assignment",
    "solve_gap",
    "solve_gap_exact",
    "solve_gap_greedy",
    "solve_gap_lp",
]
