"""End-to-end GAP solving: LP relaxation + Shmoys-Tardos rounding.

Also provides an exhaustive exact solver for small instances, used by the
test suite and benchmarks to measure true approximation quality.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from itertools import product
from typing import ClassVar

import numpy as np

from .._compat import solver_api
from .._results import Provenance, SolveResult
from .._validation import check_integer_in_range, cost, raises
from ..exceptions import InfeasibleError, ValidationError
from ..obs.trace import span
from .instance import GAPInstance, Label
from .lp import FractionalAssignment, solve_gap_lp
from .rounding import RoundedAssignment, round_fractional_assignment

__all__ = ["GAPSolution", "solve_gap", "solve_gap_exact"]

_MAX_EXACT_STATES = 5_000_000


@dataclass(frozen=True)
class GAPSolution(SolveResult):
    """Result of :func:`solve_gap` (a :class:`~repro._results.SolveResult`).

    ``placement`` is the job → machine assignment and ``objective`` its
    cost; the pre-unification names ``assignment``/``cost``/``lp_cost``
    still resolve but emit a :class:`FutureWarning` (removal scheduled
    for the next major release).

    The Theorem 3.11 guarantees, restated on the result:

    * ``objective <= lp_value`` (and ``lp_value`` lower-bounds every
      integral solution respecting the capacities exactly);
    * load on machine ``i`` at most ``capacities[i] + p_i^max``.
    """

    lp_value: float
    machine_loads: dict[Label, float]
    fractional: FractionalAssignment

    _legacy_aliases: ClassVar[Mapping[str, str]] = {
        "assignment": "placement",
        "cost": "objective",
        "lp_cost": "lp_value",
    }

    def load_violation_factors(self, instance: GAPInstance) -> dict[Label, float]:
        """Per-machine ``realized load / T_i`` (0 when ``T_i`` is 0 and
        the machine is empty; infinite when loaded beyond a zero bound)."""
        factors: dict[Label, float] = {}
        for i, machine in enumerate(instance.machines):
            bound = float(instance.capacities[i])
            load = self.machine_loads[machine]
            if bound > 0:
                factors[machine] = load / bound
            else:
                factors[machine] = 0.0 if load == 0 else float("inf")
        return factors


def _worst_violation(machine_loads: Mapping[Label, float], instance: GAPInstance) -> float:
    """Worst per-machine ``load / T_i`` (the canonical violation factor)."""
    worst = 0.0
    for i, machine in enumerate(instance.machines):
        bound = float(instance.capacities[i])
        load = machine_loads[machine]
        if bound > 0:
            worst = max(worst, load / bound)
        elif load > 0:
            return float("inf")
    return worst


@solver_api(aliases={"method": "lp_method"})
@cost("n**2 * q**2")
@raises("InfeasibleError", "ValidationError", transient=("SolverError",))
def solve_gap(  # repro-lint: disable=R001 (delegates to solve_gap_lp's checks)
    instance: GAPInstance, *, lp_method: str = "highs-ds"
) -> GAPSolution:
    """Solve *instance* approximately: LP + rounding.

    Raises :class:`InfeasibleError` when even the relaxation is
    infeasible (a job fits nowhere, or fractional capacity is exceeded).
    """
    with span("gap.solve", jobs=instance.num_jobs, machines=instance.num_machines):
        fractional = solve_gap_lp(instance, lp_method=lp_method)
        with span("gap.round"):
            rounded: RoundedAssignment = round_fractional_assignment(fractional)
    return GAPSolution(
        placement=rounded.assignment,
        objective=rounded.cost,
        load_violation_factor=_worst_violation(rounded.machine_loads, instance),
        provenance=Provenance.of(
            "gap.lp+shmoys-tardos", "Thm 3.11", lp_method=lp_method
        ),
        lp_value=fractional.cost,
        machine_loads=rounded.machine_loads,
        fractional=fractional,
    )


@cost("exp(q) * n")
@raises("InfeasibleError", "ValidationError")
def solve_gap_exact(instance: GAPInstance) -> GAPSolution:
    """Exhaustive optimal GAP solution (capacities respected exactly).

    Enumerates all machine choices per job with early pruning; intended
    for instances with at most a few million candidate states (roughly
    ``machines ** jobs``).  Raises :class:`InfeasibleError` when no
    capacity-respecting assignment exists.
    """
    num_jobs = instance.num_jobs
    allowed = [
        [
            i
            for i in instance.allowed_machines(j)
            if instance.loads[i, j] <= instance.capacities[i]
        ]
        for j in range(num_jobs)
    ]
    states = 1
    for options in allowed:
        if not options:
            raise InfeasibleError("a job fits on no machine")
        states *= len(options)
        if states > _MAX_EXACT_STATES:
            raise ValidationError(
                f"exact GAP search would enumerate over {_MAX_EXACT_STATES} states"
            )

    best_cost = np.inf
    best_choice: tuple[int, ...] | None = None
    capacities = instance.capacities

    def recurse(job: int, choice: list[int], loads: np.ndarray, cost: float) -> None:
        nonlocal best_cost, best_choice
        if cost >= best_cost:
            return
        if job == num_jobs:
            best_cost = cost
            best_choice = tuple(choice)
            return
        for machine in allowed[job]:
            extra = float(instance.loads[machine, job])
            if loads[machine] + extra > capacities[machine] + 1e-12:
                continue
            loads[machine] += extra
            choice.append(machine)
            recurse(job + 1, choice, loads, cost + float(instance.costs[machine, job]))
            choice.pop()
            loads[machine] -= extra

    recurse(0, [], np.zeros(instance.num_machines), 0.0)
    if best_choice is None:
        raise InfeasibleError("no capacity-respecting assignment exists")

    assignment = {
        instance.jobs[j]: instance.machines[best_choice[j]] for j in range(num_jobs)
    }
    machine_loads = instance.machine_loads(assignment)
    # Exact solutions are their own certificate: report cost as lp_cost too.
    fractions = np.zeros((instance.num_machines, instance.num_jobs))
    for j, machine_index in enumerate(best_choice):
        fractions[machine_index, j] = 1.0
    fractional = FractionalAssignment(
        instance=instance, fractions=fractions, cost=float(best_cost)
    )
    return GAPSolution(
        placement=assignment,
        objective=float(best_cost),
        load_violation_factor=_worst_violation(machine_loads, instance),
        provenance=Provenance.of("gap.exhaustive", "Thm 3.11"),
        lp_value=float(best_cost),
        machine_loads=machine_loads,
        fractional=fractional,
    )
