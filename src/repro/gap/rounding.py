"""Shmoys-Tardos rounding for the Generalized Assignment Problem.

Theorem 3.11 in the paper (Shmoys & Tardos 1993): any fractional solution
of the GAP LP can be rounded to an integral assignment whose cost does not
exceed the fractional cost and whose load on machine ``i`` is at most
``T_i + p_i^max <= 2 T_i`` (the additive term is the largest load of any
job fractionally assigned to the machine).

The rounding works as follows:

1. **Slots.** For each machine ``i``, sort the jobs with ``y_ij > 0`` by
   non-increasing load ``p_ij`` and pour their fractions, in that order,
   into unit-sized *slots* ``(i, 1), (i, 2), ...`` — a fraction can split
   across two consecutive slots.  This yields a fractional *matching*
   between jobs and slots: each job totals 1, each slot at most 1.
2. **Matching.** Build the bipartite graph whose edges are the positive
   job/slot fractions (edge cost = ``c_ij``) and compute a minimum-weight
   matching saturating every job.  The fractional matching witnesses
   feasibility (Hall's condition) and, by integrality of the bipartite
   matching polytope, the optimal integral matching costs no more than
   the fractional one.
3. **Load guarantee.** A machine receives at most one job per slot; every
   job landing in slot ``s >= 2`` has load at most the *smallest* load in
   slot ``s - 1``, so the total beyond the first slot is at most the
   machine's fractional load ``<= T_i``, and the first slot adds at most
   ``p_i^max``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..exceptions import SolverError, ValidationError
from .instance import GAPInstance, Label
from .lp import FractionalAssignment

__all__ = ["RoundedAssignment", "round_fractional_assignment"]

#: Fractions at or below this threshold are treated as numerical noise.
_FRACTION_EPSILON = 1e-9


@dataclass(frozen=True)
class RoundedAssignment:
    """The integral assignment produced by the rounding.

    Attributes
    ----------
    assignment:
        ``{job: machine}`` covering every job.
    cost:
        Total integral cost; guaranteed ``<= fractional cost`` up to
        numerical tolerance.
    machine_loads:
        Realized total load per machine; guaranteed
        ``<= T_i + p_i^max`` per machine.
    fractional_cost:
        Cost of the fractional solution that was rounded, for ratio
        reporting.
    """

    assignment: dict[Label, Label]
    cost: float
    machine_loads: dict[Label, float]
    fractional_cost: float


def _build_slots(
    fractions: np.ndarray, loads: np.ndarray, machine_index: int
) -> list[list[tuple[int, float]]]:
    """Partition a machine's fractional jobs into unit slots.

    Returns a list of slots, each a list of ``(job_index, fraction)``
    pairs summing to at most 1, with jobs appearing in non-increasing
    load order across the slot sequence.
    """
    row = fractions[machine_index]
    jobs = [int(j) for j in np.nonzero(row > _FRACTION_EPSILON)[0]]
    # Sort by non-increasing load; ties broken by job index for determinism.
    jobs.sort(key=lambda j: (-loads[machine_index, j], j))
    slots: list[list[tuple[int, float]]] = []
    current: list[tuple[int, float]] = []
    room = 1.0
    for job in jobs:
        remaining = float(row[job])
        while remaining > _FRACTION_EPSILON:
            take = min(remaining, room)
            current.append((job, take))
            remaining -= take
            room -= take
            if room <= _FRACTION_EPSILON:
                slots.append(current)
                current = []
                room = 1.0
    if current:
        slots.append(current)
    return slots


def _check_fractions(fractional: FractionalAssignment) -> np.ndarray:
    """Validate and clean the fractional matrix: clip, check, renormalize.

    Raises
    ------
    ValidationError
        If some job's fractions do not sum to (approximately) one.
    """
    instance = fractional.instance
    fractions = np.clip(np.asarray(fractional.fractions, dtype=float), 0.0, None)
    column_sums = fractions.sum(axis=0)
    for j, total in enumerate(column_sums):
        if abs(total - 1.0) > 1e-6:
            raise ValidationError(
                f"job {instance.jobs[j]!r} has fractional total {total:.6f}, expected 1"
            )
    return fractions / column_sums[np.newaxis, :]


def round_fractional_assignment(fractional: FractionalAssignment) -> RoundedAssignment:
    """Round a fractional GAP solution per Shmoys-Tardos.

    The input fractions are cleaned (clipped at zero, renormalized per
    job) before slotting so that mild LP solver noise cannot break the
    matching feasibility argument.

    Raises
    ------
    ValidationError
        If some job's fractions do not sum to (approximately) one.
    SolverError
        If the matching step fails — which indicates a malformed
        fractional input rather than a true infeasibility.
    """
    fractions = _check_fractions(fractional)
    instance = fractional.instance

    graph = nx.Graph()
    job_nodes = [("job", j) for j in range(instance.num_jobs)]
    graph.add_nodes_from(job_nodes, bipartite=0)
    for i in range(instance.num_machines):
        slots = _build_slots(fractions, instance.loads, i)
        for s, slot in enumerate(slots):
            slot_node = ("slot", i, s)
            graph.add_node(slot_node, bipartite=1)
            for job, fraction in slot:
                if fraction <= _FRACTION_EPSILON:
                    continue
                cost = float(instance.costs[i, job])
                key = ("job", job)
                # A job can reach the same slot via two split pieces;
                # keep a single edge (costs are equal anyway).
                if not graph.has_edge(key, slot_node):
                    graph.add_edge(key, slot_node, weight=cost)

    try:
        matching = nx.bipartite.minimum_weight_full_matching(graph, job_nodes, "weight")
    except (ValueError, nx.NetworkXException) as exc:  # pragma: no cover - defensive
        raise SolverError(
            "bipartite matching failed during GAP rounding; the fractional "
            "solution is likely not a feasible LP point"
        ) from exc

    assignment: dict[Label, Label] = {}
    for j in range(instance.num_jobs):
        slot_node = matching[("job", j)]
        machine_index = slot_node[1]
        assignment[instance.jobs[j]] = instance.machines[machine_index]

    cost = instance.assignment_cost(assignment)
    machine_loads = instance.machine_loads(assignment)
    return RoundedAssignment(
        assignment=assignment,
        cost=cost,
        machine_loads=machine_loads,
        fractional_cost=fractional.cost,
    )
