"""The GAP linear-programming relaxation (paper equations (15)-(18)).

    minimize   sum_{j, i} c_ij y_ij                       (15)
    subject to sum_j p_ij y_ij <= T_i      for machines i (16)
               sum_i y_ij = 1              for jobs j     (17)
               y_ij >= 0                                  (18)

with the standard Lenstra-Shmoys-Tardos strengthening ``y_ij = 0``
whenever ``p_ij > T_i`` — required for the additive ``p_i^max`` load
guarantee of the rounding step, and exactly what constraint (13) of the
placement LP does in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._compat import solver_api
from .._validation import cost, raises, require
from ..exceptions import InfeasibleError
from ..lp import Model
from ..obs.trace import span
from .instance import GAPInstance

__all__ = ["FractionalAssignment", "solve_gap_lp"]


@dataclass(frozen=True)
class FractionalAssignment:
    """A fractional solution to the GAP LP.

    Attributes
    ----------
    instance:
        The instance solved.
    fractions:
        Matrix ``y`` with ``fractions[i, j]`` = fraction of job ``j`` on
        machine ``i``; rows are machines.
    cost:
        The LP objective value ``Y*``.
    """

    instance: GAPInstance
    fractions: np.ndarray
    cost: float

    def __post_init__(self) -> None:
        array = np.asarray(self.fractions, dtype=float)
        array.setflags(write=False)
        object.__setattr__(self, "fractions", array)

    def job_support(self, job_index: int, tolerance: float = 1e-9) -> list[int]:
        """Machines carrying a positive fraction of the job."""
        column = self.fractions[:, job_index]
        return [int(i) for i in np.nonzero(column > tolerance)[0]]

    def machine_fractional_load(self, machine_index: int) -> float:
        row = self.fractions[machine_index]
        loads = self.instance.loads[machine_index]
        mask = row > 0
        return float(np.sum(row[mask] * loads[mask]))


@solver_api(aliases={"method": "lp_method"})
@cost("n**2 * q**2")
@raises("InfeasibleError", "ValidationError")
def solve_gap_lp(
    instance: GAPInstance, *, lp_method: str = "highs-ds"
) -> FractionalAssignment:
    """Solve the GAP LP relaxation.

    Uses the dual simplex by default so the returned point is a vertex,
    which keeps the fractional support small for the rounding step.

    Raises
    ------
    InfeasibleError
        If some job has no allowed machine, or the capacity constraints
        cannot be met even fractionally.
    """
    require(instance.num_jobs > 0, "GAP instance has no jobs to assign")
    model = Model(name="gap-lp")
    num_machines, num_jobs = instance.num_machines, instance.num_jobs
    variables: dict[tuple[int, int], object] = {}
    for j in range(num_jobs):
        allowed = [
            i
            for i in instance.allowed_machines(j)
            if instance.loads[i, j] <= instance.capacities[i]
        ]
        if not allowed:
            raise InfeasibleError(
                f"job {instance.jobs[j]!r} fits on no machine "
                "(every allowed machine has capacity below its load)"
            )
        for i in allowed:
            variables[(i, j)] = model.variable(f"y[{i},{j}]", lb=0.0, ub=1.0)

    # (17): each job fully assigned.
    for j in range(num_jobs):
        terms = [variables[(i, j)] for i in range(num_machines) if (i, j) in variables]
        expr = terms[0].to_expr()
        for variable in terms[1:]:
            expr = expr + variable
        model.add_constraint(expr == 1, name=f"assign[{j}]")

    # (16): machine capacities (skipped for uncapacitated machines — an
    # infinite right-hand side is vacuous and upsets the solver).
    for i in range(num_machines):
        if not np.isfinite(instance.capacities[i]):
            continue
        terms = [
            (variables[(i, j)], float(instance.loads[i, j]))
            for j in range(num_jobs)
            if (i, j) in variables
        ]
        if not terms:
            continue
        expr = terms[0][0] * terms[0][1]
        for variable, coefficient in terms[1:]:
            expr = expr + variable * coefficient
        model.add_constraint(expr <= float(instance.capacities[i]), name=f"cap[{i}]")

    # (15): cost objective.
    objective = None
    for (i, j), variable in variables.items():
        term = variable * float(instance.costs[i, j])
        objective = term if objective is None else objective + term
    model.minimize(objective)

    with span("gap.lp", jobs=num_jobs, machines=num_machines):
        solution = model.solve(method=lp_method)
    fractions = np.zeros((num_machines, num_jobs))
    for (i, j), variable in variables.items():
        fractions[i, j] = max(solution.value(variable), 0.0)
    return FractionalAssignment(instance=instance, fractions=fractions, cost=solution.objective)
