"""Generalized Assignment Problem instances.

Definition 3.10 of the paper: jobs ``U`` and machines ``V``; assigning
job ``j`` to machine ``i`` costs ``c_ij`` and adds load ``p_ij`` to the
machine, whose total load must stay within ``T_i``.  The objective is a
minimum-cost assignment of every job.

Both placement algorithms in the paper reduce to GAP:

* §3.3 rounds the filtered single-source LP through GAP with machine
  capacities ``alpha * cap(v)``;
* §5 phrases the total-delay problem *directly* as GAP.

Forbidden job/machine pairs (``load(u) > cap(v)`` in the placement
setting) are modeled with infinite cost and load.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

import numpy as np

from .._validation import require
from ..exceptions import ValidationError

__all__ = ["GAPInstance"]

Label = Hashable


@dataclass(frozen=True)
class GAPInstance:
    """An immutable GAP instance.

    Attributes
    ----------
    jobs, machines:
        Ordered labels; matrix rows are machines, columns are jobs.
    costs:
        ``costs[i, j]`` = cost of putting job ``j`` on machine ``i``;
        ``inf`` marks a forbidden pair.
    loads:
        ``loads[i, j]`` = load job ``j`` imposes on machine ``i``; must be
        ``inf`` exactly where costs are ``inf``.
    capacities:
        ``capacities[i]`` = load bound ``T_i`` of machine ``i``.
    """

    jobs: tuple[Label, ...]
    machines: tuple[Label, ...]
    costs: np.ndarray = field(repr=False)
    loads: np.ndarray = field(repr=False)
    capacities: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        jobs = tuple(self.jobs)
        machines = tuple(self.machines)
        require(len(jobs) > 0, "GAP instance needs at least one job")
        require(len(machines) > 0, "GAP instance needs at least one machine")
        if len(set(jobs)) != len(jobs):
            raise ValidationError("duplicate job labels")
        if len(set(machines)) != len(machines):
            raise ValidationError("duplicate machine labels")
        costs = np.asarray(self.costs, dtype=float)
        loads = np.asarray(self.loads, dtype=float)
        capacities = np.asarray(self.capacities, dtype=float)
        shape = (len(machines), len(jobs))
        if costs.shape != shape or loads.shape != shape:
            raise ValidationError(
                f"costs and loads must have shape {shape}, got "
                f"{costs.shape} and {loads.shape}"
            )
        if capacities.shape != (len(machines),):
            raise ValidationError(
                f"capacities must have shape ({len(machines)},), got {capacities.shape}"
            )
        if np.any(np.isnan(costs)) or np.any(np.isnan(loads)) or np.any(np.isnan(capacities)):
            raise ValidationError("NaN entries are not allowed")
        finite_costs = np.isfinite(costs)
        finite_loads = np.isfinite(loads)
        if not np.array_equal(finite_costs, finite_loads):
            raise ValidationError(
                "forbidden pairs must have BOTH cost and load infinite"
            )
        if np.any(costs[finite_costs] < 0) or np.any(loads[finite_loads] < 0):
            raise ValidationError("finite costs and loads must be non-negative")
        if np.any(capacities < 0) or np.any(np.isinf(capacities) & (capacities < 0)):
            raise ValidationError("capacities must be non-negative")
        costs.setflags(write=False)
        loads.setflags(write=False)
        capacities.setflags(write=False)
        object.__setattr__(self, "jobs", jobs)
        object.__setattr__(self, "machines", machines)
        object.__setattr__(self, "costs", costs)
        object.__setattr__(self, "loads", loads)
        object.__setattr__(self, "capacities", capacities)

    # -- constructors --------------------------------------------------------------

    @classmethod
    def from_dicts(
        cls,
        jobs: Sequence[Label],
        machines: Sequence[Label],
        cost: dict[tuple[Label, Label], float],
        load: dict[tuple[Label, Label], float],
        capacity: dict[Label, float],
    ) -> "GAPInstance":
        """Build an instance from sparse dictionaries keyed ``(machine, job)``.

        Pairs absent from *cost* are forbidden.
        """
        machine_list = tuple(machines)
        job_list = tuple(jobs)
        costs = np.full((len(machine_list), len(job_list)), math.inf)
        loads = np.full((len(machine_list), len(job_list)), math.inf)
        for (machine, job), value in cost.items():
            i = machine_list.index(machine)
            j = job_list.index(job)
            costs[i, j] = value
            if (machine, job) not in load:
                raise ValidationError(f"cost given for {(machine, job)!r} but no load")
            loads[i, j] = load[(machine, job)]
        capacities = np.array([capacity[m] for m in machine_list], dtype=float)
        return cls(job_list, machine_list, costs, loads, capacities)

    # -- helpers ---------------------------------------------------------------------

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    def allowed(self, machine_index: int, job_index: int) -> bool:
        return bool(np.isfinite(self.costs[machine_index, job_index]))

    def allowed_machines(self, job_index: int) -> list[int]:
        return [i for i in range(self.num_machines) if self.allowed(i, job_index)]

    def max_load_on_machine(self, machine_index: int) -> float:
        """``p_i^max``: the largest finite load any job can impose on the
        machine (0 when no job is allowed there).  This is the slack term
        in the Shmoys-Tardos guarantee ``T_i + p_i^max``."""
        row = self.loads[machine_index]
        finite = row[np.isfinite(row)]
        return float(finite.max()) if finite.size else 0.0

    def assignment_cost(self, assignment: dict[Label, Label]) -> float:
        """Total cost of a complete assignment ``{job: machine}``."""
        total = 0.0
        for j, job in enumerate(self.jobs):
            if job not in assignment:
                raise ValidationError(f"assignment is missing job {job!r}")
            machine = assignment[job]
            i = self.machines.index(machine)
            value = self.costs[i, j]
            if not np.isfinite(value):
                raise ValidationError(f"assignment uses forbidden pair ({machine!r}, {job!r})")
            total += float(value)
        return total

    def machine_loads(self, assignment: dict[Label, Label]) -> dict[Label, float]:
        """Per-machine total load of a complete assignment."""
        totals = {machine: 0.0 for machine in self.machines}
        for j, job in enumerate(self.jobs):
            machine = assignment[job]
            i = self.machines.index(machine)
            totals[machine] += float(self.loads[i, j])
        return totals
