"""Single-machine precedence scheduling: ``1|prec|sum w_j C_j``.

Definition 3.4 in the paper: ``n`` jobs with processing times ``T_j`` and
weights ``w_j``, plus a partial order ``prec``; a feasible schedule is a
linear extension, and its cost is the weighted sum of completion times.
The problem is the classical NP-hard source of the paper's hardness proof
(Lenstra & Rinnooy Kan 1978).

Woeginger's theorem (Thm 3.5 in the paper) shows it suffices to consider
instances where every job has either ``T = 0, w = 1`` or ``T = 1, w = 0``
and precedences go only from (1,0)-jobs to (0,1)-jobs — the *Woeginger
special form* that :mod:`repro.core.hardness` transforms into placement
instances.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence
from dataclasses import dataclass, field

import numpy as np

from .._numeric import is_unit as _is_unit
from .._numeric import is_zero as _is_zero
from .._validation import check_integer_in_range, check_nonnegative, require
from ..exceptions import ValidationError

__all__ = ["SchedulingInstance", "random_woeginger_instance"]

Job = Hashable


@dataclass(frozen=True)
class SchedulingInstance:
    """An instance of ``1|prec|sum w_j C_j``.

    Attributes
    ----------
    jobs:
        Job labels, in a fixed order.
    processing_times / weights:
        ``T_j`` and ``w_j`` per job; non-negative.
    precedence:
        Pairs ``(a, b)`` meaning ``a`` must complete before ``b`` starts.
        Must be acyclic.
    """

    jobs: tuple[Job, ...]
    processing_times: dict[Job, float]
    weights: dict[Job, float]
    precedence: frozenset[tuple[Job, Job]] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        jobs = tuple(self.jobs)
        require(len(jobs) > 0, "scheduling instance needs at least one job")
        if len(set(jobs)) != len(jobs):
            raise ValidationError("duplicate job labels")
        job_set = set(jobs)
        for job in jobs:
            if job not in self.processing_times:
                raise ValidationError(f"missing processing time for job {job!r}")
            if job not in self.weights:
                raise ValidationError(f"missing weight for job {job!r}")
            check_nonnegative(self.processing_times[job], f"T[{job!r}]")
            check_nonnegative(self.weights[job], f"w[{job!r}]")
        pairs = frozenset(tuple(pair) for pair in self.precedence)
        for a, b in pairs:
            if a not in job_set or b not in job_set:
                raise ValidationError(f"precedence ({a!r}, {b!r}) references unknown job")
            if a == b:
                raise ValidationError(f"job {a!r} cannot precede itself")
        object.__setattr__(self, "jobs", jobs)
        object.__setattr__(self, "precedence", pairs)
        if self._has_cycle():
            raise ValidationError("precedence constraints contain a cycle")

    # -- structure --------------------------------------------------------------------

    def _successors(self) -> dict[Job, list[Job]]:
        adjacency: dict[Job, list[Job]] = {job: [] for job in self.jobs}
        for a, b in self.precedence:
            adjacency[a].append(b)
        return adjacency

    def predecessors(self, job: Job) -> frozenset[Job]:
        """Direct predecessors of *job* under the precedence relation."""
        return frozenset(a for a, b in self.precedence if b == job)

    def _has_cycle(self) -> bool:
        adjacency = self._successors()
        color: dict[Job, int] = {job: 0 for job in self.jobs}

        def visit(job: Job) -> bool:
            color[job] = 1
            for succ in adjacency[job]:
                if color[succ] == 1:
                    return True
                if color[succ] == 0 and visit(succ):
                    return True
            color[job] = 2
            return False

        return any(color[job] == 0 and visit(job) for job in self.jobs)

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    # -- schedules ---------------------------------------------------------------------

    def is_feasible_order(self, order: Sequence[Job]) -> bool:
        """Whether *order* is a linear extension of the precedence order."""
        if sorted(map(repr, order)) != sorted(map(repr, self.jobs)):
            return False
        position = {job: index for index, job in enumerate(order)}
        return all(position[a] < position[b] for a, b in self.precedence)

    def cost(self, order: Sequence[Job]) -> float:
        """Weighted completion time ``sum_j w_j C_j`` of the schedule *order*.

        Raises :class:`ValidationError` when *order* is not a feasible
        linear extension.
        """
        if not self.is_feasible_order(order):
            raise ValidationError("order is not a feasible linear extension")
        elapsed = 0.0
        total = 0.0
        for job in order:
            elapsed += self.processing_times[job]
            total += self.weights[job] * elapsed
        return total

    # -- Woeginger special form -------------------------------------------------------

    def is_woeginger_form(self) -> bool:
        """Check the Theorem 3.5(b) special shape.

        Every job is either a (T=1, w=0) job or a (T=0, w=1) job, and
        every precedence pair goes from a (1,0)-job to a (0,1)-job.
        """
        kinds: dict[Job, str] = {}
        for job in self.jobs:
            t, w = self.processing_times[job], self.weights[job]
            if _is_unit(t) and _is_zero(w):
                kinds[job] = "unit-time"
            elif _is_zero(t) and _is_unit(w):
                kinds[job] = "unit-weight"
            else:
                return False
        return all(
            kinds[a] == "unit-time" and kinds[b] == "unit-weight"
            for a, b in self.precedence
        )

    def unit_time_jobs(self) -> list[Job]:
        """The (T=1, w=0) jobs, in instance order."""
        return [j for j in self.jobs if _is_unit(self.processing_times[j])]

    def unit_weight_jobs(self) -> list[Job]:
        """The (T=0, w=1) jobs, in instance order."""
        return [j for j in self.jobs if _is_unit(self.weights[j])]


def random_woeginger_instance(
    unit_time: int,
    unit_weight: int,
    *,
    rng: np.random.Generator,
    edge_probability: float = 0.4,
) -> SchedulingInstance:
    """A random Woeginger-form instance.

    ``unit_time`` jobs ``("t", i)`` with ``T=1, w=0``; ``unit_weight``
    jobs ``("w", i)`` with ``T=0, w=1``; each allowed precedence pair is
    included independently with *edge_probability*.
    """
    check_integer_in_range(unit_time, "unit_time", low=1)
    check_integer_in_range(unit_weight, "unit_weight", low=1)
    t_jobs = [("t", i) for i in range(unit_time)]
    w_jobs = [("w", i) for i in range(unit_weight)]
    precedence = {
        (a, b)
        for a in t_jobs
        for b in w_jobs
        if rng.random() < edge_probability
    }
    jobs: tuple[Job, ...] = tuple(t_jobs + w_jobs)
    return SchedulingInstance(
        jobs=jobs,
        processing_times={**{j: 1.0 for j in t_jobs}, **{j: 0.0 for j in w_jobs}},
        weights={**{j: 0.0 for j in t_jobs}, **{j: 1.0 for j in w_jobs}},
        precedence=frozenset(precedence),
    )
