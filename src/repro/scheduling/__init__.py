"""Single-machine precedence scheduling (the NP-hardness substrate)."""

from .exact import ExactSchedule, solve_scheduling_exact
from .precedence import SchedulingInstance, random_woeginger_instance

__all__ = [
    "ExactSchedule",
    "SchedulingInstance",
    "random_woeginger_instance",
    "solve_scheduling_exact",
]
