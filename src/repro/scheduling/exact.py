"""Exact optimization of ``1|prec|sum w_j C_j`` for small instances.

Branch-and-bound over linear extensions: at each step any unscheduled job
whose predecessors are all scheduled may run next.  Exponential in the
worst case — these exact schedules exist to certify the NP-hardness
reduction (Theorem 3.6) and to provide ground truth in tests, not to be
fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import cost, raises, require
from ..exceptions import ValidationError
from .precedence import Job, SchedulingInstance

__all__ = ["ExactSchedule", "solve_scheduling_exact"]

_MAX_JOBS = 12


@dataclass(frozen=True)
class ExactSchedule:
    """An optimal schedule: the job order and its weighted completion cost."""

    order: tuple[Job, ...]
    cost: float


@cost("exp(q)")
@raises("ValidationError")
def solve_scheduling_exact(instance: SchedulingInstance) -> ExactSchedule:
    """Find an optimal linear extension by branch-and-bound.

    Limited to :data:`_MAX_JOBS` jobs; the state space is the set of
    downward-closed job subsets, pruned by the running best cost.
    """
    n = instance.num_jobs
    require(
        n <= _MAX_JOBS,
        f"solve_scheduling_exact supports at most {_MAX_JOBS} jobs (got {n})",
    )
    jobs = list(instance.jobs)
    predecessor_sets = {job: set(instance.predecessors(job)) for job in jobs}

    best_cost = float("inf")
    best_order: tuple[Job, ...] | None = None

    def recurse(
        scheduled: set[Job], order: list[Job], elapsed: float, cost: float
    ) -> None:
        nonlocal best_cost, best_order
        if cost >= best_cost:
            return
        if len(order) == n:
            best_cost = cost
            best_order = tuple(order)
            return
        for job in jobs:
            if job in scheduled or not predecessor_sets[job] <= scheduled:
                continue
            time = elapsed + instance.processing_times[job]
            scheduled.add(job)
            order.append(job)
            recurse(scheduled, order, time, cost + instance.weights[job] * time)
            order.pop()
            scheduled.remove(job)

    recurse(set(), [], 0.0, 0.0)
    if best_order is None:  # pragma: no cover - acyclicity guarantees a schedule
        raise ValidationError("no feasible schedule found; instance is malformed")
    return ExactSchedule(order=best_order, cost=best_cost)
