"""Integrality-gap instances for the single-source LP (Appendix A).

Claim A.1: the LP relaxation (9)-(14) has integrality gap at least ``n``
on general metrics and at least ``sqrt(n)`` on unit-length graphs.  Both
constructions use a single quorum containing the entire universe with
unit capacities, so every feasible *integral* placement is a bijection
and pays the largest node distance, while the LP spreads each element
``1/n`` everywhere and pays roughly the average distance.

* :func:`general_metric_gap_instance` — the weighted star whose farthest
  node sits at distance ``M >> 1``: integral optimum ``M``, LP about
  ``(n - 1 + M)/n``, gap approaching ``n``.
* :func:`broom_gap_instance` — **Figure 1**: the ``k^2``-node unit-length
  broom; integral optimum ``k``, LP about ``3/2``, gap ``O(sqrt(n))``.

The LP values are computed by actually solving the relaxation with
:func:`repro.core.ssqpp.build_ssqpp_lp`, so these instances double as an
end-to-end exercise of the LP machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_integer_in_range, check_positive, cost, raises
from ..core.ssqpp import build_ssqpp_lp
from ..network.generators import broom_network
from ..network.graph import Network
from ..quorums.base import QuorumSystem
from ..quorums.strategy import AccessStrategy

__all__ = [
    "GapInstance",
    "general_metric_gap_instance",
    "broom_gap_instance",
    "solve_gap_instance_lp",
]


@dataclass(frozen=True)
class GapInstance:
    """A single-quorum gap instance with its certified gap numbers.

    ``integral_optimum`` is exact (argued in Appendix A: unit loads and
    unit capacities force a bijection, whose delay is the distance of the
    farthest node).  ``lp_value`` is the solved LP optimum, and ``gap``
    their ratio.
    """

    name: str
    system: QuorumSystem
    strategy: AccessStrategy
    network: Network
    source: int
    integral_optimum: float
    lp_value: float

    @property
    def gap(self) -> float:
        return self.integral_optimum / self.lp_value if self.lp_value > 0 else float("inf")


def _single_quorum_system(n: int) -> tuple[QuorumSystem, AccessStrategy]:
    system = QuorumSystem(
        [frozenset(range(n))], universe=range(n), name=f"one-quorum({n})", check=False
    )
    return system, AccessStrategy.uniform(system)


@cost("n**2 * q**2")
@raises("ValidationError")
def solve_gap_instance_lp(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    source: int,
) -> float:
    """Optimal value ``Z*`` of the relaxation (9)-(14) for the instance."""
    model, _, _, _, _ = build_ssqpp_lp(system, strategy, network, source)
    return float(model.solve().objective)


def general_metric_gap_instance(n: int, far_distance: float) -> GapInstance:
    """The general-metric instance of Claim A.1.

    A star with center ``v0``: ``n - 2`` leaves at distance 1 and one
    leaf at distance ``M = far_distance``.  Distances from ``v0`` are
    ``0, 1, .., 1, M``; unit loads and unit capacities force every node
    to host exactly one element, so the integral optimum is ``M`` while
    the LP pays about ``(n - 1 + M)/n``.
    """
    check_integer_in_range(n, "n", low=3)
    check_positive(far_distance, "far_distance")
    edges = [(0, leaf, 1.0) for leaf in range(1, n - 1)]
    edges.append((0, n - 1, float(far_distance)))
    network = Network(
        range(n), edges, capacities=1.0, name=f"gap-star({n},M={far_distance:g})"
    )
    system, strategy = _single_quorum_system(n)
    lp_value = solve_gap_instance_lp(system, strategy, network, 0)
    return GapInstance(
        name=network.name,
        system=system,
        strategy=strategy,
        network=network,
        source=0,
        integral_optimum=float(far_distance),
        lp_value=lp_value,
    )


# paper: Claim A.1, App. A
def broom_gap_instance(k: int) -> GapInstance:
    """The unit-length Figure 1 instance: integral optimum ``k``, LP
    roughly ``3/2``, certifying a gap of ``Omega(sqrt(n))``."""
    check_integer_in_range(k, "k", low=2)
    network = broom_network(k).with_capacities(1.0)
    system, strategy = _single_quorum_system(network.size)
    lp_value = solve_gap_instance_lp(system, strategy, network, 0)
    return GapInstance(
        name=network.name,
        system=system,
        strategy=strategy,
        network=network,
        source=0,
        integral_optimum=float(k),
        lp_value=lp_value,
    )
