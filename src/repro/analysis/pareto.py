"""Backward-compatible alias for :mod:`repro._pareto`.

The Pareto helpers moved to the foundation layer so that
``repro.core.biobjective`` can use them without importing upward into
the analysis layer (an R100 layering violation).  Import from
:mod:`repro.analysis` or :mod:`repro._pareto`; this module only
re-exports.
"""

from __future__ import annotations

from .._pareto import ParetoPoint, pareto_front

__all__ = ["ParetoPoint", "pareto_front"]
