"""Analysis tooling: integrality gaps, fault tolerance, report tables."""

from .fault_tolerance import (
    placement_availability,
    placement_availability_monte_carlo,
    placement_resilience,
    survivors,
)
from .pareto import ParetoPoint, pareto_front
from .integrality import (
    GapInstance,
    broom_gap_instance,
    general_metric_gap_instance,
    solve_gap_instance_lp,
)
from .reporting import ResultTable, check_mark, format_value

__all__ = [
    "GapInstance",
    "ParetoPoint",
    "ResultTable",
    "broom_gap_instance",
    "check_mark",
    "format_value",
    "general_metric_gap_instance",
    "pareto_front",
    "placement_availability",
    "placement_availability_monte_carlo",
    "placement_resilience",
    "solve_gap_instance_lp",
    "survivors",
]
