"""Plain-text result tables for the benchmark harness.

Every benchmark regenerates a paper artifact as a table of rows —
instance parameters, the measured quantity, the paper's bound, and a
pass/fail check — printed in aligned columns so the bench output reads
like the claims in the paper.  Nothing here depends on the rest of the
library; it is deliberately dumb formatting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ResultTable", "check_mark", "format_value"]


def format_value(value: Any, precision: int = 4) -> str:
    """Human formatting: floats rounded, bools as yes/NO, rest via str."""
    if isinstance(value, (bool, np.bool_)):
        return check_mark(bool(value))
    if isinstance(value, (float, np.floating)):
        value = float(value)
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        return f"{value:.{precision}g}"
    return str(value)


def check_mark(ok: bool) -> str:
    """``yes`` when a bound holds, a loud ``NO`` when it does not."""
    return "yes" if ok else "NO"


@dataclass
class ResultTable:
    """An aligned text table with a title and fixed columns.

    Examples
    --------
    >>> table = ResultTable("demo", ["x", "ok"])
    >>> table.add_row(x=1.5, ok=True)
    >>> print(table.render())  # doctest: +NORMALIZE_WHITESPACE
    == demo ==
    x   | ok
    ----+----
    1.5 | yes
    """

    title: str
    columns: list[str]
    rows: list[dict[str, str]] = field(default_factory=list)
    precision: int = 4

    def add_row(self, **values: Any) -> None:
        """Add a row; every column must be supplied as a keyword."""
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValidationError(f"row is missing columns {missing}")
        unknown = [c for c in values if c not in self.columns]
        if unknown:
            raise ValidationError(f"row has unknown columns {unknown}")
        self.rows.append(
            {c: format_value(values[c], self.precision) for c in self.columns}
        )

    def render(self) -> str:
        widths = {
            c: max(len(c), *(len(r[c]) for r in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        header = " | ".join(c.ljust(widths[c]) for c in self.columns)
        rule = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [f"== {self.title} ==", header, rule]
        lines.extend(
            " | ".join(row[c].ljust(widths[c]) for c in self.columns)
            for row in self.rows
        )
        return "\n".join(lines)

    def print(self) -> None:
        """Print with surrounding blank lines (benchmark-friendly)."""
        print()
        print(self.render())
        print()

    def all_rows_pass(self, column: str) -> bool:
        """Whether every row shows ``yes`` in the given check column."""
        return all(row[column] == "yes" for row in self.rows)
