"""Placement-aware fault tolerance.

The paper motivates capacity limits with load dispersion and fault
tolerance: Lin's single-node collapse is "not very desirable, since it
eliminates the advantages (such as load dispersion and fault tolerance)
of any distributed quorum-based algorithm".  This module quantifies that
argument for concrete placements.

When quorum elements are placed on physical nodes, a *node* crash kills
every element hosted there.  Co-location therefore trades delay not only
against load but against survivability:

* :func:`placement_resilience` — the largest number of **node** crashes
  that always leaves some quorum fully alive (0 for the single-node
  collapse, up to the logical resilience for an injective placement).
* :func:`placement_availability` — the probability a live quorum remains
  when each node fails independently (exact for small networks, seeded
  Monte Carlo otherwise).
* :func:`survivors` — which quorums survive a given crash set; useful
  for what-if analysis in operational tooling.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .._validation import check_integer_in_range, check_probability
from ..core.placement import Placement
from ..exceptions import ValidationError
from ..network.graph import Node

__all__ = [
    "survivors",
    "placement_resilience",
    "placement_availability",
    "placement_availability_monte_carlo",
]

_MAX_EXACT_NODES = 20


def _hosted_quorum_nodes(placement: Placement) -> list[frozenset]:
    """For each quorum, the set of nodes hosting at least one member."""
    system = placement.system
    return [
        frozenset(placement[u] for u in quorum) for quorum in system.quorums
    ]


def survivors(placement: Placement, failed_nodes: set[Node]) -> list[int]:
    """Indices of quorums whose hosts all survive *failed_nodes*.

    A quorum survives iff none of its members' hosting nodes failed.
    """
    for node in failed_nodes:
        placement.network.node_index(node)
    failed = frozenset(failed_nodes)
    return [
        index
        for index, hosts in enumerate(_hosted_quorum_nodes(placement))
        if hosts.isdisjoint(failed)
    ]


def placement_resilience(placement: Placement) -> int:
    """Largest ``f`` such that any ``f`` node crashes leave a live quorum.

    Equals ``(minimum node hitting set of the hosted quorums) - 1``.
    Exhaustive over crash sets in increasing size; networks are limited
    to 20 nodes (same guard as the element-level
    :func:`repro.quorums.analysis.resilience`).
    """
    network = placement.network
    if network.size > _MAX_EXACT_NODES:
        raise ValidationError(
            f"placement_resilience supports at most {_MAX_EXACT_NODES} nodes "
            f"(got {network.size})"
        )
    hosted = _hosted_quorum_nodes(placement)
    used_nodes = sorted(
        {node for hosts in hosted for node in hosts},
        key=network.node_index,
    )
    for size in range(1, len(used_nodes) + 1):
        for crash in combinations(used_nodes, size):
            failed = frozenset(crash)
            if all(not hosts.isdisjoint(failed) for hosts in hosted):
                return size - 1
    raise AssertionError("no node hitting set found; placement is malformed")


def placement_availability(placement: Placement, failure_probability: float) -> float:
    """Exact probability that some quorum survives independent node
    crashes at rate *failure_probability*.

    Exponential in the number of *distinct hosting nodes*; guarded to 20.
    """
    p_fail = check_probability(failure_probability, "failure_probability")
    hosted = _hosted_quorum_nodes(placement)
    used_nodes = sorted(
        {node for hosts in hosted for node in hosts},
        key=placement.network.node_index,
    )
    n = len(used_nodes)
    if n > _MAX_EXACT_NODES:
        raise ValidationError(
            f"placement_availability is exact and supports at most "
            f"{_MAX_EXACT_NODES} hosting nodes (got {n}); use "
            "placement_availability_monte_carlo"
        )
    index = {node: i for i, node in enumerate(used_nodes)}
    quorum_masks = []
    for hosts in hosted:
        mask = 0
        for node in hosts:
            mask |= 1 << index[node]
        quorum_masks.append(mask)
    total = 0.0
    for alive_mask in range(1 << n):
        if any(mask & alive_mask == mask for mask in quorum_masks):
            alive = bin(alive_mask).count("1")
            total += (1 - p_fail) ** alive * p_fail ** (n - alive)
    return total


def placement_availability_monte_carlo(
    placement: Placement,
    failure_probability: float,
    *,
    samples: int = 10_000,
    rng: np.random.Generator | None = None,
) -> float:
    """Monte-Carlo estimate of :func:`placement_availability`."""
    p_fail = check_probability(failure_probability, "failure_probability")
    check_integer_in_range(samples, "samples", low=1)
    generator = rng if rng is not None else np.random.default_rng(0)
    hosted = _hosted_quorum_nodes(placement)
    used_nodes = sorted(
        {node for hosts in hosted for node in hosts},
        key=placement.network.node_index,
    )
    n = len(used_nodes)
    index = {node: i for i, node in enumerate(used_nodes)}
    quorum_masks = []
    for hosts in hosted:
        mask = 0
        for node in hosts:
            mask |= 1 << index[node]
        quorum_masks.append(mask)
    successes = 0
    for _ in range(samples):
        draws = generator.random(n)
        alive_mask = 0
        for i in range(n):
            if draws[i] >= p_fail:
                alive_mask |= 1 << i
        if any(mask & alive_mask == mask for mask in quorum_masks):
            successes += 1
    return successes / samples
