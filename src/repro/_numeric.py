"""Shared float-comparison helpers with named tolerances.

The linter's R005 rule bans bare ``==`` / ``!=`` between floats because
delay, probability and weight values all come out of float arithmetic.
These helpers are the sanctioned alternative: one named absolute
tolerance and the three classifications the library actually needs.
Centralizing them here (rather than per-module copies) keeps every
subsystem agreeing on what "is one" and "is zero" mean — the Woeginger
special-form classification in :mod:`repro.scheduling.precedence` and
any future consumer share the exact same cutoff.
"""

from __future__ import annotations

import math

__all__ = ["UNIT_TOLERANCE", "is_close", "is_unit", "is_zero"]

#: Absolute tolerance for classifying values produced by float
#: arithmetic against exact constants (0.0, 1.0).  Tight enough that
#: genuinely distinct LP/strategy values never collapse, loose enough to
#: absorb accumulated rounding from sums of machine-epsilon errors.
UNIT_TOLERANCE = 1e-9


def is_close(value: float, target: float) -> bool:
    """Whether *value* equals *target* within :data:`UNIT_TOLERANCE`."""
    return math.isclose(value, target, abs_tol=UNIT_TOLERANCE)


def is_unit(value: float) -> bool:
    """Whether *value* is 1.0 within :data:`UNIT_TOLERANCE`."""
    return is_close(value, 1.0)


def is_zero(value: float) -> bool:
    """Whether *value* is 0.0 within :data:`UNIT_TOLERANCE`."""
    return is_close(value, 0.0)
