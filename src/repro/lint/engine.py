"""The rule engine: registry, per-file dispatch, path discovery.

Rules are small classes registered with :func:`register_rule`; each gets
the parsed :class:`ModuleContext` for one file and yields
:class:`~repro.lint.findings.Finding` objects.  The engine owns
everything rules should not care about: file discovery, module-name
derivation, config/select filtering, suppression comments, and the
parse-error finding (``E001``) for files that are not valid Python.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from ..exceptions import LintError
from .config import LintConfig
from .findings import Finding, sort_findings
from .suppressions import SuppressionTable, collect_suppressions

__all__ = [
    "ModuleContext",
    "Rule",
    "register_rule",
    "registered_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "module_name_for",
]

#: Rule id for files that fail to parse — always reported, never selectable off.
PARSE_ERROR_ID = "E001"

_RULE_ID_PATTERN = re.compile(r"^[A-Z]\d{3}$")


@dataclass(frozen=True)
class ModuleContext:
    """Everything a rule may inspect about one source file."""

    #: Path as given by the caller (kept for finding output).
    path: str
    #: Dotted module name (``repro.core.qpp``), or the bare stem for
    #: files outside any package.
    module: str
    #: Raw source text.
    source: str
    #: Parsed module body.
    tree: ast.Module
    #: Active configuration.
    config: LintConfig
    #: Parsed inline suppressions (consulted by the engine, not rules).
    suppressions: SuppressionTable = field(default_factory=SuppressionTable)

    def in_packages(self, prefixes: Sequence[str]) -> bool:
        """Whether this module falls under any dotted *prefixes*."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """Build a finding anchored at *node* in this file."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.path, line=line, column=column, rule_id=rule_id, message=message
        )


class Rule(ABC):
    """One invariant check.  Subclasses set ``id``/``name``/``summary``."""

    id: str
    name: str
    summary: str

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Yield findings for *ctx*; must not mutate it."""


_REGISTRY: dict[str, Rule] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    instance = cls()
    if not _RULE_ID_PATTERN.match(getattr(instance, "id", "")):
        raise LintError(f"rule {cls.__name__} has invalid id {instance.id!r}")
    if instance.id in _REGISTRY:
        raise LintError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def registered_rules() -> dict[str, Rule]:
    """A snapshot of the rule registry, keyed by rule id."""
    return dict(_REGISTRY)


def module_name_for(path: Path) -> str:
    """Derive the dotted module name of *path* from ``__init__.py`` files.

    Walks upward while package markers are present, so
    ``src/repro/core/qpp.py`` maps to ``repro.core.qpp`` regardless of
    where the source tree is mounted.  ``__init__.py`` maps to its
    package name.  Files outside any package map to their bare stem.
    """
    resolved = path.resolve()
    parts: list[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    directory = resolved.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        directory = directory.parent
    if not parts:
        # an __init__.py sitting outside any package
        parts.append(resolved.parent.name)
    return ".".join(reversed(parts))


def _is_excluded(path: Path, config: LintConfig) -> bool:
    return any(
        fnmatch.fnmatch(part, pattern)
        for part in path.parts
        for pattern in config.exclude
    )


def iter_python_files(
    paths: Sequence[Path | str], config: LintConfig
) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"path {str(path)!r} does not exist")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if _is_excluded(candidate, config) or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint an in-memory source string.

    *module* overrides the dotted module name used for package-scoped
    rules (R001/R006/R007); it defaults to the path stem, which places
    anonymous snippets outside every package.
    """
    active_config = config if config is not None else LintConfig()
    if module is None:
        module = Path(path).stem
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        column = (exc.offset if exc.offset is not None else 1) or 1
        return [
            Finding(
                path=path,
                line=line,
                column=column,
                rule_id=PARSE_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        config=active_config,
        suppressions=collect_suppressions(source),
    )
    findings: list[Finding] = []
    for rule_id in sorted(_REGISTRY):
        if not active_config.wants(rule_id):
            continue
        for finding in _REGISTRY[rule_id].check(ctx):
            if not ctx.suppressions.is_suppressed(finding.rule_id, finding.line):
                findings.append(finding)
    return sort_findings(findings)


def lint_file(path: Path | str, config: LintConfig | None = None) -> list[Finding]:
    """Lint one file from disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {str(file_path)!r}: {exc}") from exc
    return lint_source(
        source,
        path=str(path),
        module=module_name_for(file_path),
        config=config,
    )


def lint_paths(
    paths: Sequence[Path | str], config: LintConfig | None = None
) -> list[Finding]:
    """Lint files and directories (recursively); the main library entry."""
    active_config = config if config is not None else LintConfig()
    findings: list[Finding] = []
    for file_path in iter_python_files(paths, active_config):
        findings.extend(lint_file(file_path, active_config))
    return sort_findings(findings)
