"""The rule engine: registry, parse cache, per-file and whole-program dispatch.

Rules come in two shapes.  *File rules* (:class:`Rule`) get the parsed
:class:`ModuleContext` for one file and yield
:class:`~repro.lint.findings.Finding` objects.  *Program rules*
(:class:`ProgramRule`, the R100 series) see the whole package at once —
import graph, call graph, usage roots — through a
:class:`~repro.lint.interproc.ProgramContext`.

The engine owns everything rules should not care about: file discovery,
module-name derivation, config/select filtering, suppression comments,
and the parse-error finding (``E001``) for files that are not valid
Python.  All parsing funnels through one :class:`ParseCache`, so a
``lint --whole-program`` run (file rules + graph passes) reads and
parses each source file exactly once — asserted by the test suite.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from abc import ABC, abstractmethod
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import LintError
from .config import LintConfig
from .findings import Finding, sort_findings
from .suppressions import ALL_RULES, SuppressionTable, collect_suppressions

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from .cost_rules import CostContext
    from .costmodel import CostObservation
    from .dataflow_rules import DataflowContext
    from .effect_rules import EffectContext
    from .error_rules import ErrorContext
    from .interproc import ProgramContext

__all__ = [
    "CostRule",
    "DataflowRule",
    "EffectRule",
    "ErrorRule",
    "ModuleContext",
    "ParseCache",
    "ParsedFile",
    "ProgramRule",
    "Rule",
    "register_rule",
    "registered_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "iter_python_files",
    "module_name_for",
]

#: Rule id for files that fail to parse — always reported, never selectable off.
PARSE_ERROR_ID = "E001"
#: Rule id for suppression comments naming an unknown rule code — a typo
#: there silently suppresses nothing, so it is always reported, like E001.
SUPPRESSION_ERROR_ID = "E002"

_RULE_ID_PATTERN = re.compile(r"^[A-Z]\d{3}$")


@dataclass(frozen=True)
class ModuleContext:
    """Everything a file rule may inspect about one source file."""

    #: Path as given by the caller (kept for finding output).
    path: str
    #: Dotted module name (``repro.core.qpp``), or the bare stem for
    #: files outside any package.
    module: str
    #: Raw source text.
    source: str
    #: Parsed module body.
    tree: ast.Module
    #: Active configuration.
    config: LintConfig
    #: Parsed inline suppressions (consulted by the engine, not rules).
    suppressions: SuppressionTable = field(default_factory=SuppressionTable)

    def in_packages(self, prefixes: Sequence[str]) -> bool:
        """Whether this module falls under any dotted *prefixes*."""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        """Build a finding anchored at *node* in this file."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.path, line=line, column=column, rule_id=rule_id, message=message
        )


@dataclass(frozen=True)
class ParsedFile:
    """One cached parse: source text, AST (or the parse error), suppressions."""

    #: Path as given by the caller at first parse (kept for finding output).
    path: str
    #: Resolved filesystem path (the cache key).
    resolved: Path
    #: Dotted module name derived from ``__init__.py`` markers.
    module: str
    #: Whether this file is a package ``__init__.py``.
    is_package: bool
    #: Raw source text.
    source: str
    #: Parsed module body, or ``None`` when the file does not parse.
    tree: ast.Module | None
    #: The ``E001`` finding when the file does not parse.
    parse_error: Finding | None
    #: Parsed inline suppressions.
    suppressions: SuppressionTable
    #: Modification time captured at parse (cache-invalidation key).
    mtime_ns: int

    def context(self, config: LintConfig) -> ModuleContext:
        """A :class:`ModuleContext` view of this parse under *config*."""
        if self.tree is None:
            raise LintError(f"{self.path!r} failed to parse; no context available")
        return ModuleContext(
            path=self.path,
            module=self.module,
            source=self.source,
            tree=self.tree,
            config=config,
            suppressions=self.suppressions,
        )


class ParseCache:
    """Parse each source file exactly once per ``(path, mtime)``.

    Shared by the per-file rules, the whole-program graph passes, and
    ``repro deps``; pass one instance through a run and every file is
    read and parsed a single time.  A changed modification time
    invalidates the entry, so long-lived caches stay correct across
    edits.
    """

    def __init__(self) -> None:
        self._entries: dict[Path, ParsedFile] = {}
        #: How many times each file was actually parsed (test hook for the
        #: parse-exactly-once contract).
        self.parse_counts: dict[Path, int] = {}

    @property
    def parse_count(self) -> int:
        """Total number of ``ast.parse`` invocations performed."""
        return sum(self.parse_counts.values())

    def parsed(self, path: Path | str) -> ParsedFile:
        """The cached parse of *path*, re-parsing only when it changed."""
        display = str(path)
        resolved = Path(path).resolve()
        try:
            mtime_ns = resolved.stat().st_mtime_ns
        except OSError as exc:
            raise LintError(f"cannot stat {display!r}: {exc}") from exc
        entry = self._entries.get(resolved)
        if entry is not None and entry.mtime_ns == mtime_ns:
            return entry
        try:
            source = resolved.read_text(encoding="utf-8")
        except OSError as exc:
            raise LintError(f"cannot read {display!r}: {exc}") from exc
        entry = _parse_file(
            source,
            display=display,
            resolved=resolved,
            module=module_name_for(resolved),
            is_package=resolved.name == "__init__.py",
            mtime_ns=mtime_ns,
        )
        self._entries[resolved] = entry
        self.parse_counts[resolved] = self.parse_counts.get(resolved, 0) + 1
        return entry


def _parse_file(
    source: str,
    *,
    display: str,
    resolved: Path,
    module: str,
    is_package: bool,
    mtime_ns: int,
) -> ParsedFile:
    tree: ast.Module | None
    error: Finding | None
    try:
        tree = ast.parse(source)
        error = None
    except SyntaxError as exc:
        tree = None
        line = exc.lineno if exc.lineno is not None else 1
        column = (exc.offset if exc.offset is not None else 1) or 1
        error = Finding(
            path=display,
            line=line,
            column=column,
            rule_id=PARSE_ERROR_ID,
            message=f"file does not parse: {exc.msg}",
        )
    return ParsedFile(
        path=display,
        resolved=resolved,
        module=module,
        is_package=is_package,
        source=source,
        tree=tree,
        parse_error=error,
        suppressions=collect_suppressions(source),
        mtime_ns=mtime_ns,
    )


class Rule(ABC):
    """One per-file invariant check.  Subclasses set ``id``/``name``/``summary``."""

    id: str
    name: str
    summary: str

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Yield findings for *ctx*; must not mutate it."""


class ProgramRule(ABC):
    """One whole-program invariant; sees every module plus the graphs.

    Program rules run only under ``lint --whole-program`` and receive a
    :class:`~repro.lint.interproc.ProgramContext` holding the shared
    parsed files, the module import graph, and the call graph.
    """

    id: str
    name: str
    summary: str

    @abstractmethod
    def check_program(self, program: "ProgramContext") -> Iterable[Finding]:
        """Yield findings for the whole program; must not mutate it."""


class DataflowRule(ABC):
    """One dataflow/contract invariant (the R200 series).

    Deliberately *not* a :class:`ProgramRule` subclass: the whole-program
    dispatch must not pick these up, because they additionally need the
    CFG/abstract-interpretation substrate, which only ``lint
    --dataflow`` builds (on top of the same
    :class:`~repro.lint.interproc.ProgramContext`).
    """

    id: str
    name: str
    summary: str

    @abstractmethod
    def check_dataflow(self, context: "DataflowContext") -> Iterable[Finding]:
        """Yield findings for the analyzed program; must not mutate it."""


class EffectRule(ABC):
    """One effect/concurrency-safety invariant (the R400 series).

    Like :class:`DataflowRule`, deliberately not a :class:`ProgramRule`
    subclass: these rules additionally need the globals census and the
    interprocedural effect fixpoint, which only ``lint --effects``
    builds (on top of the same
    :class:`~repro.lint.interproc.ProgramContext`).
    """

    id: str
    name: str
    summary: str

    @abstractmethod
    def check_effects(self, context: "EffectContext") -> Iterable[Finding]:
        """Yield findings for the analyzed program; must not mutate it."""


class CostRule(ABC):
    """One asymptotic-cost invariant (the R500 series).

    Like :class:`DataflowRule`, deliberately not a :class:`ProgramRule`
    subclass: these rules additionally need the symbolic cost fixpoint
    and the solver-reachability set, which only ``lint --cost`` builds
    (on top of the same :class:`~repro.lint.interproc.ProgramContext`).
    """

    id: str
    name: str
    summary: str

    @abstractmethod
    def check_cost(self, context: "CostContext") -> Iterable[Finding]:
        """Yield findings for the analyzed program; must not mutate it."""


class ErrorRule(ABC):
    """One exception-flow / resource-safety invariant (the R600 series).

    Like :class:`DataflowRule`, deliberately not a :class:`ProgramRule`
    subclass: these rules additionally need the interprocedural escape
    fixpoint, the project exception hierarchy and the resource-lifecycle
    report, which only ``lint --errors`` builds (on top of the same
    :class:`~repro.lint.interproc.ProgramContext`).
    """

    id: str
    name: str
    summary: str

    @abstractmethod
    def check_errors(self, context: "ErrorContext") -> Iterable[Finding]:
        """Yield findings for the analyzed program; must not mutate it."""


AnyRule = Rule | ProgramRule | DataflowRule | EffectRule | CostRule | ErrorRule

_REGISTRY: dict[str, AnyRule] = {}


def register_rule(cls: type[AnyRule]) -> type[AnyRule]:
    """Class decorator adding a file, program or dataflow rule to the registry."""
    instance = cls()
    if not _RULE_ID_PATTERN.match(getattr(instance, "id", "")):
        raise LintError(f"rule {cls.__name__} has invalid id {instance.id!r}")
    if instance.id in _REGISTRY:
        raise LintError(f"duplicate rule id {instance.id}")
    _REGISTRY[instance.id] = instance
    return cls


def registered_rules() -> dict[str, AnyRule]:
    """A snapshot of the rule registry, keyed by rule id."""
    return dict(_REGISTRY)


def module_name_for(path: Path) -> str:
    """Derive the dotted module name of *path* from ``__init__.py`` files.

    Walks upward while package markers are present, so
    ``src/repro/core/qpp.py`` maps to ``repro.core.qpp`` regardless of
    where the source tree is mounted.  ``__init__.py`` maps to its
    package name.  Files outside any package map to their bare stem.
    """
    resolved = path.resolve()
    parts: list[str] = [] if resolved.stem == "__init__" else [resolved.stem]
    directory = resolved.parent
    while (directory / "__init__.py").is_file():
        parts.append(directory.name)
        directory = directory.parent
    if not parts:
        # an __init__.py sitting outside any package
        parts.append(resolved.parent.name)
    return ".".join(reversed(parts))


def _is_excluded(path: Path, config: LintConfig) -> bool:
    return any(
        fnmatch.fnmatch(part, pattern)
        for part in path.parts
        for pattern in config.exclude
    )


def iter_python_files(
    paths: Sequence[Path | str], config: LintConfig
) -> Iterator[Path]:
    """Expand files/directories into the ``.py`` files to lint, sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise LintError(f"path {str(path)!r} does not exist")
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if _is_excluded(candidate, config) or candidate in seen:
                continue
            seen.add(candidate)
            yield candidate


def _run_file_rules(
    ctx: ModuleContext, suppressed_sink: list[Finding] | None = None
) -> list[Finding]:
    """Run every selected per-file rule against one module context."""
    findings: list[Finding] = []
    for rule_id in sorted(_REGISTRY):
        rule = _REGISTRY[rule_id]
        if not isinstance(rule, Rule) or not ctx.config.wants(rule_id):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressions.is_suppressed(finding.rule_id, finding.line):
                findings.append(finding)
            elif suppressed_sink is not None:
                suppressed_sink.append(finding)
    return findings


def _suppression_findings(path: str, table: SuppressionTable) -> list[Finding]:
    """``E002`` findings for suppression directives naming unknown codes."""
    known = set(_REGISTRY) | {PARSE_ERROR_ID, SUPPRESSION_ERROR_ID}
    return [
        Finding(
            path=path,
            line=line,
            column=1,
            rule_id=SUPPRESSION_ERROR_ID,
            message=(
                f"suppression names unknown rule code {code!r}; it silences "
                "nothing — fix the code or drop it"
            ),
        )
        for line, code in table.entries
        if code != ALL_RULES and code not in known
    ]


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig | None = None,
) -> list[Finding]:
    """Lint an in-memory source string (per-file rules only).

    *module* overrides the dotted module name used for package-scoped
    rules (R001/R006/R007); it defaults to the path stem, which places
    anonymous snippets outside every package.
    """
    active_config = config if config is not None else LintConfig()
    if module is None:
        module = Path(path).stem
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno if exc.lineno is not None else 1
        column = (exc.offset if exc.offset is not None else 1) or 1
        return [
            Finding(
                path=path,
                line=line,
                column=column,
                rule_id=PARSE_ERROR_ID,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = ModuleContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        config=active_config,
        suppressions=collect_suppressions(source),
    )
    return sort_findings(
        _run_file_rules(ctx) + _suppression_findings(path, ctx.suppressions)
    )


def lint_file(path: Path | str, config: LintConfig | None = None) -> list[Finding]:
    """Lint one file from disk (per-file rules only)."""
    active_config = config if config is not None else LintConfig()
    parsed = ParseCache().parsed(path)
    if parsed.parse_error is not None:
        return [parsed.parse_error]
    return sort_findings(
        _run_file_rules(parsed.context(active_config))
        + _suppression_findings(parsed.path, parsed.suppressions)
    )


def lint_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
    *,
    whole_program: bool = False,
    dataflow: bool = False,
    effects: bool = False,
    cost: bool = False,
    errors: bool = False,
    cost_telemetry: "Sequence[CostObservation]" = (),
    cache: ParseCache | None = None,
    suppressed_sink: list[Finding] | None = None,
) -> list[Finding]:
    """Lint files and directories (recursively); the main library entry.

    With ``whole_program=True`` the R100-series graph rules also run:
    the same parsed files feed a module import graph and a call graph
    (see :mod:`repro.lint.interproc`), so each file is parsed exactly
    once per run.  ``dataflow=True`` additionally builds the CFG /
    abstract-interpretation substrate and runs the R200-series contract
    rules (see :mod:`repro.lint.dataflow_rules`); ``effects=True`` the
    globals census plus effect fixpoint and the R400-series rules (see
    :mod:`repro.lint.effect_rules`); ``cost=True`` the symbolic cost
    fixpoint and the R500-series rules (see
    :mod:`repro.lint.cost_rules`), with *cost_telemetry* feeding R504's
    measured-scaling check; ``errors=True`` the exception-escape
    fixpoint plus resource-lifecycle report and the R600-series rules
    (see :mod:`repro.lint.error_rules`).  Each implies the program
    context, but not the R100 rules themselves; any combination of tier
    flags shares the single program context and parse pass.  Pass a
    long-lived *cache* to reuse parses across runs; entries invalidate
    when a file's mtime changes.  *suppressed_sink*, when given,
    collects the findings that inline suppressions silenced — SARIF
    output maps them to ``suppressions`` entries instead of dropping
    them.
    """
    active_config = config if config is not None else LintConfig()
    active_cache = cache if cache is not None else ParseCache()
    findings: list[Finding] = []
    parsed_files: list[ParsedFile] = []
    for file_path in iter_python_files(paths, active_config):
        parsed = active_cache.parsed(file_path)
        parsed_files.append(parsed)
        if parsed.parse_error is not None:
            findings.append(parsed.parse_error)
            continue
        findings.extend(
            _run_file_rules(parsed.context(active_config), suppressed_sink)
        )
        findings.extend(
            _suppression_findings(parsed.path, parsed.suppressions)
        )
    if whole_program or dataflow or effects or cost or errors:
        # Runtime import breaks the engine <-> interproc module cycle;
        # both live in the same layer so R100 stays satisfied.
        from .interproc import build_program_context

        program = build_program_context(
            parsed_files, active_config, cache=active_cache
        )

        def collect(produced: Iterable[Finding]) -> None:
            for finding in produced:
                if not program.is_suppressed(finding):
                    findings.append(finding)
                elif suppressed_sink is not None:
                    suppressed_sink.append(finding)

        def tier_rules(rule_type: type) -> "Iterator[AnyRule]":
            for rule_id in sorted(_REGISTRY):
                rule = _REGISTRY[rule_id]
                if isinstance(rule, rule_type) and active_config.wants(rule_id):
                    yield rule

        if whole_program:
            for rule in tier_rules(ProgramRule):
                collect(rule.check_program(program))
        if dataflow:
            from .dataflow_rules import build_dataflow_context

            context = build_dataflow_context(
                program, cache=active_cache
            )
            for rule in tier_rules(DataflowRule):
                collect(rule.check_dataflow(context))
        if effects:
            from .effect_rules import build_effect_context

            effect_context = build_effect_context(program)
            for rule in tier_rules(EffectRule):
                collect(rule.check_effects(effect_context))
        if cost:
            from .cost_rules import build_cost_context

            cost_context = build_cost_context(
                program, telemetry=cost_telemetry
            )
            for rule in tier_rules(CostRule):
                collect(rule.check_cost(cost_context))
        if errors:
            from .error_rules import build_error_context

            error_context = build_error_context(program)
            for rule in tier_rules(ErrorRule):
                collect(rule.check_errors(error_context))
    return sort_findings(findings)
