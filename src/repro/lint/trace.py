"""Paper-theorem traceability (rule R204 and ``repro trace``).

The reproduction's ground truth is the theorem table in ``DESIGN.md``
("Headline results reproduced"): every row names a paper result (T1.2,
L3.1, Eq19, ...) and the modules that implement it.  Source files and
tests carry ``# paper: Thm 1.2``-style anchor comments.  This module
parses both sides and builds the bi-directional matrix:

* every normalizable theorem row must have at least one *implementation*
  anchor (under ``src``) and one *test* anchor (under the usage roots) —
  otherwise R204 reports the uncovered row;
* every anchor that names a theorem-shaped reference must resolve to a
  table row — otherwise R204 reports a stale/unknown anchor.

Section references like ``§3`` or ``App. A`` inside anchor comments are
context, not claims, and are ignored.  Table rows whose ID does not
normalize (the ``§6`` extensions row) are likewise out of scope.

``repro trace`` renders the matrix as aligned text, JSON (stable,
``version: 1``) or a markdown table suitable for embedding in README.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from collections.abc import Iterator, Mapping
from dataclasses import dataclass
from typing import Any

__all__ = [
    "TheoremEntry",
    "AnchorSite",
    "TraceMatrix",
    "normalize_reference",
    "parse_theorem_table",
    "scan_anchor_comments",
    "build_matrix",
    "render_matrix_text",
    "render_matrix_json",
    "render_matrix_markdown",
]

#: Canonical theorem identifiers: T1.2, L3.1, CA.1, TB.1, Eq19, ...
_CANONICAL = re.compile(r"^(?:[TLC][0-9A-Z]*\.[0-9]+|Eq[0-9]+)$")
_REFERENCE_FORMS: tuple[tuple[re.Pattern[str], str], ...] = (
    (re.compile(r"^(?:thm|theorem)\.?\s+([0-9A-Z]+(?:\.[0-9]+)?)$", re.I), "T"),
    (re.compile(r"^lemma\.?\s+([0-9A-Z]+(?:\.[0-9]+)?)$", re.I), "L"),
    (re.compile(r"^claim\.?\s+([0-9A-Z]+(?:\.[0-9]+)?)$", re.I), "C"),
    (re.compile(r"^eq\.?\s*\(?([0-9]+)\)?$", re.I), "Eq"),
)
#: Parts of an anchor that are context rather than theorem claims.
_CONTEXT = re.compile(r"^(?:§.*|sec(?:tion)?\.?\s.*|app(?:endix)?\.?\s.*|p+\.\s.*)$", re.I)

_ANCHOR_COMMENT = re.compile(r"^#\s*paper:\s*(?P<refs>.+?)\s*$")
_BACKTICKED = re.compile(r"`([A-Za-z_][\w.()\s]*?)`")


def normalize_reference(text: str) -> str | None:
    """Canonical theorem ID for one reference, or ``None``.

    ``Thm 1.2`` / ``Theorem 1.2`` / ``T1.2`` -> ``T1.2``;
    ``Lemma 3.1`` -> ``L3.1``; ``Claim A.1`` -> ``CA.1``;
    ``Thm B.1`` -> ``TB.1``; ``eq. (19)`` / ``Eq 19`` -> ``Eq19``.
    """
    candidate = text.strip()
    if _CANONICAL.match(candidate):
        return candidate
    for pattern, prefix in _REFERENCE_FORMS:
        matched = pattern.match(candidate)
        if matched is not None:
            return f"{prefix}{matched.group(1).upper() if prefix != 'Eq' else matched.group(1)}"
    return None


def is_context_reference(text: str) -> bool:
    """True for parts like ``§3`` that anchor context, not a theorem."""
    return bool(_CONTEXT.match(text.strip()))


@dataclass(frozen=True)
class TheoremEntry:
    """One normalizable row of the design-doc theorem table."""

    ident: str
    statement: str
    paper_ref: str
    modules: tuple[str, ...]
    line: int


@dataclass(frozen=True)
class AnchorSite:
    """One theorem reference inside a ``# paper:`` comment."""

    path: str
    line: int
    reference: str
    ident: str | None


def _split_cells(row: str) -> list[str]:
    """Split a markdown table row on unescaped pipes.

    ``\\|`` is the standard markdown escape for a literal pipe inside a
    cell (needed e.g. for scheduling notation like ``1|prec|ΣwjCj``).
    """
    cells = re.split(r"(?<!\\)\|", row.strip().strip("|"))
    return [cell.replace("\\|", "|").strip() for cell in cells]


def parse_theorem_table(design_text: str) -> tuple[TheoremEntry, ...]:
    """Extract normalizable theorem rows from every markdown table."""
    entries: list[TheoremEntry] = []
    seen: set[str] = set()
    for number, line in enumerate(design_text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            continue
        cells = _split_cells(stripped)
        if len(cells) < 2 or set(cells[0]) <= {"-", ":", " "}:
            continue
        ident = normalize_reference(cells[0])
        if ident is None or ident in seen:
            continue
        seen.add(ident)
        modules = tuple(
            match.split("(")[0].strip()
            for match in _BACKTICKED.findall(cells[-1])
        )
        entries.append(
            TheoremEntry(
                ident=ident,
                statement=cells[1] if len(cells) > 1 else "",
                paper_ref=cells[2] if len(cells) > 2 else "",
                modules=modules,
                line=number,
            )
        )
    return tuple(entries)


def _iter_comments(source: str) -> Iterator[tuple[int, str]]:
    """(line, text) of every comment, tolerant of tokenize failures."""
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for number, line in enumerate(source.splitlines(), start=1):
            stripped = line.strip()
            if stripped.startswith("#"):
                yield number, stripped


def scan_anchor_comments(source: str, path: str) -> tuple[AnchorSite, ...]:
    """Every theorem-shaped reference in ``# paper:`` comments of *source*."""
    sites: list[AnchorSite] = []
    for line, comment in _iter_comments(source):
        matched = _ANCHOR_COMMENT.match(comment.strip())
        if matched is None:
            continue
        for part in re.split(r"[,;]", matched.group("refs")):
            part = part.strip()
            if not part or is_context_reference(part):
                continue
            sites.append(
                AnchorSite(
                    path=path,
                    line=line,
                    reference=part,
                    ident=normalize_reference(part),
                )
            )
    return tuple(sites)


@dataclass(frozen=True)
class TraceMatrix:
    """The theorem -> implementation -> test coverage matrix."""

    design_path: str
    entries: tuple[TheoremEntry, ...]
    implementation: Mapping[str, tuple[AnchorSite, ...]]
    tests: Mapping[str, tuple[AnchorSite, ...]]
    #: Anchors whose theorem-shaped reference matches no table row.
    unknown: tuple[AnchorSite, ...]

    def covered(self, ident: str) -> bool:
        return bool(self.implementation.get(ident)) and bool(
            self.tests.get(ident)
        )

    def coverage_counts(self) -> tuple[int, int]:
        covered = sum(1 for entry in self.entries if self.covered(entry.ident))
        return covered, len(self.entries)


def build_matrix(
    design_text: str,
    design_path: str,
    implementation_sources: Mapping[str, str],
    test_sources: Mapping[str, str],
) -> TraceMatrix:
    """Parse the table and both anchor sets into a :class:`TraceMatrix`.

    *implementation_sources* and *test_sources* map display paths to file
    contents (the caller decides what counts as which side; the lint rule
    uses the linted files vs the configured usage roots).
    """
    entries = parse_theorem_table(design_text)
    known = {entry.ident for entry in entries}
    implementation: dict[str, list[AnchorSite]] = {}
    tests: dict[str, list[AnchorSite]] = {}
    unknown: list[AnchorSite] = []
    for bucket, sources in (
        (implementation, implementation_sources),
        (tests, test_sources),
    ):
        for path in sorted(sources):
            for site in scan_anchor_comments(sources[path], path):
                if site.ident is not None and site.ident in known:
                    bucket.setdefault(site.ident, []).append(site)
                else:
                    unknown.append(site)
    return TraceMatrix(
        design_path=design_path,
        entries=entries,
        implementation={k: tuple(v) for k, v in implementation.items()},
        tests={k: tuple(v) for k, v in tests.items()},
        unknown=tuple(sorted(unknown, key=lambda s: (s.path, s.line))),
    )


def _sites_cell(sites: tuple[AnchorSite, ...] | None) -> str:
    if not sites:
        return "—"
    shown = {f"{site.path}:{site.line}" for site in sites}
    return ", ".join(sorted(shown))


def render_matrix_text(matrix: TraceMatrix) -> str:
    """Aligned text rendering (the default for ``repro trace``)."""
    covered, total = matrix.coverage_counts()
    rows = [("theorem", "paper ref", "implementation", "tests", "ok")]
    for entry in matrix.entries:
        rows.append(
            (
                entry.ident,
                entry.paper_ref,
                _sites_cell(matrix.implementation.get(entry.ident)),
                _sites_cell(matrix.tests.get(entry.ident)),
                "yes" if matrix.covered(entry.ident) else "NO",
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    lines.insert(1, "  ".join("-" * width for width in widths))
    lines.append("")
    lines.append(f"covered: {covered}/{total} theorems ({matrix.design_path})")
    for site in matrix.unknown:
        lines.append(
            f"unknown anchor {site.reference!r} at {site.path}:{site.line}"
        )
    return "\n".join(lines)


def render_matrix_json(matrix: TraceMatrix) -> str:
    covered, total = matrix.coverage_counts()
    payload: dict[str, Any] = {
        "version": 1,
        "design": matrix.design_path,
        "coverage": {"covered": covered, "total": total},
        "theorems": [
            {
                "id": entry.ident,
                "paper_ref": entry.paper_ref,
                "modules": list(entry.modules),
                "implementation": [
                    {"path": site.path, "line": site.line}
                    for site in matrix.implementation.get(entry.ident, ())
                ],
                "tests": [
                    {"path": site.path, "line": site.line}
                    for site in matrix.tests.get(entry.ident, ())
                ],
                "covered": matrix.covered(entry.ident),
            }
            for entry in matrix.entries
        ],
        "unknown_anchors": [
            {"path": site.path, "line": site.line, "reference": site.reference}
            for site in matrix.unknown
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)


def render_matrix_markdown(matrix: TraceMatrix) -> str:
    """A markdown table for embedding in README."""
    lines = [
        "| Theorem | Paper ref | Implementation | Tests | Covered |",
        "|---------|-----------|----------------|-------|---------|",
    ]
    for entry in matrix.entries:
        modules = ", ".join(f"`{module}`" for module in entry.modules)
        implementation = "✓" if matrix.implementation.get(entry.ident) else "✗"
        tested = "✓" if matrix.tests.get(entry.ident) else "✗"
        lines.append(
            f"| {entry.ident} | {entry.paper_ref} | "
            f"{modules or '—'} {implementation} | {tested} | "
            f"{'✓' if matrix.covered(entry.ident) else '✗'} |"
        )
    return "\n".join(lines)
