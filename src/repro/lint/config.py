"""Linter configuration: code defaults overridden by ``pyproject.toml``.

Configuration lives in the ``[tool.repro-lint]`` table.  Every key is
optional; the in-code defaults encode this repository's conventions so
the linter is useful with no configuration at all::

    [tool.repro-lint]
    select = ["R001", "R002"]          # run only these rules
    ignore = ["R005"]                  # never run these rules
    exclude = ["*.egg-info"]           # path components to skip
    validated-packages = ["repro.core"]
    checker-names = ["my_checker"]     # extra accepted checker callees
    banned-exceptions = ["ValueError"] # replaces the default denylist
    print-allowed = ["repro/cli.py"]   # replaces the default allowlist
    exempt = ["R001:repro.core.x.fn"]  # per-symbol exemptions
    layers = [["repro.exceptions"], ["repro.core"]]  # R100 layer order
    entry-roots = ["repro.cli"]        # call-graph roots (R102/R104)
    usage-roots = ["tests"]            # API-usage scan dirs (R104, R203/R204)
    design-doc = "DESIGN.md"           # theorem table source (R204)

TOML parsing uses :mod:`tomllib` (Python >= 3.11) and falls back to the
``tomli`` backport when present; with neither, the defaults are used and
any explicit ``--config`` request fails loudly.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any

from ..exceptions import LintError

__all__ = [
    "LintConfig",
    "load_config",
    "config_from_table",
    "merge_cli_options",
    "find_pyproject",
    "DEFAULT_CHECKER_NAMES",
    "DEFAULT_BANNED_EXCEPTIONS",
    "DEFAULT_LAYERS",
]

try:  # Python >= 3.11
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised only on Python 3.10
    try:
        import tomli as _toml  # type: ignore[no-redef]
    except ImportError:
        _toml = None  # type: ignore[assignment]

#: Checker callables accepted by R001, mirroring ``repro._validation.__all__``.
DEFAULT_CHECKER_NAMES = frozenset(
    {
        "require",
        "check_finite",
        "check_positive",
        "check_nonnegative",
        "check_probability",
        "check_probability_vector",
        "check_integer_in_range",
        "check_scale",
        "unique_items",
    }
)

#: Builtin exceptions R002 refuses in library raises.  ``TypeError`` and
#: ``NotImplementedError`` stay legal: per ``repro.exceptions`` they mark
#: programming errors, not library failures.
DEFAULT_BANNED_EXCEPTIONS = frozenset(
    {
        "ValueError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "OSError",
        "IOError",
        "StopIteration",
        "Exception",
        "BaseException",
    }
)


#: The repository's layered architecture, lowest layer first (R100).  A
#: module may import only its own or lower layers.  ``repro.lp`` sits
#: below ``repro.quorums`` because the Naor-Wool optimal-strategy LP in
#: ``quorums`` builds on the LP substrate, which itself depends only on
#: the foundation; the trailing bare ``"repro"`` entry places the root
#: package (and any not-yet-mapped submodule) in the top layer via
#: longest-prefix matching.
DEFAULT_LAYERS: tuple[tuple[str, ...], ...] = (
    ("repro.exceptions", "repro._validation", "repro._pareto", "repro._numeric"),
    ("repro.obs", "repro._results", "repro._compat", "repro.parallel", "repro.resilience"),
    ("repro.lp",),
    ("repro.network",),
    ("repro.quorums",),
    ("repro.gap", "repro.scheduling"),
    ("repro.core",),
    ("repro.serve",),
    ("repro.io", "repro.lint", "repro.analysis", "repro.experiments"),
    ("repro.cli", "repro.__main__", "repro"),
)


@dataclass(frozen=True)
class LintConfig:
    """Resolved linter settings (code defaults + ``pyproject.toml``)."""

    #: Rule ids to run; ``None`` means every registered rule.
    select: frozenset[str] | None = None
    #: Rule ids to skip even when selected.
    ignore: frozenset[str] = frozenset()
    #: fnmatch patterns; a file is skipped when any path component matches.
    exclude: tuple[str, ...] = ("*.egg-info", "__pycache__", ".git", ".venv", "build")
    #: Dotted package prefixes that count as "library code" (R006, R007).
    library_packages: tuple[str, ...] = ("repro",)
    #: Dotted package prefixes whose public functions must validate (R001).
    validated_packages: tuple[str, ...] = ("repro.core", "repro.quorums", "repro.gap")
    #: Callee names accepted as validation by R001.
    checker_names: frozenset[str] = DEFAULT_CHECKER_NAMES
    #: Callee-name regex also accepted as validation by R001.
    checker_pattern: str = r"^_?(check|validate)_|^require$"
    #: Builtin exception names R002 rejects.
    banned_exceptions: frozenset[str] = DEFAULT_BANNED_EXCEPTIONS
    #: Path suffixes (posix style) where R006 permits ``print``.
    print_allowed: tuple[str, ...] = (
        "repro/cli.py",
        "repro/analysis/reporting.py",
        "repro/lint/cli.py",
    )
    #: ``"RULE:dotted.qualified.name"`` entries exempted from that rule.
    #: R100 additionally accepts ``"R100:source.module->target.module"``.
    exempt: frozenset[str] = field(default_factory=frozenset)
    #: Layered architecture for R100, lowest layer first; each entry is a
    #: group of dotted module prefixes (longest prefix wins).  Empty
    #: disables the layering check.
    layers: tuple[tuple[str, ...], ...] = DEFAULT_LAYERS
    #: Modules whose functions seed call-graph reachability (R102) and
    #: whose references count as API usage (R104).
    entry_roots: tuple[str, ...] = ("repro.cli", "repro.__main__")
    #: Directories (relative to the project root) scanned for API usage
    #: by R104; missing directories are skipped.
    usage_roots: tuple[str, ...] = ("tests", "examples", "benchmarks")
    #: Markdown design document (relative to the project root) holding
    #: the theorem table that R204 / ``repro trace`` check against.
    design_doc: str = "DESIGN.md"
    #: Directory containing the ``pyproject.toml`` the config came from;
    #: set by :func:`load_config`, not configurable.  ``None`` restricts
    #: R104's usage scan to the in-package entry roots.
    project_root: str | None = None

    def wants(self, rule_id: str) -> bool:
        """Whether *rule_id* should run under select/ignore settings.

        Entries match exactly (``"R500"``) or as series prefixes when
        shorter than a full rule id (``"R5"`` selects every R500-series
        rule), so ``--select``/``--ignore`` can address whole tiers.
        """
        if _rule_matches(rule_id, self.ignore):
            return False
        return self.select is None or _rule_matches(rule_id, self.select)

    def is_exempt(self, rule_id: str, qualified_name: str) -> bool:
        """Whether *qualified_name* is exempted from *rule_id*."""
        return f"{rule_id}:{qualified_name}" in self.exempt


def _rule_matches(rule_id: str, entries: Iterable[str]) -> bool:
    """Whether *rule_id* matches any exact id or series prefix in *entries*.

    A full four-character id matches only itself; anything shorter acts
    as a prefix (``"R5"``, ``"R50"``), so select/ignore can address a
    whole rule series without enumerating it.
    """
    return any(
        rule_id == entry or (len(entry) < 4 and rule_id.startswith(entry))
        for entry in entries
    )


_KEY_MAP: Mapping[str, str] = {
    "select": "select",
    "ignore": "ignore",
    "exclude": "exclude",
    "library-packages": "library_packages",
    "validated-packages": "validated_packages",
    "checker-names": "checker_names",
    "checker-pattern": "checker_pattern",
    "banned-exceptions": "banned_exceptions",
    "print-allowed": "print_allowed",
    "exempt": "exempt",
    "layers": "layers",
    "entry-roots": "entry_roots",
    "usage-roots": "usage_roots",
    "design-doc": "design_doc",
}


def _coerce(name: str, value: Any) -> Any:
    """Coerce a raw TOML value to the type of the config field *name*."""
    kind = {f.name: f.type for f in fields(LintConfig)}[name]
    if name in {"checker_pattern", "design_doc"}:
        if not isinstance(value, str):
            raise LintError(f"repro-lint option {name!r} must be a string")
        return value
    if name == "layers":
        if not isinstance(value, list) or not all(
            isinstance(group, list) and all(isinstance(p, str) for p in group)
            for group in value
        ):
            raise LintError(
                "repro-lint option 'layers' must be a list of lists of "
                "module prefixes (lowest layer first)"
            )
        return tuple(tuple(group) for group in value)
    if not isinstance(value, list) or not all(isinstance(v, str) for v in value):
        raise LintError(f"repro-lint option {name!r} must be a list of strings")
    if "frozenset" in str(kind):
        return frozenset(value)
    return tuple(value)


def find_pyproject(start: Path) -> Path | None:
    """Locate the nearest ``pyproject.toml`` at or above *start*."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(
    pyproject: Path | None = None, *, search_from: Path | None = None
) -> LintConfig:
    """Build a :class:`LintConfig` from defaults plus ``pyproject.toml``.

    *pyproject* names the file explicitly (it must exist); otherwise the
    nearest ``pyproject.toml`` above *search_from* (default: the current
    directory) is used when present.  A missing TOML parser downgrades
    to pure defaults unless the file was requested explicitly.
    """
    explicit = pyproject is not None
    if pyproject is None:
        pyproject = find_pyproject(search_from if search_from is not None else Path("."))
    if pyproject is None:
        return LintConfig()
    if not pyproject.is_file():
        raise LintError(f"config file {str(pyproject)!r} does not exist")
    if _toml is None:  # pragma: no cover - only on Python 3.10 without tomli
        if explicit:
            raise LintError(
                "reading pyproject.toml requires tomllib (Python >= 3.11) "
                "or the tomli backport"
            )
        return LintConfig()
    with open(pyproject, "rb") as handle:
        try:
            document = _toml.load(handle)
        except _toml.TOMLDecodeError as exc:
            raise LintError(f"invalid TOML in {str(pyproject)!r}: {exc}") from exc
    table = document.get("tool", {}).get("repro-lint", {})
    if not isinstance(table, dict):
        raise LintError("[tool.repro-lint] must be a TOML table")
    config = config_from_table(table)
    # The pyproject location anchors R104's usage-root scan.
    return replace(config, project_root=str(pyproject.parent))


def config_from_table(table: Mapping[str, Any]) -> LintConfig:
    """Build a config from an already-parsed ``[tool.repro-lint]`` table."""
    overrides: dict[str, Any] = {}
    for key, value in table.items():
        if key not in _KEY_MAP:
            known = ", ".join(sorted(_KEY_MAP))
            raise LintError(f"unknown repro-lint option {key!r}; known: {known}")
        overrides[_KEY_MAP[key]] = _coerce(_KEY_MAP[key], value)
    return replace(LintConfig(), **overrides)


def merge_cli_options(
    config: LintConfig,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> LintConfig:
    """Apply ``--select`` / ``--ignore`` command-line overrides."""
    if select is not None:
        config = replace(config, select=frozenset(select))
    if ignore is not None:
        config = replace(config, ignore=config.ignore | frozenset(ignore))
    return config
