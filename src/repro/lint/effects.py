"""Interprocedural purity / side-effect inference and the parallel-safety
certificate.

Every module-level function of the analyzed program is classified by the
set of *effect kinds* it can perform:

==================  ====================================================
``reads-global``    reads module-level mutable state (inventory entry)
``writes-global``   mutates module-level state (rebind, mutator call,
                    item/attribute assignment)
``writes-metrics``  mutates :mod:`repro.obs` metric objects — split out
                    because the registry is fork-aware, so these writes
                    are safe under process fan-out
``ambient-rng``     draws from process-global randomness (``random.*``,
                    global ``numpy.random.*``, seedless ``default_rng()``)
``io``              reads or writes files / standard streams
``spawns``          starts processes, threads or pool workers
==================  ====================================================

A function with the empty effect set is *pure*.  Local effects are
extracted from each function's AST (using the
:mod:`repro.lint.globals_inventory` census for global attribution), then
propagated through the resolved call graph to a fixpoint, so cycles of
mutually recursive helpers converge.  The analysis is **optimistic about
unresolved callees**: method calls, builtins and third-party functions
are assumed effect-free (the same module-level-functions approximation
the call graph itself documents) — it proves what it can see and
``@effects`` declarations plus R400/R401 keep the visible part honest.

The inferred map feeds the R400-series rules
(:mod:`repro.lint.effect_rules`) and :func:`build_certificate`, which
emits the JSON **parallel-safety certificate** consumed by
:func:`repro.parallel.parallel_map`: every ``solve_*`` / ``optimal_*``
entry point plus every ``@effects``-declared function, each with its
inferred effect set and a ``parallel_safe`` verdict (effects within
:data:`PARALLEL_SAFE_EFFECTS`).
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from .._validation import EFFECT_KINDS
from .astutils import callee_name, dotted_name
from .callgraph import FunctionInfo
from .config import LintConfig
from .engine import ParseCache, iter_python_files
from .globals_inventory import GlobalsInventory, build_globals_inventory
from .interproc import ProgramContext, _in_packages, build_program_context

__all__ = [
    "EffectWitness",
    "FunctionEffects",
    "analyze_effects",
    "entry_point_names",
    "build_certificate",
    "build_certificate_for_paths",
    "validate_certificate",
    "render_certificate",
    "CERTIFICATE_KIND",
    "CERTIFICATE_VERSION",
    "PARALLEL_SAFE_EFFECTS",
    "ENTRY_POINT_PATTERN",
]

#: Document identifier of the emitted certificate.
CERTIFICATE_KIND = "repro-parallel-safety-certificate"
#: Schema version of the certificate document.
CERTIFICATE_VERSION = 1
#: Effects compatible with process fan-out: shared state is only read,
#: and metric writes land in the fork-aware registry (reset in each
#: child, so no counter bleed back or double counting).
PARALLEL_SAFE_EFFECTS = frozenset({"reads-global", "writes-metrics"})

#: Solver entry points covered by the certificate (mirrors R301).
ENTRY_POINT_PATTERN = re.compile(r"^(solve_|optimal_)")

#: Ambient stdlib-``random`` functions (module-global Mersenne state).
_STDLIB_RANDOM_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "expovariate", "seed", "getrandbits", "triangular",
    }
)

#: ``numpy.random`` attributes that are *not* ambient draws (types and
#: bit generators; mirrors R004's safe list).
_SAFE_NUMPY_RANDOM = frozenset(
    {
        "Generator", "BitGenerator", "SeedSequence", "PCG64", "PCG64DXSM",
        "Philox", "MT19937", "SFC64",
    }
)

#: Call targets that perform file/stream IO.
_IO_CALLEES = frozenset({"open", "input", "print"})
_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes", "mkdir",
     "unlink", "touch"}
)
_IO_DOTTED = frozenset(
    {"json.dump", "json.load", "np.save", "np.load", "np.savez",
     "numpy.save", "numpy.load", "numpy.savez"}
)

#: Call targets that start concurrent execution.
_SPAWN_CALLEES = frozenset(
    {"ProcessPoolExecutor", "ThreadPoolExecutor", "Pool", "Process",
     "Thread", "parallel_map", "run_in_executor"}
)
_SPAWN_DOTTED = frozenset({"os.fork", "os.system", "os.popen"})


@dataclass(frozen=True)
class EffectWitness:
    """Why a function carries one effect kind."""

    #: The effect kind this witness establishes.
    kind: str
    #: Qualified function whose body exhibits the effect directly.
    origin: str
    #: 1-based line of the originating site.
    line: int
    #: Human-readable description of the site.
    detail: str


@dataclass(frozen=True)
class FunctionEffects:
    """The inferred (and, if present, declared) effects of one function."""

    qualified: str
    #: Effects of the function's own body, by kind.
    local: Mapping[str, EffectWitness]
    #: Transitive effects (own body plus resolved callees), by kind.
    effects: Mapping[str, EffectWitness]
    #: Transitively written globals: ``(variable, writer function)``.
    global_writes: frozenset[tuple[str, str]]
    #: Declared effect set (``@effects``), ``None`` when undeclared;
    #: the empty set means declared pure.
    declared: frozenset[str] | None
    #: Line of the declaration decorator, when present.
    declared_line: int | None
    #: Malformed-declaration messages (unknown kinds, non-literal args).
    declared_problems: tuple[str, ...]

    @property
    def pure(self) -> bool:
        """Whether no effect was inferred (transitively)."""
        return not self.effects

    @property
    def parallel_safe(self) -> bool:
        """Whether the inferred effects permit process fan-out."""
        return frozenset(self.effects) <= PARALLEL_SAFE_EFFECTS

    def effect_names(self) -> tuple[str, ...]:
        """Sorted inferred kinds; ``("pure",)`` for the empty set."""
        return tuple(sorted(self.effects)) if self.effects else ("pure",)


def _declared_effects(
    info: FunctionInfo,
) -> tuple[frozenset[str] | None, int | None, tuple[str, ...]]:
    """Parse an ``@effects(...)`` decorator off one function, statically."""
    for decorator in info.node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.rsplit(".", 1)[-1] != "effects":
            continue
        problems: list[str] = []
        kinds: set[str] = set()
        for argument in decorator.args:
            if isinstance(argument, ast.Constant) and isinstance(
                argument.value, str
            ):
                if argument.value in EFFECT_KINDS:
                    kinds.add(argument.value)
                else:
                    problems.append(
                        f"unknown effect kind {argument.value!r}"
                    )
            else:
                problems.append(
                    "effect kinds must be string literals"
                )
        if decorator.keywords:
            problems.append("effects() takes no keyword arguments")
        if not kinds and not problems:
            problems.append("effects() declares no kinds")
        if "pure" in kinds and len(kinds) > 1:
            problems.append(
                "effects('pure') cannot be combined with other kinds"
            )
        declared = frozenset() if kinds == {"pure"} else frozenset(kinds)
        return declared, decorator.lineno, tuple(problems)
    return None, None, ()


def _numpy_random_imports(tree: ast.Module) -> dict[str, str]:
    """Names imported from ``numpy.random`` at module level."""
    imported: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
            for alias in node.names:
                imported[alias.asname or alias.name] = alias.name
    return imported


def _imports_stdlib_random(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(alias.name == "random" for alias in node.names):
                return True
    return False


def _rng_witness(
    node: ast.Call,
    numpy_imports: Mapping[str, str],
    has_stdlib_random: bool,
) -> str | None:
    """A description of *node* as an ambient-RNG draw, or ``None``."""
    seedless = not node.args and not node.keywords
    dotted = dotted_name(node.func)
    if dotted is not None:
        parts = dotted.split(".")
        if (
            len(parts) == 3
            and parts[0] in ("np", "numpy")
            and parts[1] == "random"
            and parts[2] not in _SAFE_NUMPY_RANDOM
        ):
            if parts[2] != "default_rng" or seedless:
                return f"{dotted}() draws from process-global numpy state"
        if (
            has_stdlib_random
            and len(parts) == 2
            and parts[0] == "random"
            and parts[1] in _STDLIB_RANDOM_FUNCS
        ):
            return f"{dotted}() uses the stdlib random module state"
    if isinstance(node.func, ast.Name) and node.func.id in numpy_imports:
        original = numpy_imports[node.func.id]
        if original not in _SAFE_NUMPY_RANDOM and (
            original != "default_rng" or seedless
        ):
            return (
                f"{node.func.id}() (numpy.random.{original}) is an "
                "ambient draw"
            )
    return None


def _io_witness(node: ast.Call) -> str | None:
    name = callee_name(node)
    dotted = dotted_name(node.func)
    if isinstance(node.func, ast.Name) and name in _IO_CALLEES:
        return f"{name}() performs IO"
    if dotted is not None:
        if dotted in _IO_DOTTED or dotted.startswith(("sys.stdout", "sys.stderr")):
            return f"{dotted}() performs IO"
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _IO_METHODS
    ):
        return f".{node.func.attr}() performs filesystem IO"
    return None


def _spawn_witness(node: ast.Call) -> str | None:
    name = callee_name(node)
    dotted = dotted_name(node.func)
    if name in _SPAWN_CALLEES:
        return f"{dotted or name}() starts concurrent workers"
    if dotted is not None:
        if dotted in _SPAWN_DOTTED or dotted.startswith("subprocess."):
            return f"{dotted}() spawns a process"
    return None


def _local_effects(
    info: FunctionInfo,
    tree: ast.Module,
    inventory: GlobalsInventory,
) -> tuple[dict[str, EffectWitness], set[tuple[str, str]]]:
    """Effects visible in one function's own body (nested defs included —
    their effects manifest when the closure runs, so counting them is the
    conservative choice)."""
    witnesses: dict[str, EffectWitness] = {}
    writes: set[tuple[str, str]] = set()

    def record(kind: str, line: int, detail: str) -> None:
        if kind not in witnesses:
            witnesses[kind] = EffectWitness(
                kind=kind, origin=info.qualified, line=line, detail=detail
            )

    for access in inventory.accesses_by(info.qualified):
        variable = inventory.variable(access.variable)
        if access.write:
            kind = (
                "writes-metrics"
                if variable is not None and variable.kind == "metric"
                else "writes-global"
            )
            record(kind, access.line, access.detail)
            writes.add((access.variable, info.qualified))
        else:
            record("reads-global", access.line, access.detail)

    numpy_imports = _numpy_random_imports(tree)
    has_stdlib_random = _imports_stdlib_random(tree)
    for node in ast.walk(info.node):
        if not isinstance(node, ast.Call):
            continue
        rng = _rng_witness(node, numpy_imports, has_stdlib_random)
        if rng is not None:
            record("ambient-rng", node.lineno, rng)
        io_detail = _io_witness(node)
        if io_detail is not None:
            record("io", node.lineno, io_detail)
        spawn = _spawn_witness(node)
        if spawn is not None:
            record("spawns", node.lineno, spawn)

    return witnesses, writes


def analyze_effects(
    program: ProgramContext,
    inventory: GlobalsInventory | None = None,
) -> dict[str, FunctionEffects]:
    """Infer the effect set of every module-level function.

    Local effects are unioned along resolved call edges until a fixpoint
    is reached (monotone over a finite lattice, so termination is
    guaranteed even for call cycles).  Each propagated kind keeps the
    witness of its *origin* function for attributable findings.
    """
    if inventory is None:
        inventory = build_globals_inventory(program)

    local: dict[str, dict[str, EffectWitness]] = {}
    writes: dict[str, set[tuple[str, str]]] = {}
    declared: dict[
        str, tuple[frozenset[str] | None, int | None, tuple[str, ...]]
    ] = {}
    for qualified, info in program.calls.functions.items():
        parsed = program.files.get(info.module)
        tree = parsed.tree if parsed is not None and parsed.tree else ast.Module(
            body=[], type_ignores=[]
        )
        local[qualified], function_writes = _local_effects(
            info, tree, inventory
        )
        writes[qualified] = function_writes
        declared[qualified] = _declared_effects(info)

    effects: dict[str, dict[str, EffectWitness]] = {
        qualified: dict(kinds) for qualified, kinds in local.items()
    }
    changed = True
    while changed:
        changed = False
        for qualified in program.calls.functions:
            for callee in program.calls.resolved_callees(qualified):
                if callee == qualified or callee not in effects:
                    continue
                for kind, witness in effects[callee].items():
                    if kind not in effects[qualified]:
                        effects[qualified][kind] = witness
                        changed = True
                new_writes = writes[callee] - writes[qualified]
                if new_writes:
                    writes[qualified] |= new_writes
                    changed = True

    return {
        qualified: FunctionEffects(
            qualified=qualified,
            local=dict(sorted(local[qualified].items())),
            effects=dict(sorted(effects[qualified].items())),
            global_writes=frozenset(writes[qualified]),
            declared=declared[qualified][0],
            declared_line=declared[qualified][1],
            declared_problems=declared[qualified][2],
        )
        for qualified in sorted(program.calls.functions)
    }


def entry_point_names(program: ProgramContext) -> tuple[str, ...]:
    """Public ``solve_*`` / ``optimal_*`` functions in library packages."""
    return tuple(
        sorted(
            info.qualified
            for info in program.calls.functions.values()
            if info.public
            and ENTRY_POINT_PATTERN.match(info.name)
            and _in_packages(info.module, program.config.library_packages)
        )
    )


def build_certificate(
    program: ProgramContext,
    effects_map: Mapping[str, FunctionEffects],
    inventory: GlobalsInventory,
) -> dict[str, object]:
    """Assemble the JSON parallel-safety certificate document.

    Covers every solver entry point (``solve_*`` / ``optimal_*``) plus
    every ``@effects``-declared function, so runtime gates can look up
    both the public API and purpose-built pool workers.
    """
    covered = set(entry_point_names(program))
    for qualified, fx in effects_map.items():
        if fx.declared is not None:
            covered.add(qualified)

    functions: dict[str, dict[str, object]] = {}
    for qualified in sorted(covered):
        fx = effects_map.get(qualified)
        if fx is None:
            continue
        info = program.calls.functions[qualified]
        functions[qualified] = {
            "module": info.module,
            "name": info.name,
            "line": info.line,
            "effects": list(fx.effect_names()),
            "parallel_safe": fx.parallel_safe,
            "declared": (
                sorted(fx.declared) if fx.declared else
                (["pure"] if fx.declared is not None else None)
            ),
            "entry_point": bool(ENTRY_POINT_PATTERN.match(info.name)),
        }

    return {
        "kind": CERTIFICATE_KIND,
        "version": CERTIFICATE_VERSION,
        "policy": {
            "parallel_safe_effects": sorted(PARALLEL_SAFE_EFFECTS),
        },
        "functions": functions,
        "globals": build_globals_inventory_dict(inventory),
    }


def build_globals_inventory_dict(
    inventory: GlobalsInventory,
) -> dict[str, object]:
    """The inventory section of the certificate document."""
    return inventory.as_dict()


def build_certificate_for_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
    *,
    cache: ParseCache | None = None,
) -> dict[str, object]:
    """Parse *paths* and emit their certificate (CLI / test entry).

    Pass the run's shared :class:`ParseCache` to preserve the
    parse-exactly-once contract when the linter already read the files.
    """
    active_config = config if config is not None else LintConfig()
    active_cache = cache if cache is not None else ParseCache()
    parsed = [
        active_cache.parsed(path)
        for path in iter_python_files(paths, active_config)
    ]
    program = build_program_context(parsed, active_config, cache=active_cache)
    inventory = build_globals_inventory(program)
    effects_map = analyze_effects(program, inventory)
    return build_certificate(program, effects_map, inventory)


def validate_certificate(document: object) -> tuple[str, ...]:
    """Schema-check a certificate document; returns problem messages.

    An empty tuple means the document is valid.  The same structural
    rules are enforced (more leniently) by
    :func:`repro.parallel.load_certificate`, which cannot import this
    module — keep the two in sync.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ("certificate must be a JSON object",)
    if document.get("kind") != CERTIFICATE_KIND:
        problems.append(
            f"certificate 'kind' must be {CERTIFICATE_KIND!r}"
        )
    if document.get("version") != CERTIFICATE_VERSION:
        problems.append(
            f"certificate 'version' must be {CERTIFICATE_VERSION}"
        )
    policy = document.get("policy")
    if not isinstance(policy, dict) or not isinstance(
        policy.get("parallel_safe_effects"), list
    ):
        problems.append(
            "certificate 'policy.parallel_safe_effects' must be a list"
        )
    functions = document.get("functions")
    if not isinstance(functions, dict):
        problems.append("certificate 'functions' must be an object")
        return tuple(problems)
    for qualified, entry in functions.items():
        if not isinstance(entry, dict):
            problems.append(f"function entry {qualified!r} must be an object")
            continue
        effects_list = entry.get("effects")
        if not isinstance(effects_list, list) or not all(
            isinstance(kind, str) and kind in EFFECT_KINDS
            for kind in effects_list
        ):
            problems.append(
                f"function {qualified!r}: 'effects' must list known kinds"
            )
        if not isinstance(entry.get("parallel_safe"), bool):
            problems.append(
                f"function {qualified!r}: 'parallel_safe' must be a boolean"
            )
        for key in ("module", "name"):
            if not isinstance(entry.get(key), str):
                problems.append(
                    f"function {qualified!r}: {key!r} must be a string"
                )
    return tuple(problems)


def render_certificate(document: Mapping[str, object]) -> str:
    """Stable JSON text of a certificate document."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
