"""The R200-series dataflow and contract rules.

Built on three substrates — the per-function CFG
(:mod:`repro.lint.cfg`), the forward abstract interpreter
(:mod:`repro.lint.dataflow`) and the static contract extractor
(:mod:`repro.lint.contracts`) — plus the existing whole-program
:class:`~repro.lint.interproc.ProgramContext` for call resolution:

============  =========================================================
``R200``      call-site shape/dtype mismatch against a declared contract
``R201``      possibly-uninitialized local used on a path to a return
``R202``      simplex arguments must be declared or dataflow-proven
``R203``      every ``*_reference`` oracle has a vectorized twin + test
``R204``      paper anchors and the DESIGN theorem table cover each other
============  =========================================================

These rules run only under ``repro lint --dataflow``; they see the same
parse-once files as everything else.  Findings honor inline
suppressions and ``"R2xx:qualified.name"`` config exemptions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass, field
from pathlib import Path

from .astutils import dotted_name
from .callgraph import CallSite, FunctionInfo
from .cfg import build_cfg
from .contracts import (
    FunctionContract,
    extract_module_contracts,
    parameter_fact,
    return_fact,
)
from .dataflow import Fact, FunctionDataflow, analyze_function, evaluate_expression
from .engine import (
    DataflowRule,
    ParseCache,
    ParsedFile,
    iter_python_files,
    register_rule,
)
from .findings import Finding
from .interproc import ProgramContext, _in_packages, _usage_directories
from .trace import TraceMatrix, build_matrix

__all__ = [
    "DataflowContext",
    "build_dataflow_context",
    "ContractCallRule",
    "UnboundLocalRule",
    "SimplexInvariantRule",
    "OraclePairRule",
    "PaperTraceRule",
]

#: Suffix marking a scalar reference oracle (R203).
_REFERENCE_SUFFIX = "_reference"


@dataclass
class DataflowContext:
    """Everything a :class:`~repro.lint.engine.DataflowRule` may inspect."""

    #: The shared whole-program view (files, call graph, config).
    program: ProgramContext
    #: Contract declarations of every analyzed module, by qualified name.
    contracts: Mapping[str, FunctionContract]
    #: Malformed-declaration problems: module -> ``(line, message)``.
    contract_problems: Mapping[str, tuple[tuple[int, str], ...]]
    #: Usage-root files (tests/examples/benchmarks) parsed through the
    #: shared cache; empty when the config has no project root.
    usage_files: tuple[ParsedFile, ...] = ()
    #: The design document text, or ``None`` when it does not exist.
    design_text: str | None = None
    #: Display path of the design document.
    design_path: str = "DESIGN.md"
    _analyses: dict[str, FunctionDataflow] = field(default_factory=dict)
    _matrix: TraceMatrix | None = None

    def call_fact_resolver(self, qualified: str):
        """A ``resolve_call`` hook mapping call nodes of *qualified*'s
        body to the declared return facts of contracted callees."""
        sites: dict[tuple[int, str], str] = {}
        for site in self.program.calls.calls_from(qualified):
            if site.callee is not None and site.callee in self.contracts:
                sites[(site.line, site.text)] = site.callee

        def resolve(call: ast.Call) -> Fact | None:
            text = dotted_name(call.func)
            if text is None:
                return None
            callee = sites.get((call.lineno, text))
            if callee is None:
                return None
            return return_fact(self.contracts[callee])

        return resolve

    def analysis(self, qualified: str) -> FunctionDataflow:
        """The (cached) dataflow fixpoint of one function."""
        cached = self._analyses.get(qualified)
        if cached is not None:
            return cached
        info = self.program.calls.functions[qualified]
        own = self.contracts.get(qualified)
        parameter_facts = (
            {name: parameter_fact(own, name) for name in info.params}
            if own is not None
            else {}
        )
        result = analyze_function(
            build_cfg(info.node),
            parameter_facts=parameter_facts,
            resolve_call=self.call_fact_resolver(qualified),
        )
        self._analyses[qualified] = result
        return result

    def iter_contract_calls(
        self, qualified: str
    ) -> Iterator[
        tuple[CallSite, ast.Call, FunctionContract, dict[str, ast.expr], Mapping[str, Fact]]
    ]:
        """Resolved calls from *qualified* into contracted functions.

        Yields ``(site, call_node, contract, param->argument binding,
        abstract environment at the call)``.  Calls using ``*args`` /
        ``**kwargs`` expansion are skipped (statically unbindable).
        """
        sites = [
            site
            for site in self.program.calls.calls_from(qualified)
            if site.callee is not None and site.callee in self.contracts
        ]
        if not sites:
            return
        info = self.program.calls.functions[qualified]
        analysis = self.analysis(qualified)
        nodes: dict[tuple[int, str], list[ast.Call]] = {}
        for node in _function_calls(info.node):
            text = dotted_name(node.func)
            if text is not None:
                nodes.setdefault((node.lineno, text), []).append(node)
        for site in sites:
            assert site.callee is not None
            contract = self.contracts[site.callee]
            callee_info = self.program.calls.functions.get(site.callee)
            if callee_info is None:
                continue
            for node in nodes.get((site.line, site.text), []):
                binding = _bind_arguments(node, callee_info)
                if binding is None:
                    continue
                environment = analysis.call_environments.get(
                    (node.lineno, node.col_offset), {}
                )
                yield site, node, contract, binding, environment

    def trace_matrix(self) -> TraceMatrix:
        """The (cached) theorem-coverage matrix for R204."""
        if self._matrix is None:
            implementation = {
                parsed.path: parsed.source
                for parsed in self.program.files.values()
            }
            tests = {
                parsed.path: parsed.source
                for parsed in self.usage_files
                if parsed.tree is not None
            }
            self._matrix = build_matrix(
                self.design_text or "",
                self.design_path,
                implementation,
                tests,
            )
        return self._matrix


def _function_calls(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.Call]:
    """Call expressions of one function body, excluding nested scopes
    (mirroring the call graph's module-level-function granularity)."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Call):
            yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _bind_arguments(
    call: ast.Call, callee: FunctionInfo
) -> dict[str, ast.expr] | None:
    """Map the callee's parameter names to this call's argument nodes."""
    if any(isinstance(argument, ast.Starred) for argument in call.args):
        return None
    if any(keyword.arg is None for keyword in call.keywords):
        return None
    arguments = callee.node.args
    positional = [a.arg for a in (*arguments.posonlyargs, *arguments.args)]
    binding: dict[str, ast.expr] = {}
    for position, argument in enumerate(call.args):
        if position < len(positional):
            binding[positional[position]] = argument
    for keyword in call.keywords:
        if keyword.arg is not None:
            binding[keyword.arg] = keyword.value
    return binding


def build_dataflow_context(
    program: ProgramContext,
    *,
    cache: ParseCache | None = None,
) -> DataflowContext:
    """Assemble the dataflow view on top of an existing *program*.

    Contract declarations are extracted from every analyzed module; the
    usage roots are re-read through the shared *cache* (already parsed
    by the program build, so this costs no extra parse), and the design
    document is loaded for R204.
    """
    active_cache = cache if cache is not None else ParseCache()
    contracts: dict[str, FunctionContract] = {}
    problems: dict[str, tuple[tuple[int, str], ...]] = {}
    for module, parsed in program.files.items():
        if parsed.tree is None:
            continue
        found, module_problems = extract_module_contracts(module, parsed.tree)
        contracts.update(found)
        if module_problems:
            problems[module] = tuple(module_problems)

    usage_files: list[ParsedFile] = []
    usage_dirs = _usage_directories(program.config)
    if usage_dirs:
        analyzed = {parsed.resolved for parsed in program.files.values()}
        for file_path in iter_python_files(usage_dirs, program.config):
            parsed = active_cache.parsed(file_path)
            if parsed.resolved in analyzed or parsed.tree is None:
                continue
            usage_files.append(parsed)

    root = Path(program.config.project_root or ".")
    design_path = root / program.config.design_doc
    design_text: str | None = None
    if design_path.is_file():
        design_text = design_path.read_text(encoding="utf-8")

    return DataflowContext(
        program=program,
        contracts=contracts,
        contract_problems=problems,
        usage_files=tuple(usage_files),
        design_text=design_text,
        design_path=str(design_path),
    )


#: Declared dtype kind -> dataflow dtype kinds that satisfy it (integer
#: arrays promote exactly into float kernels; the reverse truncates).
_COMPATIBLE_DTYPES = {
    "float": frozenset({"float", "int"}),
    "int": frozenset({"int"}),
    "bool": frozenset({"bool"}),
}


@register_rule
class ContractCallRule(DataflowRule):
    """R200: call sites must satisfy declared shape/dtype contracts.

    For every resolved call into a function carrying a contract (the
    ``@contract`` decorator or a docstring annotation), the abstract
    value of each bound argument is checked against the declaration:
    rank must match the declared shape's length, concrete extents must
    agree, one shape symbol must bind a single extent across all
    arguments of the call, and dtype kinds must be compatible (``int``
    arrays satisfy ``float`` declarations, not vice versa).  Unknown
    facts pass — the rule only reports *provable* mismatches, so it
    under-reports rather than guessing.  Malformed contract declarations
    are reported here too: a broken declaration checks nothing, which
    must not be silent.
    """

    id = "R200"
    name = "contract-call"
    summary = "call sites must satisfy declared shape/dtype contracts"

    def check_dataflow(self, context: DataflowContext) -> Iterable[Finding]:
        program = context.program
        for module in sorted(context.contract_problems):
            for line, message in context.contract_problems[module]:
                yield program.finding(module, line, self.id, message)
        for qualified in sorted(program.calls.functions):
            info = program.calls.functions[qualified]
            if info.module not in program.files:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            resolver = context.call_fact_resolver(qualified)
            for site, node, contract, binding, environment in (
                context.iter_contract_calls(qualified)
            ):
                yield from self._check_call(
                    program, info, site, node, contract, binding,
                    environment, resolver,
                )

    def _check_call(
        self,
        program: ProgramContext,
        caller: FunctionInfo,
        site: CallSite,
        node: ast.Call,
        contract: FunctionContract,
        binding: Mapping[str, ast.expr],
        environment: Mapping[str, Fact],
        resolver,
    ) -> Iterator[Finding]:
        symbols: dict[str, int] = {}
        for parameter in sorted(contract.params):
            spec = contract.params[parameter]
            argument = binding.get(parameter)
            if argument is None:
                continue
            fact = evaluate_expression(argument, environment, resolver)
            shape = spec.get("shape")
            if shape is not None and fact.rank is not None:
                if fact.rank != len(shape):
                    yield program.finding(
                        caller.module,
                        node.lineno,
                        self.id,
                        f"argument {parameter!r} of {site.text}() has rank "
                        f"{fact.rank}, but the contract declares shape "
                        f"{tuple(shape)} (rank {len(shape)})",
                        column=node.col_offset + 1,
                    )
                    continue
                yield from self._check_axes(
                    program, caller, site, node, parameter,
                    shape, fact, symbols,
                )
            declared_dtype = spec.get("dtype")
            if (
                declared_dtype is not None
                and fact.dtype is not None
                and fact.dtype
                not in _COMPATIBLE_DTYPES.get(declared_dtype, frozenset())
            ):
                yield program.finding(
                    caller.module,
                    node.lineno,
                    self.id,
                    f"argument {parameter!r} of {site.text}() has dtype kind "
                    f"{fact.dtype!r}, but the contract requires "
                    f"{declared_dtype!r}",
                    column=node.col_offset + 1,
                )

    def _check_axes(
        self,
        program: ProgramContext,
        caller: FunctionInfo,
        site: CallSite,
        node: ast.Call,
        parameter: str,
        shape: tuple,
        fact: Fact,
        symbols: dict[str, int],
    ) -> Iterator[Finding]:
        if fact.dims is None:
            return
        for axis, (declared, actual) in enumerate(zip(shape, fact.dims)):
            if not isinstance(actual, int):
                continue
            if isinstance(declared, int):
                if actual != declared:
                    yield program.finding(
                        caller.module,
                        node.lineno,
                        self.id,
                        f"argument {parameter!r} of {site.text}() has extent "
                        f"{actual} on axis {axis}; the contract requires "
                        f"{declared}",
                        column=node.col_offset + 1,
                    )
            else:
                bound = symbols.setdefault(declared, actual)
                if bound != actual:
                    yield program.finding(
                        caller.module,
                        node.lineno,
                        self.id,
                        f"shape symbol {declared!r} binds extent {bound} "
                        f"elsewhere in this call, but argument "
                        f"{parameter!r} of {site.text}() has {actual} on "
                        f"axis {axis}",
                        column=node.col_offset + 1,
                    )


@register_rule
class UnboundLocalRule(DataflowRule):
    """R201: no possibly-uninitialized local on a path reaching its use.

    Definite-assignment analysis over the CFG: a local name (bound
    somewhere in the function, per Python's scoping rule) read at a
    point where some path from the entry reaches the read without
    binding it is an ``UnboundLocalError`` waiting for the input that
    takes that path — a conditionally-assigned ``if``/``except`` branch,
    or a ``for`` loop whose iterable can be empty.  Fix by binding a
    default before the branch, or exempt the function with
    ``"R201:module.function"`` when the invariant is real but beyond
    static reach.
    """

    id = "R201"
    name = "unbound-local"
    summary = "locals must be assigned on every path reaching a use"

    def check_dataflow(self, context: DataflowContext) -> Iterable[Finding]:
        program = context.program
        for qualified in sorted(program.calls.functions):
            info = program.calls.functions[qualified]
            if info.module not in program.files:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            analysis = context.analysis(qualified)
            for name, node in analysis.unbound_uses:
                yield program.finding(
                    info.module,
                    getattr(node, "lineno", info.line),
                    self.id,
                    f"local {name!r} in {info.name!r} may be unbound here: "
                    "some path from the function entry reaches this use "
                    "without assigning it (conditional branch, empty loop, "
                    "or exception path); bind a default first or exempt "
                    f"with 'R201:{qualified}'",
                    column=getattr(node, "col_offset", 0) + 1,
                )


@register_rule
class SimplexInvariantRule(DataflowRule):
    """R202: simplex parameters take declared or proven distributions.

    An argument bound to a contract parameter declared ``simplex`` must
    *provably* carry the invariant: the access-strategy idiom
    (``strategy.probabilities``, trusted because ``AccessStrategy``
    validates at construction), an explicit normalization
    (``x / x.sum()``, ``check_probability_vector(...)``), a parameter
    the caller's own contract declares simplex, or the declared return
    of another contracted function.  Anything the dataflow cannot prove
    is flagged — the fix is to normalize at the call site or push a
    contract onto the producing helper, which is exactly the audit trail
    this rule exists to force.
    """

    id = "R202"
    name = "simplex-invariant"
    summary = "simplex parameters require a declared or proven distribution"

    def check_dataflow(self, context: DataflowContext) -> Iterable[Finding]:
        program = context.program
        for qualified in sorted(program.calls.functions):
            info = program.calls.functions[qualified]
            if info.module not in program.files:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            resolver = context.call_fact_resolver(qualified)
            for site, node, contract, binding, environment in (
                context.iter_contract_calls(qualified)
            ):
                for parameter in sorted(contract.params):
                    if not contract.params[parameter].get("simplex"):
                        continue
                    argument = binding.get(parameter)
                    if argument is None:
                        continue
                    fact = evaluate_expression(argument, environment, resolver)
                    if fact.simplex:
                        continue
                    yield program.finding(
                        info.module,
                        node.lineno,
                        self.id,
                        f"argument {parameter!r} of {site.text}() is declared "
                        "a probability simplex, but the dataflow cannot prove "
                        "the invariant here; normalize it (x / x.sum()), pass "
                        "a validated strategy distribution, or declare a "
                        "contract on the producing helper",
                        column=node.col_offset + 1,
                    )


@register_rule
class OraclePairRule(DataflowRule):
    """R203: every ``*_reference`` oracle is paired and cross-tested.

    The kernel/oracle convention from the performance work: a scalar
    ``X_reference`` oracle documents the semantics, a vectorized ``X``
    twin carries the speed, and an equivalence test pins them together.
    This rule makes the convention load-bearing: the twin must exist in
    the same module with the same parameter names, and at least one
    usage-root module (tests/) must reference *both* names — otherwise
    the equivalence net has a hole.  Exempt deliberate unpaired oracles
    with ``"R203:module.X_reference"``.
    """

    id = "R203"
    name = "oracle-pairing"
    summary = "*_reference oracles need a same-signature twin and a shared test"

    def check_dataflow(self, context: DataflowContext) -> Iterable[Finding]:
        program = context.program
        usage_names = [
            _referenced_names_of(parsed) for parsed in context.usage_files
        ]
        for qualified in sorted(program.calls.functions):
            info = program.calls.functions[qualified]
            if info.module not in program.files:
                continue
            if not _in_packages(info.module, program.config.library_packages):
                continue
            if not info.name.endswith(_REFERENCE_SUFFIX):
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            twin_name = info.name[: -len(_REFERENCE_SUFFIX)]
            twin = program.calls.functions.get(f"{info.module}.{twin_name}")
            if twin is None:
                yield program.finding(
                    info.module,
                    info.line,
                    self.id,
                    f"oracle {info.name!r} has no vectorized twin "
                    f"{twin_name!r} in {info.module}; add the twin or exempt "
                    f"with 'R203:{qualified}'",
                )
                continue
            if twin.params != info.params:
                yield program.finding(
                    info.module,
                    info.line,
                    self.id,
                    f"oracle {info.name!r} and twin {twin_name!r} disagree on "
                    f"signature ({', '.join(info.params)}) vs "
                    f"({', '.join(twin.params)}); keep them call-compatible",
                )
            if context.usage_files and not any(
                info.name in names and twin_name in names
                for names in usage_names
            ):
                yield program.finding(
                    info.module,
                    info.line,
                    self.id,
                    f"no usage-root module references both {info.name!r} and "
                    f"{twin_name!r}; add an equivalence test exercising the "
                    "pair",
                )


def _referenced_names_of(parsed: ParsedFile) -> frozenset[str]:
    names: set[str] = set()
    if parsed.tree is None:
        return frozenset()
    for node in ast.walk(parsed.tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name != "*":
                    names.update(alias.name.split("."))
                if alias.asname is not None:
                    names.add(alias.asname)
    return frozenset(names)


@register_rule
class PaperTraceRule(DataflowRule):
    """R204: theorem table and paper anchors must cover each other.

    The design document's theorem table is the reproduction's claim
    ledger; ``# paper: Thm 1.2`` anchors in source and tests are the
    evidence.  Bi-directional coverage: every normalizable table row
    needs at least one implementation anchor and one test anchor, and
    every theorem-shaped anchor must resolve to a table row (a stale
    anchor usually means a theorem was renumbered or a module moved).
    ``repro trace`` renders the same matrix for humans and CI.
    """

    id = "R204"
    name = "paper-trace"
    summary = "paper anchors and the design theorem table must stay in sync"

    def check_dataflow(self, context: DataflowContext) -> Iterable[Finding]:
        if context.design_text is None:
            yield Finding(
                path=context.design_path,
                line=1,
                column=1,
                rule_id=self.id,
                message=(
                    "design document not found; R204 needs the theorem "
                    "table (configure 'design-doc' in [tool.repro-lint])"
                ),
            )
            return
        matrix = context.trace_matrix()
        if not matrix.entries:
            yield Finding(
                path=context.design_path,
                line=1,
                column=1,
                rule_id=self.id,
                message=(
                    "no normalizable theorem rows found in the design "
                    "document's tables; R204 has nothing to check against"
                ),
            )
            return
        for entry in matrix.entries:
            if not matrix.implementation.get(entry.ident):
                yield Finding(
                    path=context.design_path,
                    line=entry.line,
                    column=1,
                    rule_id=self.id,
                    message=(
                        f"theorem {entry.ident} has no implementation anchor; "
                        f"add '# paper: {entry.ident}' in "
                        f"{', '.join(entry.modules) or 'its implementing module'}"
                    ),
                )
            if not matrix.tests.get(entry.ident):
                yield Finding(
                    path=context.design_path,
                    line=entry.line,
                    column=1,
                    rule_id=self.id,
                    message=(
                        f"theorem {entry.ident} has no test anchor; add "
                        f"'# paper: {entry.ident}' to the test exercising it"
                    ),
                )
        for site in matrix.unknown:
            yield Finding(
                path=site.path,
                line=site.line,
                column=1,
                rule_id=self.id,
                message=(
                    f"anchor {site.reference!r} matches no theorem row in "
                    f"{matrix.design_path}; fix the reference or add the "
                    "table row"
                ),
            )
