"""Static extraction of ``@contract`` declarations.

The runtime side lives in :func:`repro._validation.contract`; this
module reads the *same* declarations straight from the AST so the
R200-series rules can check call sites without importing anything.

Two declaration forms are recognized on module-level functions:

* the decorator, with **literal** keyword arguments::

      @contract(shapes={"matrix": ("c", "n")}, simplex=("p",))
      def kernel(matrix, p): ...

  Non-literal arguments cannot be evaluated statically and are reported
  as contract problems (surfaced through R200).

* a docstring annotation fallback, for helpers where a decorator would
  be noise (or would perturb hot-path profiles)::

      contract: strategy: shape (s,), dtype float, simplex
      contract: return[1]: simplex, nonnegative

  Each ``contract:`` line names a parameter, ``return``, or
  ``return[i]`` for tuple returns, followed by comma-separated clauses
  ``shape (...)``, ``dtype <kind>``, ``simplex``, ``nonnegative``.

Both forms produce the same spec structure the runtime decorator
attaches as ``__contract__``: a ``params`` mapping plus an optional
``returns`` spec (one mapping, or a tuple of mappings for tuple
returns).
"""

from __future__ import annotations

import ast
import re
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from .dataflow import Fact

__all__ = [
    "FunctionContract",
    "extract_module_contracts",
    "fact_from_spec",
    "parameter_fact",
    "return_fact",
]

_DECORATOR_KEYWORDS = frozenset(
    {"shapes", "dtypes", "simplex", "nonnegative", "returns"}
)
_DTYPE_KINDS = frozenset({"float", "int", "bool"})
_CONTRACT_LINE = re.compile(
    r"^\s*contract:\s*(?P<target>return(?:\[\d+\])?|[A-Za-z_]\w*)\s*:\s*(?P<clauses>.+?)\s*$"
)
_RETURN_INDEX = re.compile(r"^return\[(\d+)\]$")
_SYMBOL = re.compile(r"^[A-Za-z_]\w*$")


@dataclass(frozen=True)
class FunctionContract:
    """One function's declared contract, in runtime-spec form."""

    module: str
    name: str
    line: int
    #: Parameter name -> spec mapping (``shape``/``dtype``/``simplex``/
    #: ``nonnegative`` keys), same structure as ``__contract__``.
    params: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    #: ``None``, one spec mapping, or a tuple of spec mappings.
    returns: Any = None
    #: Parameter names of the function, in declaration order.
    signature: tuple[str, ...] = ()

    @property
    def qualified(self) -> str:
        return f"{self.module}.{self.name}"


def _signature_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = func.args
    return tuple(
        a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    )


def _is_contract_decorator(node: ast.expr) -> ast.Call | None:
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    return node if name == "contract" else None


def _literal(node: ast.expr) -> Any:
    """``ast.literal_eval`` that surfaces failure as ``ValueError``."""
    return ast.literal_eval(node)


def _spec_from_decorator(
    call: ast.Call, problems: list[tuple[int, str]]
) -> tuple[dict[str, dict[str, Any]], Any]:
    params: dict[str, dict[str, Any]] = {}
    returns: Any = None
    if call.args:
        problems.append(
            (call.lineno, "contract() takes keyword arguments only")
        )
    for keyword in call.keywords:
        if keyword.arg is None or keyword.arg not in _DECORATOR_KEYWORDS:
            problems.append(
                (
                    call.lineno,
                    f"unknown contract() argument {keyword.arg!r}"
                    if keyword.arg
                    else "contract() does not accept ** expansion",
                )
            )
            continue
        try:
            value = _literal(keyword.value)
        except ValueError:
            problems.append(
                (
                    keyword.value.lineno,
                    f"contract() argument {keyword.arg!r} must be a literal "
                    "so it can be checked statically",
                )
            )
            continue
        if keyword.arg == "shapes":
            for name, shape in dict(value).items():
                params.setdefault(name, {})["shape"] = tuple(shape)
        elif keyword.arg == "dtypes":
            for name, dtype in dict(value).items():
                params.setdefault(name, {})["dtype"] = dtype
        elif keyword.arg in {"simplex", "nonnegative"}:
            for name in tuple(value):
                params.setdefault(name, {})[keyword.arg] = True
        else:  # returns
            returns = value
    return params, returns


def _parse_shape(text: str, line: int, problems: list[tuple[int, str]]) -> tuple[Any, ...] | None:
    text = text.strip()
    if not (text.startswith("(") and text.endswith(")")):
        problems.append((line, f"contract shape must be parenthesized: {text!r}"))
        return None
    axes: list[Any] = []
    for token in text[1:-1].split(","):
        token = token.strip()
        if not token:
            continue
        if token.lstrip("-").isdigit():
            axes.append(int(token))
        elif _SYMBOL.match(token):
            axes.append(token)
        else:
            problems.append((line, f"bad contract shape axis {token!r}"))
            return None
    return tuple(axes)


def _split_clauses(text: str) -> list[str]:
    clauses: list[str] = []
    depth = 0
    current: list[str] = []
    for char in text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        if char == "," and depth == 0:
            clauses.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        clauses.append(tail)
    return [clause for clause in clauses if clause]


def _spec_from_clauses(
    clauses: Sequence[str], line: int, problems: list[tuple[int, str]]
) -> dict[str, Any]:
    spec: dict[str, Any] = {}
    for clause in clauses:
        head, _, rest = clause.partition(" ")
        head = head.strip().lower()
        rest = rest.strip()
        if head == "shape":
            shape = _parse_shape(rest, line, problems)
            if shape is not None:
                spec["shape"] = shape
        elif head == "dtype":
            if rest in _DTYPE_KINDS:
                spec["dtype"] = rest
            else:
                problems.append((line, f"unknown contract dtype {rest!r}"))
        elif head == "simplex" and not rest:
            spec["simplex"] = True
        elif head == "nonnegative" and not rest:
            spec["nonnegative"] = True
        else:
            problems.append((line, f"unknown contract clause {clause!r}"))
    return spec


def _spec_from_docstring(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    problems: list[tuple[int, str]],
) -> tuple[dict[str, dict[str, Any]], Any]:
    docstring = ast.get_docstring(func, clean=True)
    params: dict[str, dict[str, Any]] = {}
    single_return: dict[str, Any] | None = None
    indexed_returns: dict[int, dict[str, Any]] = {}
    if not docstring:
        return params, None
    for offset, raw_line in enumerate(docstring.splitlines()):
        matched = _CONTRACT_LINE.match(raw_line)
        if matched is None:
            continue
        line = func.lineno + offset  # approximate, good enough to anchor
        target = matched.group("target")
        spec = _spec_from_clauses(
            _split_clauses(matched.group("clauses")), line, problems
        )
        if not spec:
            continue
        index_match = _RETURN_INDEX.match(target)
        if index_match is not None:
            indexed_returns[int(index_match.group(1))] = spec
        elif target == "return":
            single_return = spec
        else:
            params.setdefault(target, {}).update(spec)
    returns: Any = single_return
    if indexed_returns:
        if single_return is not None:
            problems.append(
                (func.lineno, "mix of 'return' and 'return[i]' contract lines")
            )
        size = max(indexed_returns) + 1
        returns = tuple(indexed_returns.get(i, {}) for i in range(size))
    return params, returns


def extract_module_contracts(
    module: str, tree: ast.Module
) -> tuple[dict[str, FunctionContract], list[tuple[int, str]]]:
    """All contract declarations on module-level functions of *tree*.

    Returns the contracts keyed by dotted qualified name, plus a list of
    ``(line, message)`` problems for malformed declarations (surfaced by
    R200 so broken contracts fail loudly instead of silently checking
    nothing).
    """
    contracts: dict[str, FunctionContract] = {}
    problems: list[tuple[int, str]] = []
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        local_problems: list[tuple[int, str]] = []
        params: dict[str, dict[str, Any]] = {}
        returns: Any = None
        declared = False
        for decorator in node.decorator_list:
            call = _is_contract_decorator(decorator)
            if call is None:
                continue
            declared = True
            params, returns = _spec_from_decorator(call, local_problems)
        if not declared:
            params, returns = _spec_from_docstring(node, local_problems)
            declared = bool(params) or returns is not None
        signature = _signature_names(node)
        for name in params:
            if name not in signature:
                local_problems.append(
                    (
                        node.lineno,
                        f"contract on {node.name!r} names unknown "
                        f"parameter {name!r}",
                    )
                )
        problems.extend(local_problems)
        if not declared or (not params and returns is None):
            continue
        contract = FunctionContract(
            module=module,
            name=node.name,
            line=node.lineno,
            params={k: dict(v) for k, v in params.items() if k in signature},
            returns=returns,
            signature=signature,
        )
        contracts[contract.qualified] = contract
    return contracts, problems


def fact_from_spec(spec: Mapping[str, Any]) -> Fact:
    """The abstract :class:`Fact` a spec guarantees about a value."""
    shape = spec.get("shape")
    rank = None if shape is None else len(shape)
    dims = None if shape is None else tuple(
        axis if isinstance(axis, (int, str)) else None for axis in shape
    )
    return Fact(
        rank=rank,
        dims=dims,
        dtype=spec.get("dtype"),
        simplex=bool(spec.get("simplex")),
        nonnegative=bool(spec.get("simplex")) or bool(spec.get("nonnegative")),
    )


def parameter_fact(contract: FunctionContract, name: str) -> Fact:
    spec = contract.params.get(name)
    return Fact() if spec is None else fact_from_spec(spec)


def return_fact(contract: FunctionContract) -> Fact:
    """The fact describing a call's result (tuple returns project
    through :attr:`Fact.elements`)."""
    returns = contract.returns
    if returns is None:
        return Fact()
    if isinstance(returns, Mapping):
        return fact_from_spec(returns)
    if isinstance(returns, Sequence):
        return Fact(
            elements=tuple(fact_from_spec(dict(item)) for item in returns)
        )
    return Fact()
