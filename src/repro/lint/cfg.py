"""Per-function control-flow graphs lowered from the AST.

The dataflow tier (:mod:`repro.lint.dataflow`, rules R200-R204) needs to
reason about *paths* through a function — which names are bound on every
path reaching a use, what abstract facts hold at a call site — so this
module lowers each function body into a small CFG:

* one :class:`Block` per simple statement (function bodies here are
  small, so per-statement granularity costs nothing and makes ``try``
  handling exact);
* each block carries an ordered list of :class:`Event` records — name
  *uses*, name *binds* (with the bound value expression when the target
  is a plain name), ``del`` unbinds, and *call* markers used by the
  abstract interpreter to snapshot its environment at call sites;
* edges follow real control flow: both branches of ``if``, the
  zero-iteration exit edge of loops, ``break``/``continue``, early
  ``return``/``raise`` to the exit block, and — conservatively — an edge
  from every block inside a ``try`` body to every handler head, because
  an exception can interrupt the body at any point before a binding.

Scoping follows Python's rules exactly where it matters for the
uninitialized-use analysis: comprehension targets live in their own
scope and are masked, lambda and nested ``def``/``class`` bodies are not
descended into (their names resolve at call time), ``global``/
``nonlocal`` names are reported so the analysis can exclude them, and an
``except E as e`` binding is deleted again when the handler exits, as
the interpreter really does.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

__all__ = ["Event", "Block", "ControlFlowGraph", "build_cfg"]

#: Event kinds, in the order the lowering emits them.
USE = "use"
BIND = "bind"
DELETE = "del"
CALL = "call"


@dataclass(frozen=True)
class Event:
    """One name-level action inside a block, in evaluation order."""

    #: ``"use"``, ``"bind"``, ``"del"`` or ``"call"``.
    kind: str
    #: The local name acted on (empty for ``call`` events).
    name: str
    #: The AST node the event anchors to (for findings / snapshots).
    node: ast.AST
    #: For ``bind`` events on plain names: the bound value expression,
    #: when one exists (``None`` for loop targets, unpacking, imports).
    value: ast.expr | None = None


@dataclass
class Block:
    """A straight-line run of events with explicit successor edges."""

    index: int
    events: list[Event] = field(default_factory=list)
    successors: set[int] = field(default_factory=set)
    predecessors: set[int] = field(default_factory=set)


@dataclass(frozen=True)
class ControlFlowGraph:
    """The lowered CFG of one function."""

    #: Blocks indexed by :attr:`Block.index`.
    blocks: tuple[Block, ...]
    #: Index of the entry block (parameters are bound here).
    entry: int
    #: Index of the synthetic exit block (returns/raises lead here).
    exit: int
    #: Parameter names, bound on entry.
    params: tuple[str, ...]
    #: Names declared ``global`` or ``nonlocal`` anywhere in the body.
    declared_global: frozenset[str]

    def local_names(self) -> frozenset[str]:
        """Names bound somewhere in the function (Python's local rule),
        excluding ``global``/``nonlocal`` declarations."""
        bound = {
            event.name
            for block in self.blocks
            for event in block.events
            if event.kind == BIND
        }
        bound.update(self.params)
        return frozenset(bound - self.declared_global)


_SKIPPED_SCOPES = (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def _comprehension_targets(node: ast.AST) -> set[str]:
    names: set[str] = set()
    for generator in getattr(node, "generators", []):
        for target in ast.walk(generator.target):
            if isinstance(target, ast.Name):
                names.add(target.id)
    return names


def _expression_events(
    node: ast.expr | None, out: list[Event], mask: frozenset[str]
) -> None:
    """Append use/bind/call events of *node* in approximate eval order."""
    if node is None:
        return
    if isinstance(node, ast.Name):
        if isinstance(node.ctx, ast.Load) and node.id not in mask:
            out.append(Event(USE, node.id, node))
        return
    if isinstance(node, ast.NamedExpr):
        _expression_events(node.value, out, mask)
        if isinstance(node.target, ast.Name) and node.target.id not in mask:
            out.append(Event(BIND, node.target.id, node.target, node.value))
        return
    if isinstance(node, ast.Lambda):
        for default in (*node.args.defaults, *node.args.kw_defaults):
            _expression_events(default, out, mask)
        return  # the body runs later, in its own scope
    if isinstance(
        node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
    ):
        inner_mask = mask | frozenset(_comprehension_targets(node))
        generators = node.generators
        if generators:
            # The first iterable is evaluated eagerly in this scope.
            _expression_events(generators[0].iter, out, mask)
        for position, generator in enumerate(generators):
            if position > 0:
                _expression_events(generator.iter, out, inner_mask)
            for condition in generator.ifs:
                _expression_events(condition, out, inner_mask)
        if isinstance(node, ast.DictComp):
            _expression_events(node.key, out, inner_mask)
            _expression_events(node.value, out, inner_mask)
        else:
            _expression_events(node.elt, out, inner_mask)
        return
    if isinstance(node, ast.Call):
        _expression_events(node.func, out, mask)
        for argument in node.args:
            _expression_events(argument, out, mask)
        for keyword in node.keywords:
            _expression_events(keyword.value, out, mask)
        out.append(Event(CALL, "", node))
        return
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.expr):
            _expression_events(child, out, mask)
        elif isinstance(child, (ast.comprehension, ast.keyword)):
            _expression_events(
                child.iter if isinstance(child, ast.comprehension) else child.value,
                out,
                mask,
            )


def _element_expression(value: ast.expr | None, index: int) -> ast.expr | None:
    """A synthetic ``value[index]`` expression for unpacking binds, so the
    abstract interpreter can project tuple-element facts through
    ``a, b = helper(...)`` assignments."""
    if value is None:
        return None
    if isinstance(value, (ast.Tuple, ast.List)):
        if index < len(value.elts) and not any(
            isinstance(element, ast.Starred) for element in value.elts
        ):
            return value.elts[index]
        return None
    if isinstance(value, (ast.Call, ast.Name, ast.Attribute, ast.Subscript)):
        subscript = ast.Subscript(
            value=value,
            slice=ast.Constant(value=index),
            ctx=ast.Load(),
        )
        ast.copy_location(subscript, value)
        ast.copy_location(subscript.slice, value)
        return subscript
    return None


def _bind_target(
    target: ast.expr, out: list[Event], value: ast.expr | None
) -> None:
    """Lower an assignment target: plain names bind, the rest only use."""
    if isinstance(target, ast.Name):
        out.append(Event(BIND, target.id, target, value))
        return
    if isinstance(target, (ast.Tuple, ast.List)):
        has_star = any(isinstance(e, ast.Starred) for e in target.elts)
        for index, element in enumerate(target.elts):
            _bind_target(
                element,
                out,
                None if has_star else _element_expression(value, index),
            )
        return
    if isinstance(target, ast.Starred):
        _bind_target(target.value, out, None)
        return
    # Attribute / subscript targets: the base object is *used*.
    _expression_events(target, out, frozenset())


def _pattern_bindings(pattern: ast.pattern, out: list[Event]) -> None:
    """Names captured by a ``match`` case pattern."""
    if isinstance(pattern, ast.MatchAs) and pattern.name is not None:
        out.append(Event(BIND, pattern.name, pattern))
    if isinstance(pattern, ast.MatchStar) and pattern.name is not None:
        out.append(Event(BIND, pattern.name, pattern))
    if isinstance(pattern, ast.MatchMapping) and pattern.rest is not None:
        out.append(Event(BIND, pattern.rest, pattern))
    for child in ast.iter_child_nodes(pattern):
        if isinstance(child, ast.pattern):
            _pattern_bindings(child, out)
        elif isinstance(child, ast.expr):
            _expression_events(child, out, frozenset())


class _Builder:
    """Stateful CFG construction over one function body."""

    def __init__(self) -> None:
        self.blocks: list[Block] = []
        self.entry = self._new_block()
        self.exit = self._new_block()
        #: (header index, after index) of enclosing loops.
        self.loop_stack: list[tuple[int, int]] = []
        #: Handler-head indices of enclosing ``try`` statements whose
        #: *body* is currently being lowered.
        self.try_stack: list[list[int]] = []
        self.declared_global: set[str] = set()

    def _new_block(self) -> int:
        block = Block(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _edge(self, source: int, target: int) -> None:
        self.blocks[source].successors.add(target)
        self.blocks[target].predecessors.add(source)

    def _statement_block(self, current: int | None) -> int:
        block = self._new_block()
        if current is not None:
            self._edge(current, block)
        # An exception may fire inside this statement, reaching every
        # enclosing handler with the state *before* the statement's binds.
        for handlers in self.try_stack:
            for head in handlers:
                self._edge(block, head)
        return block

    def _events(self, block: int, events: Iterable[Event]) -> None:
        self.blocks[block].events.extend(events)

    def lower_body(
        self, body: Sequence[ast.stmt], current: int | None
    ) -> int | None:
        """Lower *body*, returning the fall-through block (or ``None``)."""
        for statement in body:
            current = self.lower_statement(statement, current)
        return current

    def lower_statement(
        self, statement: ast.stmt, current: int | None
    ) -> int | None:
        events: list[Event] = []
        if isinstance(statement, ast.Assign):
            _expression_events(statement.value, events, frozenset())
            for target in statement.targets:
                _bind_target(target, events, statement.value)
            block = self._statement_block(current)
            self._events(block, events)
            return block
        if isinstance(statement, ast.AnnAssign):
            if statement.value is None:
                return current  # a bare annotation binds nothing
            _expression_events(statement.value, events, frozenset())
            _bind_target(statement.target, events, statement.value)
            block = self._statement_block(current)
            self._events(block, events)
            return block
        if isinstance(statement, ast.AugAssign):
            if isinstance(statement.target, ast.Name):
                events.append(Event(USE, statement.target.id, statement.target))
            else:
                _expression_events(statement.target, events, frozenset())
            _expression_events(statement.value, events, frozenset())
            _bind_target(statement.target, events, None)
            block = self._statement_block(current)
            self._events(block, events)
            return block
        if isinstance(statement, (ast.Expr, ast.Assert)):
            if isinstance(statement, ast.Assert):
                _expression_events(statement.test, events, frozenset())
                _expression_events(statement.msg, events, frozenset())
            else:
                _expression_events(statement.value, events, frozenset())
            block = self._statement_block(current)
            self._events(block, events)
            return block
        if isinstance(statement, ast.Return):
            _expression_events(statement.value, events, frozenset())
            block = self._statement_block(current)
            self._events(block, events)
            self._edge(block, self.exit)
            return None
        if isinstance(statement, ast.Raise):
            _expression_events(statement.exc, events, frozenset())
            _expression_events(statement.cause, events, frozenset())
            block = self._statement_block(current)
            self._events(block, events)
            self._edge(block, self.exit)
            return None
        if isinstance(statement, ast.Delete):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    events.append(Event(DELETE, target.id, target))
                else:
                    _expression_events(target, events, frozenset())
            block = self._statement_block(current)
            self._events(block, events)
            return block
        if isinstance(statement, (ast.Import, ast.ImportFrom)):
            block = self._statement_block(current)
            for alias in statement.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name.partition(".")[0]
                self._events(block, [Event(BIND, bound, statement)])
            return block
        if isinstance(statement, (ast.Global, ast.Nonlocal)):
            self.declared_global.update(statement.names)
            return current
        if isinstance(statement, (ast.Pass,)):
            return current
        if isinstance(statement, ast.Break):
            block = self._statement_block(current)
            if self.loop_stack:
                self._edge(block, self.loop_stack[-1][1])
            else:
                self._edge(block, self.exit)
            return None
        if isinstance(statement, ast.Continue):
            block = self._statement_block(current)
            if self.loop_stack:
                self._edge(block, self.loop_stack[-1][0])
            else:
                self._edge(block, self.exit)
            return None
        if isinstance(statement, ast.If):
            _expression_events(statement.test, events, frozenset())
            condition = self._statement_block(current)
            self._events(condition, events)
            after = self._new_block()
            then_end = self.lower_body(statement.body, condition)
            if then_end is not None:
                self._edge(then_end, after)
            if statement.orelse:
                else_end = self.lower_body(statement.orelse, condition)
                if else_end is not None:
                    self._edge(else_end, after)
            else:
                self._edge(condition, after)
            return after if self.blocks[after].predecessors else None
        if isinstance(statement, ast.While):
            _expression_events(statement.test, events, frozenset())
            header = self._statement_block(current)
            self._events(header, events)
            after = self._new_block()
            self.loop_stack.append((header, after))
            body_end = self.lower_body(statement.body, header)
            self.loop_stack.pop()
            if body_end is not None:
                self._edge(body_end, header)
            always_true = (
                isinstance(statement.test, ast.Constant)
                and bool(statement.test.value)
            )
            exit_path = header
            if statement.orelse:
                exit_path = self.lower_body(statement.orelse, header)
            if not always_true and exit_path is not None:
                self._edge(exit_path, after)
            return after if self.blocks[after].predecessors else None
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            _expression_events(statement.iter, events, frozenset())
            header = self._statement_block(current)
            self._events(header, events)
            after = self._new_block()
            # The loop target binds only on the iteration path.
            bind_block = self._statement_block(header)
            bind_events: list[Event] = []
            _bind_target(statement.target, bind_events, None)
            self._events(bind_block, bind_events)
            self.loop_stack.append((header, after))
            body_end = self.lower_body(statement.body, bind_block)
            self.loop_stack.pop()
            if body_end is not None:
                self._edge(body_end, header)
            exit_path: int | None = header
            if statement.orelse:
                exit_path = self.lower_body(statement.orelse, header)
            if exit_path is not None:
                self._edge(exit_path, after)
            return after if self.blocks[after].predecessors else None
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                _expression_events(item.context_expr, events, frozenset())
                if item.optional_vars is not None:
                    _bind_target(item.optional_vars, events, None)
            block = self._statement_block(current)
            self._events(block, events)
            return self.lower_body(statement.body, block)
        if isinstance(statement, ast.Try):
            return self._lower_try(statement, current)
        if isinstance(statement, ast.Match):
            return self._lower_match(statement, current)
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            for decorator in statement.decorator_list:
                _expression_events(decorator, events, frozenset())
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for default in (
                    *statement.args.defaults,
                    *(d for d in statement.args.kw_defaults if d is not None),
                ):
                    _expression_events(default, events, frozenset())
            events.append(Event(BIND, statement.name, statement))
            block = self._statement_block(current)
            self._events(block, events)
            return block
        # Unknown/rare statements: treat as a linear no-op over their
        # expressions so the analysis stays sound for what it tracks.
        for child in ast.iter_child_nodes(statement):
            if isinstance(child, ast.expr):
                _expression_events(child, events, frozenset())
        block = self._statement_block(current)
        self._events(block, events)
        return block

    def _lower_try(self, statement: ast.Try, current: int | None) -> int | None:
        after = self._new_block()
        # Handler heads first, so body blocks can point at them.
        heads: list[int] = []
        for handler in statement.handlers:
            head = self._new_block()
            head_events: list[Event] = []
            _expression_events(handler.type, head_events, frozenset())
            if handler.name is not None:
                head_events.append(Event(BIND, handler.name, handler))
            self._events(head, head_events)
            heads.append(head)
        if current is not None and heads:
            # An exception before the first body statement completes
            # sees the state at try entry.
            for head in heads:
                self._edge(current, head)
        self.try_stack.append(heads)
        body_end = self.lower_body(statement.body, current)
        self.try_stack.pop()
        ends: list[int] = []
        if statement.orelse:
            body_end = self.lower_body(statement.orelse, body_end)
        if body_end is not None:
            ends.append(body_end)
        for handler, head in zip(statement.handlers, heads):
            handler_end = self.lower_body(handler.body, head)
            if handler_end is not None:
                if handler.name is not None:
                    # Python unbinds `except E as e` on handler exit.
                    unbind = self._statement_block(handler_end)
                    self._events(unbind, [Event(DELETE, handler.name, handler)])
                    handler_end = unbind
                ends.append(handler_end)
        join: int | None
        if ends:
            join = self._new_block()
            for end in ends:
                self._edge(end, join)
        else:
            join = None
        if statement.finalbody:
            return self.lower_body(statement.finalbody, join)
        return join

    def _lower_match(self, statement: ast.Match, current: int | None) -> int | None:
        events: list[Event] = []
        _expression_events(statement.subject, events, frozenset())
        header = self._statement_block(current)
        self._events(header, events)
        after = self._new_block()
        for case in statement.cases:
            head = self._statement_block(header)
            head_events: list[Event] = []
            _pattern_bindings(case.pattern, head_events)
            _expression_events(case.guard, head_events, frozenset())
            self._events(head, head_events)
            case_end = self.lower_body(case.body, head)
            if case_end is not None:
                self._edge(case_end, after)
        # No case may match: control falls through the header.
        self._edge(header, after)
        return after


def _parameter_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = func.args
    return tuple(
        a.arg
        for a in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
    )


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Lower *func* into a :class:`ControlFlowGraph`.

    The entry block is empty (parameters are modelled via
    :attr:`ControlFlowGraph.params`); a fall-through end of the body gets
    an implicit edge to the exit block (the implicit ``return None``).
    """
    builder = _Builder()
    end = builder.lower_body(func.body, builder.entry)
    if end is not None:
        builder._edge(end, builder.exit)
    return ControlFlowGraph(
        blocks=tuple(builder.blocks),
        entry=builder.entry,
        exit=builder.exit,
        params=_parameter_names(func),
        declared_global=frozenset(builder.declared_global),
    )


def iter_reachable(graph: ControlFlowGraph) -> Iterator[Block]:
    """Blocks reachable from the entry, in index order."""
    seen: set[int] = set()
    frontier = [graph.entry]
    while frontier:
        index = frontier.pop()
        if index in seen:
            continue
        seen.add(index)
        frontier.extend(graph.blocks[index].successors)
    for index in sorted(seen):
        yield graph.blocks[index]
