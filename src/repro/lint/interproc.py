"""Whole-program rules: layering, cycles, validation flow, exception escape.

This module assembles the :class:`ProgramContext` — every parsed file of
the run plus the module import graph (:mod:`repro.lint.modgraph`) and
the call graph (:mod:`repro.lint.callgraph`) — and implements the
R100-series :class:`~repro.lint.engine.ProgramRule` checks on top of it:

============  =======================================================
``R100``      imports must respect the declared layer order
``R101``      no module-level import cycles (lazy imports are exempt)
``R102``      entry-reachable public solvers validate before first use
``R103``      no transitive builtin-exception escape from public API
``R104``      every ``__all__`` export is referenced somewhere
============  =======================================================

The analyses are deliberately approximate in documented ways (module
import granularity, module-level functions only, statement-ordered
dominance, name-based liveness); ``docs/static_analysis.md`` spells out
each approximation and the resulting failure modes.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from .astutils import callee_name, declared_all, has_decorator, is_stub_body
from .callgraph import CallGraph, FunctionInfo, build_call_graph, catches
from .config import LintConfig
from .engine import (
    ParseCache,
    ParsedFile,
    ProgramRule,
    iter_python_files,
    register_rule,
)
from .findings import Finding
from .modgraph import ModuleGraph, build_module_graph

__all__ = [
    "ProgramContext",
    "build_program_context",
    "load_module_graph",
    "LayerOrderRule",
    "ImportCycleRule",
    "ValidationFlowRule",
    "ExceptionEscapeRule",
    "DeadExportRule",
]


@dataclass(frozen=True)
class ProgramContext:
    """Everything a :class:`~repro.lint.engine.ProgramRule` may inspect."""

    #: Active configuration.
    config: LintConfig
    #: Successfully parsed files of the run, by dotted module name.
    files: Mapping[str, ParsedFile]
    #: The module import graph.
    imports: ModuleGraph
    #: The function call graph.
    calls: CallGraph
    #: Names referenced by each module (``Name`` ids, attribute names,
    #: import aliases) — the liveness evidence for R104.
    references: Mapping[str, frozenset[str]]
    #: Names referenced by files under the configured usage roots
    #: (tests/examples/benchmarks), or ``None`` when no such directory
    #: exists in this run.
    usage_references: frozenset[str] | None

    def path_of(self, module: str) -> str:
        """The display path of *module* (falls back to the module name)."""
        parsed = self.files.get(module)
        return parsed.path if parsed is not None else module

    def finding(
        self, module: str, line: int, rule_id: str, message: str, *, column: int = 1
    ) -> Finding:
        """Build a finding anchored in *module*'s source file."""
        return Finding(
            path=self.path_of(module),
            line=line,
            column=column,
            rule_id=rule_id,
            message=message,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        """Whether an inline comment suppresses *finding* at its line."""
        for parsed in self.files.values():
            if parsed.path == finding.path:
                return parsed.suppressions.is_suppressed(
                    finding.rule_id, finding.line
                )
        return False

    def entry_functions(self) -> tuple[str, ...]:
        """Qualified names of every function in the entry-root modules."""
        return tuple(
            sorted(
                info.qualified
                for info in self.calls.functions.values()
                if _in_packages(info.module, self.config.entry_roots)
            )
        )

    def reachable_functions(self) -> frozenset[str]:
        """Functions reachable from the entry roots over resolved calls."""
        frontier = list(self.entry_functions())
        reachable = set(frontier)
        while frontier:
            current = frontier.pop()
            for callee in self.calls.resolved_callees(current):
                if callee not in reachable:
                    reachable.add(callee)
                    frontier.append(callee)
        return frozenset(reachable)


def _in_packages(module: str, prefixes: Sequence[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


def _referenced_names(tree: ast.Module) -> frozenset[str]:
    """Every identifier a module mentions: the liveness evidence of R104."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and node.module is not None:
                names.update(node.module.split("."))
            for alias in node.names:
                if alias.name != "*":
                    names.update(alias.name.split("."))
                if alias.asname is not None:
                    names.add(alias.asname)
    return frozenset(names)


def _usage_directories(config: LintConfig) -> list[Path]:
    if config.project_root is None:
        return []
    root = Path(config.project_root)
    return [
        root / usage
        for usage in config.usage_roots
        if (root / usage).is_dir()
    ]


def build_program_context(
    parsed_files: Sequence[ParsedFile],
    config: LintConfig,
    *,
    cache: ParseCache | None = None,
) -> ProgramContext:
    """Assemble the whole-program view from already-parsed files.

    Files that failed to parse are left out (their ``E001`` finding is
    reported by the engine); the graphs cover everything else.  The
    usage roots (tests/examples/benchmarks, resolved against the config's
    project root) are parsed through the same *cache*, preserving the
    parse-exactly-once contract.
    """
    active_cache = cache if cache is not None else ParseCache()
    files: dict[str, ParsedFile] = {}
    for parsed in parsed_files:
        if parsed.tree is not None:
            files[parsed.module] = parsed

    trees = {module: parsed.tree for module, parsed in files.items() if parsed.tree}
    packages = frozenset(
        module for module, parsed in files.items() if parsed.is_package
    )
    imports = build_module_graph(trees, packages=packages, layers=config.layers)
    calls = build_call_graph(trees, packages=packages)
    references = {
        module: _referenced_names(tree) for module, tree in trees.items()
    }

    usage_references: frozenset[str] | None = None
    usage_dirs = _usage_directories(config)
    if usage_dirs:
        analyzed = {parsed.resolved for parsed in files.values()}
        collected: set[str] = set()
        for file_path in iter_python_files(usage_dirs, config):
            parsed = active_cache.parsed(file_path)
            if parsed.resolved in analyzed or parsed.tree is None:
                continue
            collected |= _referenced_names(parsed.tree)
        usage_references = frozenset(collected)

    return ProgramContext(
        config=config,
        files=files,
        imports=imports,
        calls=calls,
        references=references,
        usage_references=usage_references,
    )


def load_module_graph(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
    *,
    cache: ParseCache | None = None,
) -> ModuleGraph:
    """The import graph of *paths* — the library entry for ``repro deps``."""
    active_config = config if config is not None else LintConfig()
    active_cache = cache if cache is not None else ParseCache()
    trees: dict[str, ast.Module] = {}
    packages: set[str] = set()
    for file_path in iter_python_files(paths, active_config):
        parsed = active_cache.parsed(file_path)
        if parsed.tree is None:
            continue
        trees[parsed.module] = parsed.tree
        if parsed.is_package:
            packages.add(parsed.module)
    return build_module_graph(
        trees, packages=frozenset(packages), layers=active_config.layers
    )


@register_rule
class LayerOrderRule(ProgramRule):
    """R100: imports must respect the declared layer order.

    The ``layers`` config lists groups of module prefixes from the
    foundation up; a module may import its own layer or lower ones.
    Both eager and lazy imports count — laziness changes *when* an
    import runs, not which way the dependency points.  Modules matching
    no prefix are not judged.  Exempt a deliberate edge with
    ``"R100:source.module->target.module"``.
    """

    id = "R100"
    name = "layer-order"
    summary = "imports must point downward in the layer order"

    def check_program(self, program: ProgramContext) -> Iterable[Finding]:
        graph = program.imports
        if not graph.layers:
            return
        for edge in graph.edges:
            source_layer = graph.layer_of(edge.source)
            target_layer = graph.layer_of(edge.target)
            if source_layer is None or target_layer is None:
                continue
            if target_layer <= source_layer:
                continue
            if program.config.is_exempt(self.id, f"{edge.source}->{edge.target}"):
                continue
            yield program.finding(
                edge.source,
                edge.line,
                self.id,
                f"module {edge.source!r} (layer {source_layer}) imports "
                f"{edge.target!r} from higher layer {target_layer}; "
                "move the shared code down a layer or exempt the edge "
                f"with 'R100:{edge.source}->{edge.target}'",
            )


@register_rule
class ImportCycleRule(ProgramRule):
    """R101: no module-level import cycles.

    Cycles make import order load-bearing and eventually produce
    ``ImportError: partially initialized module``.  Function-local
    (lazy) imports are excluded: deferring one edge of a genuine
    mutual dependency into the function that needs it is the sanctioned
    fix, and this rule is what makes that convention checkable.
    Exempt a known cycle with ``"R101:<first module of the cycle>"``.
    """

    id = "R101"
    name = "import-cycle"
    summary = "no module-level import cycles"

    def check_program(self, program: ProgramContext) -> Iterable[Finding]:
        graph = program.imports
        for cycle in graph.cycles():
            if program.config.is_exempt(self.id, cycle[0]):
                continue
            line = 1
            for edge in graph.imports_of(cycle[0]):
                if edge.target == cycle[1] and not edge.lazy:
                    line = edge.line
                    break
            rendered = " -> ".join(cycle)
            yield program.finding(
                cycle[0],
                line,
                self.id,
                f"module-level import cycle: {rendered}; break it by "
                "moving shared code down a layer or making one edge a "
                "function-local import",
            )


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk *node* without entering nested function/class/lambda bodies."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def _validating_functions(program: ProgramContext) -> frozenset[str]:
    """Functions that perform validation, directly or via their callees.

    Direct evidence is a ``raise`` or a call to a configured checker
    name/pattern anywhere in the body; the set is then closed under
    "calls a validating function" (fixpoint over resolved call edges).
    """
    checker = re.compile(program.config.checker_pattern)
    validating: set[str] = set()
    for qualified, info in program.calls.functions.items():
        for node in _shallow_walk(info.node):
            if isinstance(node, ast.Raise):
                validating.add(qualified)
                break
            if isinstance(node, ast.Call):
                name = callee_name(node)
                if name is not None and (
                    name in program.config.checker_names or checker.search(name)
                ):
                    validating.add(qualified)
                    break
    changed = True
    while changed:
        changed = False
        for qualified in program.calls.functions:
            if qualified in validating:
                continue
            for callee in program.calls.resolved_callees(qualified):
                if callee in validating:
                    validating.add(qualified)
                    changed = True
                    break
    return frozenset(validating)


@register_rule
class ValidationFlowRule(ProgramRule):
    """R102: entry-reachable public solvers validate before first use.

    Interprocedural sibling of R001: a public function in the validated
    packages that the CLI can actually reach must establish its
    preconditions *before* consuming a parameter.  A statement counts as
    validating when it raises, calls a configured checker, or calls any
    function that (transitively) validates; a statement counts as a use
    when it mentions a parameter.  Statement order approximates
    dominance — good enough for the early-guard idiom this codebase
    uses.  R001 exemptions are honored, so a function excused from
    validation is not re-flagged here.
    """

    id = "R102"
    name = "validation-flow"
    summary = "entry-reachable public functions validate before first use"

    def check_program(self, program: ProgramContext) -> Iterable[Finding]:
        validating = _validating_functions(program)
        reachable = program.reachable_functions()
        for qualified, info in program.calls.functions.items():
            if not self._in_scope(program, info, reachable):
                continue
            finding = self._check_function(program, info, validating)
            if finding is not None:
                yield finding

    def _in_scope(
        self,
        program: ProgramContext,
        info: FunctionInfo,
        reachable: frozenset[str],
    ) -> bool:
        config = program.config
        return (
            info.public
            and info.params != ()
            and info.qualified in reachable
            and _in_packages(info.module, config.validated_packages)
            and not _in_packages(info.module, config.entry_roots)
            and not is_stub_body(info.node)
            and not has_decorator(info.node, "overload")
            and not config.is_exempt("R001", info.qualified)
            and not config.is_exempt(self.id, info.qualified)
        )

    def _check_function(
        self,
        program: ProgramContext,
        info: FunctionInfo,
        validating: frozenset[str],
    ) -> Finding | None:
        checker = re.compile(program.config.checker_pattern)
        call_lines = {
            site.line
            for site in program.calls.calls_from(info.qualified)
            if site.callee is not None and site.callee in validating
        }
        params = set(info.params)
        for statement in info.node.body:
            if self._validates(statement, program, checker, call_lines):
                return None
            used = self._first_param_use(statement, params)
            if used is not None:
                return program.finding(
                    info.module,
                    statement.lineno,
                    self.id,
                    f"public function {info.name!r} is reachable from the "
                    f"CLI but uses parameter {used!r} before any "
                    "validation; guard it first or exempt the function "
                    f"with 'R102:{info.qualified}'",
                )
        return None

    @staticmethod
    def _validates(
        statement: ast.stmt,
        program: ProgramContext,
        checker: re.Pattern[str],
        call_lines: set[int],
    ) -> bool:
        end = getattr(statement, "end_lineno", statement.lineno)
        if any(line for line in call_lines if statement.lineno <= line <= end):
            return True
        for node in _shallow_walk(statement):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                name = callee_name(node)
                if name is not None and (
                    name in program.config.checker_names or checker.search(name)
                ):
                    return True
        return False

    @staticmethod
    def _first_param_use(statement: ast.stmt, params: set[str]) -> str | None:
        for node in _shallow_walk(statement):
            if isinstance(node, ast.Name) and node.id in params:
                return node.id
        return None


def _escaping_raises(
    program: ProgramContext,
) -> Mapping[str, frozenset[tuple[str, str]]]:
    """For each function: ``(exception, origin)`` pairs that escape it.

    Seeds from direct ``raise`` sites of banned builtin exceptions (the
    raise's enclosing ``try`` bodies are honored; an inline R002/R103
    suppression on the raise line sanctions the site), then propagates
    along resolved call edges, dropping pairs the call site catches.
    Fixpoint: iterate until no escape set grows.
    """
    banned = program.config.banned_exceptions
    escapes: dict[str, set[tuple[str, str]]] = {
        qualified: set() for qualified in program.calls.functions
    }
    for qualified, info in program.calls.functions.items():
        table = (
            program.files[info.module].suppressions
            if info.module in program.files
            else None
        )
        for site in program.calls.raises_in(qualified):
            if site.exception is None or site.exception not in banned:
                continue
            if catches(site.exception, site.caught):
                continue
            if table is not None and (
                table.is_suppressed("R002", site.line)
                or table.is_suppressed("R103", site.line)
            ):
                continue
            escapes[qualified].add((site.exception, qualified))
    changed = True
    while changed:
        changed = False
        for qualified in program.calls.functions:
            for site in program.calls.calls_from(qualified):
                if site.callee is None or site.callee not in escapes:
                    continue
                for pair in escapes[site.callee]:
                    if pair in escapes[qualified]:
                        continue
                    if catches(pair[0], site.caught):
                        continue
                    escapes[qualified].add(pair)
                    changed = True
    return {
        qualified: frozenset(pairs) for qualified, pairs in escapes.items()
    }


@register_rule
class ExceptionEscapeRule(ProgramRule):
    """R103: no transitive builtin-exception escape from the public API.

    R002 stops *direct* raises of builtin exceptions; this rule closes
    the interprocedural gap: a public library function whose callees can
    let a ``KeyError``/``ValueError``/... propagate all the way out must
    catch it and convert to a ``ReproError`` at the boundary.  Direct
    raises in the function itself are R002's finding, not repeated here.
    """

    id = "R103"
    name = "exception-escape"
    summary = "public API must not leak builtin exceptions from callees"

    def check_program(self, program: ProgramContext) -> Iterable[Finding]:
        escapes = _escaping_raises(program)
        for qualified, info in program.calls.functions.items():
            if not info.public:
                continue
            if not _in_packages(info.module, program.config.library_packages):
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            transitive = sorted(
                (exception, origin)
                for exception, origin in escapes.get(qualified, frozenset())
                if origin != qualified
            )
            for exception, origin in transitive:
                yield program.finding(
                    info.module,
                    info.line,
                    self.id,
                    f"public function {info.name!r} can leak builtin "
                    f"{exception!r} raised in {origin!r}; catch it and "
                    "re-raise a repro.exceptions.ReproError subclass, or "
                    f"exempt with 'R103:{qualified}'",
                )


@register_rule
class DeadExportRule(ProgramRule):
    """R104: every ``__all__`` export is referenced somewhere.

    An ``__all__`` entry advertises public API; if nothing in the rest
    of the package, the CLI, or the usage roots (tests/examples/
    benchmarks) ever mentions the name, the export is dead weight —
    untested API that the docs index and the stability suite then have
    to carry.  Liveness is name-based (any textual reference counts), so
    the rule under-reports rather than false-positives on dynamic use.
    Computed ``__all__`` declarations are skipped.
    """

    id = "R104"
    name = "dead-export"
    summary = "__all__ exports must be referenced by the package or its users"

    def check_program(self, program: ProgramContext) -> Iterable[Finding]:
        usage = program.usage_references or frozenset()
        for module, parsed in sorted(program.files.items()):
            if not _in_packages(module, program.config.library_packages):
                continue
            if module.rsplit(".", 1)[-1].startswith("_"):
                continue
            if parsed.tree is None:
                continue
            located = declared_all(parsed.tree)
            if located is None:
                continue
            statement, exported = located
            if exported is None:
                continue
            for name in exported:
                if name in usage:
                    continue
                if program.config.is_exempt(self.id, f"{module}.{name}"):
                    continue
                if any(
                    name in references
                    for other, references in program.references.items()
                    if other != module
                ):
                    continue
                yield program.finding(
                    module,
                    statement.lineno,
                    self.id,
                    f"{name!r} is exported by {module!r} but referenced "
                    "nowhere else in the package, the CLI, or the usage "
                    "roots; drop the export or exempt with "
                    f"'R104:{module}.{name}'",
                )
