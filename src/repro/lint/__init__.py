"""Static analysis for the reproduction's correctness contracts.

The :mod:`repro.lint` subsystem is a small AST rule engine plus an
initial ruleset (R001–R007) that makes the library's conventions
machine-checkable: public entry points validate inputs, failures derive
from :class:`~repro.exceptions.ReproError`, randomness is injected and
seeded, floats are never compared exactly, and every public module
declares a truthful ``__all__``.  The repository lints itself in CI and
in ``tests/test_lint_self.py``, so refactors toward the production-scale
roadmap cannot silently erode the invariants the paper's theorems rely
on.

Programmatic use::

    from repro.lint import lint_paths, load_config

    findings = lint_paths(["src"], load_config())
    for finding in findings:
        print(finding.render())

Command-line use: ``repro lint [paths...]`` or ``python -m repro.lint``.
See ``docs/static_analysis.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401  (imports register the ruleset)
from .config import LintConfig, config_from_table, load_config, merge_cli_options
from .engine import (
    ModuleContext,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for,
    register_rule,
    registered_rules,
)
from .findings import Finding, render_json, render_text, sort_findings
from .suppressions import SuppressionTable, collect_suppressions

__all__ = [
    "Finding",
    "LintConfig",
    "ModuleContext",
    "Rule",
    "SuppressionTable",
    "collect_suppressions",
    "config_from_table",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "merge_cli_options",
    "module_name_for",
    "register_rule",
    "registered_rules",
    "render_json",
    "render_text",
    "sort_findings",
]
