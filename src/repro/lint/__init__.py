"""Static analysis for the reproduction's correctness contracts.

The :mod:`repro.lint` subsystem is an AST rule engine with two kinds of
rules.  The per-file ruleset (R001–R007, R301) makes the library's local
conventions machine-checkable: public entry points validate inputs,
failures derive from :class:`~repro.exceptions.ReproError`, randomness
is injected and seeded, floats are never compared exactly, every
public module declares a truthful ``__all__``, and solver entry points
return :class:`~repro.core.results.SolveResult` objects, never tuples.  The whole-program
ruleset (R100–R104, ``lint --whole-program``) checks the properties no
single file can witness: the declared layer order holds, no module-level
import cycles exist, CLI-reachable solvers validate before first use,
the public API never leaks builtin exceptions from its callees, and
every export is actually referenced.  The dataflow ruleset (R200–R204,
``lint --dataflow``) goes one level deeper: a per-function control-flow
graph and a forward abstract interpretation check declared shape/dtype
contracts at every resolved call site, flag possibly-unbound locals,
prove (or demand) the probability-simplex invariant on access-strategy
arrays, keep every ``*_reference`` oracle paired with its vectorized
twin, and hold the ``# paper:`` anchors and the design document's
theorem table to bi-directional coverage (also rendered by ``repro
trace``).  The effects ruleset (R400–R404, ``lint --effects``) infers
every function's side-effect set interprocedurally — purity, global
reads/writes, metric writes, ambient RNG, IO, spawning — checks it
against ``@effects`` declarations, and emits the parallel-safety
certificate (``--certificate``) that :func:`repro.parallel.parallel_map`
gates process fan-out on.  The cost ruleset (R500–R504, ``lint
--cost``) infers a symbolic asymptotic bound for every function from
loop structure and the call graph, checks it against ``@cost``
declarations, guards solver hot paths against undeclared superlinear
allocations and scalar reference oracles, forbids dense all-pairs
metric builds behind ``scale="large"`` tags, and — uniquely — verifies
declarations *empirically* against profiled timings at multiple
instance sizes (``--profile-check``, rule R504); ``repro cost`` renders
the declared/inferred table.  The repository lints itself in CI and in
``tests/test_lint_self.py``, so refactors toward the production-scale
roadmap cannot silently erode the invariants the paper's theorems rely
on.

Programmatic use::

    from repro.lint import lint_paths, load_config

    findings = lint_paths(["src"], load_config(), whole_program=True)
    for finding in findings:
        print(finding.render())

Command-line use: ``repro lint [paths...] [--whole-program]``,
``repro deps [--dot|--json]``, or ``python -m repro.lint``.
See ``docs/static_analysis.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from . import cost_rules as _cost_rules  # noqa: F401  (registers R5xx)
from . import dataflow_rules as _dataflow_rules  # noqa: F401  (registers R2xx)
from . import effect_rules as _effect_rules  # noqa: F401  (registers R4xx)
from . import error_rules as _error_rules  # noqa: F401  (registers R6xx)
from . import rules as _rules  # noqa: F401  (imports register the ruleset)
from .config import LintConfig, config_from_table, load_config, merge_cli_options
from .contracts import FunctionContract, extract_module_contracts
from .cost_rules import CostContext, build_cost_context
from .costmodel import (
    CostBound,
    FunctionCost,
    Monomial,
    analyze_costs,
    build_cost_table,
    load_cost_telemetry,
    parse_cost_expression,
    render_cost_table_json,
    render_cost_table_markdown,
    render_cost_table_text,
    validate_cost_telemetry,
)
from .dataflow_rules import DataflowContext, build_dataflow_context
from .effect_rules import EffectContext, build_effect_context
from .error_rules import ErrorContext, build_error_context
from .excflow import (
    FunctionErrors,
    analyze_errors,
    build_error_contract,
    build_error_contract_for_paths,
    build_error_table,
    render_error_contract,
    render_error_table_markdown,
    render_error_table_text,
    validate_error_contract,
)
from .resources import ResourceReport, analyze_resources
from .effects import (
    FunctionEffects,
    analyze_effects,
    build_certificate,
    build_certificate_for_paths,
    render_certificate,
    validate_certificate,
)
from .engine import (
    CostRule,
    DataflowRule,
    EffectRule,
    ErrorRule,
    ModuleContext,
    ParseCache,
    ParsedFile,
    ProgramRule,
    Rule,
    lint_file,
    lint_paths,
    lint_source,
    module_name_for,
    register_rule,
    registered_rules,
)
from .globals_inventory import GlobalsInventory, build_globals_inventory
from .findings import Finding, render_json, render_text, sort_findings
from .interproc import ProgramContext, build_program_context, load_module_graph
from .modgraph import ImportEdge, ModuleGraph
from .suppressions import SuppressionTable, collect_suppressions
from .trace import (
    TraceMatrix,
    build_matrix,
    render_matrix_json,
    render_matrix_markdown,
    render_matrix_text,
)

__all__ = [
    "CostBound",
    "CostContext",
    "CostRule",
    "DataflowContext",
    "DataflowRule",
    "EffectContext",
    "EffectRule",
    "ErrorContext",
    "ErrorRule",
    "Finding",
    "FunctionContract",
    "FunctionCost",
    "FunctionEffects",
    "FunctionErrors",
    "GlobalsInventory",
    "ImportEdge",
    "LintConfig",
    "ModuleContext",
    "ModuleGraph",
    "Monomial",
    "ParseCache",
    "ParsedFile",
    "ProgramContext",
    "ProgramRule",
    "ResourceReport",
    "Rule",
    "SuppressionTable",
    "TraceMatrix",
    "analyze_costs",
    "analyze_effects",
    "analyze_errors",
    "analyze_resources",
    "build_certificate",
    "build_certificate_for_paths",
    "build_cost_context",
    "build_cost_table",
    "build_dataflow_context",
    "build_effect_context",
    "build_error_context",
    "build_error_contract",
    "build_error_contract_for_paths",
    "build_error_table",
    "build_globals_inventory",
    "build_matrix",
    "build_program_context",
    "collect_suppressions",
    "config_from_table",
    "extract_module_contracts",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_config",
    "load_cost_telemetry",
    "load_module_graph",
    "merge_cli_options",
    "module_name_for",
    "parse_cost_expression",
    "register_rule",
    "registered_rules",
    "render_certificate",
    "render_cost_table_json",
    "render_cost_table_markdown",
    "render_cost_table_text",
    "render_error_contract",
    "render_error_table_markdown",
    "render_error_table_text",
    "render_json",
    "render_matrix_json",
    "render_matrix_markdown",
    "render_matrix_text",
    "render_text",
    "sort_findings",
    "validate_certificate",
    "validate_cost_telemetry",
    "validate_error_contract",
]
