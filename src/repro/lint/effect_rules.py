"""The R400-series effect and concurrency-safety rules.

Built on the globals census (:mod:`repro.lint.globals_inventory`) and the
interprocedural effect inference (:mod:`repro.lint.effects`):

============  =========================================================
``R400``      inferred effects must be covered by an ``@effects`` declaration
``R401``      no global write reachable from a function declared pure
``R402``      no ambient/unseeded RNG reachable from solver entry points
``R403``      no lambda / closure passed to a pool or ``*_map`` call site
``R404``      metrics-writing solver entry points open a telemetry scope
============  =========================================================

These rules run only under ``repro lint --effects``; they see the same
parse-once files as everything else.  Findings honor inline suppressions
and ``"R4xx:qualified.name"`` config exemptions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from .astutils import callee_name, dotted_name
from .callgraph import FunctionInfo
from .effects import (
    ENTRY_POINT_PATTERN,
    FunctionEffects,
    analyze_effects,
    entry_point_names,
)
from .engine import EffectRule, register_rule
from .findings import Finding
from .globals_inventory import GlobalsInventory, build_globals_inventory
from .interproc import ProgramContext, _in_packages

__all__ = [
    "EffectContext",
    "build_effect_context",
    "EffectDeclarationRule",
    "PureFunctionWriteRule",
    "EntryPointAmbientRngRule",
    "PicklablePoolArgumentRule",
    "TelemetryScopeRule",
]

#: Pool-dispatch callee names whose first callable argument must pickle.
_POOL_CALLEES = frozenset(
    {"parallel_map", "starmap", "imap", "imap_unordered", "apply_async"}
)
#: ``.map`` / ``.submit`` count only on receivers that look like pools.
_POOL_RECEIVER_HINTS = ("pool", "executor")


@dataclass
class EffectContext:
    """Everything a :class:`~repro.lint.engine.EffectRule` may inspect."""

    #: The shared whole-program view (files, call graph, config).
    program: ProgramContext
    #: The mutable-global census.
    inventory: GlobalsInventory
    #: Inferred (and declared) effects of every analyzed function.
    effects: Mapping[str, FunctionEffects]
    #: Solver entry points (public ``solve_*`` / ``optimal_*``).
    entry_points: tuple[str, ...] = field(default_factory=tuple)


def build_effect_context(program: ProgramContext) -> EffectContext:
    """Run the census and the effect fixpoint over one program."""
    inventory = build_globals_inventory(program)
    effects = analyze_effects(program, inventory)
    return EffectContext(
        program=program,
        inventory=inventory,
        effects=effects,
        entry_points=entry_point_names(program),
    )


def _witness_clause(fx: FunctionEffects, kind: str) -> str:
    witness = fx.effects.get(kind)
    if witness is None:
        return ""
    if witness.origin == fx.qualified:
        return f" ({witness.detail}, line {witness.line})"
    return f" (via {witness.origin!r}: {witness.detail})"


@register_rule
class EffectDeclarationRule(EffectRule):
    """R400: inferred effects must be covered by the ``@effects`` declaration.

    A declaration is a machine-checked promise: the certificate (and the
    process-pool gate built on it) trusts declared-and-verified effect
    sets, so an annotation narrower than the inferred reality would let
    an unsafe function fan out.  Over-declaration is legal — declaring
    ``writes-metrics`` for writes the analysis cannot see (method calls)
    is the sanctioned idiom.  Global writes from *pure*-declared
    functions are R401's finding, not repeated here.
    """

    id = "R400"
    name = "effect-declaration"
    summary = "inferred effects must be covered by @effects declarations"

    def check_effects(self, context: EffectContext) -> Iterable[Finding]:
        program = context.program
        for qualified, fx in context.effects.items():
            if fx.declared is None and not fx.declared_problems:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            line = fx.declared_line if fx.declared_line is not None else info.line
            for problem in fx.declared_problems:
                yield program.finding(
                    info.module, line, self.id,
                    f"malformed @effects declaration on {info.name!r}: "
                    f"{problem}",
                )
            if fx.declared is None:
                continue
            missing = set(fx.effects) - fx.declared
            if not fx.declared:
                # Declared pure: global writes are R401's territory.
                missing -= {"writes-global", "writes-metrics"}
            for kind in sorted(missing):
                yield program.finding(
                    info.module, line, self.id,
                    f"{info.name!r} is declared "
                    f"{sorted(fx.declared) or ['pure']} but the analysis "
                    f"infers {kind!r}{_witness_clause(fx, kind)}; widen the "
                    "declaration or remove the effect",
                )


@register_rule
class PureFunctionWriteRule(EffectRule):
    """R401: no global write reachable from a function declared pure.

    Purity declarations feed the parallel-safety certificate; a global
    write hiding behind one (directly or through any chain of resolved
    calls) would corrupt shared state the moment the function is
    replayed, memoized, or fanned out.
    """

    id = "R401"
    name = "pure-global-write"
    summary = "pure-declared functions must not reach global writes"

    def check_effects(self, context: EffectContext) -> Iterable[Finding]:
        program = context.program
        for qualified, fx in context.effects.items():
            if fx.declared is None or fx.declared:
                continue  # undeclared, or declared with effects
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            line = fx.declared_line if fx.declared_line is not None else info.line
            for variable, writer in sorted(fx.global_writes):
                via = (
                    "its own body"
                    if writer == qualified
                    else f"callee {writer!r}"
                )
                yield program.finding(
                    info.module, line, self.id,
                    f"{info.name!r} is declared pure but {via} writes "
                    f"module-level state {variable!r}; drop the purity "
                    "declaration or remove the write",
                )


@register_rule
class EntryPointAmbientRngRule(EffectRule):
    """R402: no ambient RNG reachable from solver entry points.

    Reproducibility is a paper-level contract (R004 enforces it per
    file); this rule closes the interprocedural gap for the solver
    surface — a ``solve_*`` entry point whose transitive callees draw
    from process-global randomness makes runs unrepeatable no matter how
    carefully the caller seeds its own generator.
    """

    id = "R402"
    name = "entry-point-ambient-rng"
    summary = "solver entry points must not reach ambient RNG state"

    def check_effects(self, context: EffectContext) -> Iterable[Finding]:
        program = context.program
        for qualified in context.entry_points:
            fx = context.effects.get(qualified)
            if fx is None or "ambient-rng" not in fx.effects:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            yield program.finding(
                info.module, info.line, self.id,
                f"solver entry point {info.name!r} can reach ambient RNG "
                f"state{_witness_clause(fx, 'ambient-rng')}; inject a "
                "seeded Generator instead, or exempt with "
                f"'R402:{qualified}'",
            )


@register_rule
class PicklablePoolArgumentRule(EffectRule):
    """R403: no lambda or local closure handed to a pool call site.

    Process pools pickle the callable by qualified name; a lambda or a
    function defined inside another function fails at dispatch time with
    an opaque ``PicklingError`` — or silently degrades to the serial
    fallback.  Flagging the call site statically turns that runtime
    surprise into a lint finding.
    """

    id = "R403"
    name = "picklable-pool-argument"
    summary = "pool call sites must receive module-level callables"

    @staticmethod
    def _is_pool_call(node: ast.Call) -> bool:
        name = callee_name(node)
        if name in _POOL_CALLEES:
            return True
        if name in ("map", "submit") and isinstance(node.func, ast.Attribute):
            receiver = dotted_name(node.func.value)
            if receiver is not None and any(
                hint in receiver.lower() for hint in _POOL_RECEIVER_HINTS
            ):
                return True
        return False

    @staticmethod
    def _nested_definitions(info: FunctionInfo) -> frozenset[str]:
        nested: set[str] = set()
        for node in ast.walk(info.node):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node is not info.node
            ):
                nested.add(node.name)
        return frozenset(nested)

    def check_effects(self, context: EffectContext) -> Iterable[Finding]:
        program = context.program
        for qualified, info in program.calls.functions.items():
            if program.config.is_exempt(self.id, qualified):
                continue
            nested = self._nested_definitions(info)
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call) or not self._is_pool_call(node):
                    continue
                if not node.args:
                    continue
                candidate = node.args[0]
                problem: str | None = None
                if isinstance(candidate, ast.Lambda):
                    problem = "a lambda"
                elif (
                    isinstance(candidate, ast.Name)
                    and candidate.id in nested
                ):
                    problem = f"local function {candidate.id!r}"
                if problem is None:
                    continue
                yield program.finding(
                    info.module, node.lineno, self.id,
                    f"{info.name!r} passes {problem} to a pool call site; "
                    "process pools pickle by qualified name — hoist the "
                    "callable to module level (functools.partial over a "
                    "module-level function is fine)",
                )


@register_rule
class TelemetryScopeRule(EffectRule):
    """R404: metrics-writing solver entry points open a telemetry scope.

    A solver whose callees increment :mod:`repro.obs` counters without a
    surrounding :func:`~repro.obs.metrics.telemetry_scope` leaks its cost
    into whatever scope happens to be open — and under process fan-out
    the orphaned increments vanish with the child, so the parent's
    counters silently under-report.  Scoping at the entry point makes
    each solve's deltas attributable (the ``SolveResult.telemetry``
    contract).
    """

    id = "R404"
    name = "telemetry-scope"
    summary = "metrics-writing solver entry points use telemetry_scope"

    @staticmethod
    def _opens_scope(info: FunctionInfo) -> bool:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                name = callee_name(node)
                if name == "telemetry_scope":
                    return True
        return False

    def check_effects(self, context: EffectContext) -> Iterable[Finding]:
        program = context.program
        for qualified in context.entry_points:
            fx = context.effects.get(qualified)
            if fx is None or "writes-metrics" not in fx.effects:
                continue
            if not _in_packages(
                program.calls.functions[qualified].module,
                program.config.validated_packages,
            ):
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            if self._opens_scope(info):
                continue
            yield program.finding(
                info.module, info.line, self.id,
                f"solver entry point {info.name!r} writes obs metrics"
                f"{_witness_clause(fx, 'writes-metrics')} without opening "
                "a telemetry_scope; wrap the solve and attach the "
                "snapshot to its SolveResult, or exempt with "
                f"'R404:{qualified}'",
            )
