"""Inline suppression comments.

Two spellings are honored, mirroring mainstream linters:

* ``# repro-lint: disable=R001,R005`` — suppress the named rules on the
  line carrying the comment (for multi-line statements, put it on the
  line the finding anchors to, e.g. the ``def`` line for R001).
* ``# repro-lint: disable`` — suppress every rule on that line.
* ``# repro-lint: disable-file=R004`` — suppress the named rules (or,
  with no ``=RULES``, all rules) for the whole file; conventionally
  placed near the top.

Suppressions are extracted with :mod:`tokenize` so that strings merely
*containing* the marker text do not disable anything.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

__all__ = ["SuppressionTable", "collect_suppressions"]

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable-file|disable)"
    r"\s*(?:=\s*(?P<rules>[A-Za-z0-9_,\s]+))?"
)

#: Sentinel meaning "every rule" in a suppression entry.
ALL_RULES = "*"


@dataclass(frozen=True)
class SuppressionTable:
    """Parsed suppression directives for one source file."""

    #: line number -> rule ids suppressed there (may contain ``ALL_RULES``).
    by_line: dict[int, frozenset[str]] = field(default_factory=dict)
    #: rule ids suppressed for the entire file (may contain ``ALL_RULES``).
    file_wide: frozenset[str] = frozenset()
    #: Every explicitly named ``(line, rule_id)`` directive pair, in
    #: source order — the engine warns (``E002``) on codes that name no
    #: registered rule, so typos do not silently suppress nothing.
    entries: tuple[tuple[int, str], ...] = ()

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether a finding of *rule_id* anchored at *line* is silenced."""
        if ALL_RULES in self.file_wide or rule_id in self.file_wide:
            return True
        rules = self.by_line.get(line, frozenset())
        return ALL_RULES in rules or rule_id in rules


def _parse_rules(raw: str | None) -> frozenset[str]:
    if raw is None:
        return frozenset({ALL_RULES})
    rules = frozenset(part.strip().upper() for part in raw.split(",") if part.strip())
    return rules if rules else frozenset({ALL_RULES})


def collect_suppressions(source: str) -> SuppressionTable:
    """Extract every suppression directive from *source*.

    Sources that fail to tokenize yield an empty table; the parse error
    itself is reported separately by the engine.
    """
    by_line: dict[int, frozenset[str]] = {}
    file_wide: frozenset[str] = frozenset()
    entries: list[tuple[int, str]] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, ValueError):
        return SuppressionTable()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            continue
        rules = _parse_rules(match.group("rules"))
        line = token.start[0]
        entries.extend(
            (line, rule) for rule in sorted(rules) if rule != ALL_RULES
        )
        if match.group("scope") == "disable-file":
            file_wide = file_wide | rules
        else:
            by_line[line] = by_line.get(line, frozenset()) | rules
    return SuppressionTable(
        by_line=by_line, file_wide=file_wide, entries=tuple(entries)
    )
