"""Interprocedural exception-propagation analysis and the error contract.

Every module-level function of the analyzed program is summarized by its
*escape set*: the exception class names a call can let propagate to the
caller.  Unlike the seeded builtin-escape pass behind R103, this tier
models the actual control flow of exceptions:

* ``try/except/else/finally`` structure — only the ``try`` body is
  protected by the handlers; handler, ``else`` and ``finally`` code
  raises past them;
* caught-context narrowing — a handler removes from the in-flight set
  exactly the exceptions it catches, walking a *project-aware* class
  hierarchy (``except ReproError`` catches ``InfeasibleError``,
  ``except InfeasibleError`` catches ``CapacityError``) built from the
  analyzed class definitions merged with the builtin hierarchy;
* bare re-raises — ``raise`` inside ``except X:`` re-raises the
  narrowed set the handler caught (not "anything"), and ``raise err``
  of the handler's ``as`` alias is treated the same way;
* ``raise New(...) from err`` chains — the new exception escapes, the
  cause is context only;
* call flow — escape sets of resolved callees (including
  ``functools.partial`` bindings) enter at the call site and are
  filtered by the handlers protecting it, propagated to a fixpoint so
  cycles of mutually recursive helpers converge.

The analysis is **optimistic about unresolved callees** (methods,
builtins, third-party functions) — the same module-level-functions
approximation the call graph documents: it proves what it can see, and
``@raises`` declarations plus R600/R603 keep the visible part honest.
Nested function bodies are not entered (they raise when the closure
runs, and the call graph records no sites inside them either).

The inferred map feeds the R600-series rules
(:mod:`repro.lint.error_rules`) and :func:`build_error_contract`, which
emits the JSON **error-contract certificate** consumed by
:func:`repro.resilience.retrying`: every ``solve_*`` / ``optimal_*``
entry point plus every ``@raises``-declared function, each with its
escape set and the declared *transient* subset that is safe to retry.
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from .._validation import exception_name_problems
from .astutils import dotted_name
from .callgraph import _BUILTIN_PARENTS, FunctionInfo
from .config import LintConfig
from .engine import ParseCache, iter_python_files
from .interproc import ProgramContext, _in_packages, build_program_context

__all__ = [
    "FunctionErrors",
    "ExceptionHierarchy",
    "build_exception_hierarchy",
    "analyze_errors",
    "build_error_contract",
    "build_error_contract_for_paths",
    "validate_error_contract",
    "render_error_contract",
    "build_error_table",
    "render_error_table_text",
    "render_error_table_markdown",
    "CONTRACT_KIND",
    "CONTRACT_VERSION",
    "REPRO_BASE_EXCEPTION",
    "PROGRAMMING_ERRORS",
]

#: Document identifier of the emitted certificate.
CONTRACT_KIND = "repro-error-contract"
#: Schema version of the certificate document.
CONTRACT_VERSION = 1
#: Document identifier of the ``repro errors`` table.
ERROR_TABLE_KIND = "repro-error-table"
#: Schema version of the table document.
ERROR_TABLE_VERSION = 1

#: The base class every deliberate library exception must descend from
#: (rule R603 and the certificate policy).
REPRO_BASE_EXCEPTION = "ReproError"

#: Exceptions that signal *programming errors* (API misuse, broken
#: invariants), not library failure modes: R603 does not demand these be
#: wrapped in :data:`REPRO_BASE_EXCEPTION` subclasses, matching the
#: convention stated in ``repro.exceptions``.
PROGRAMMING_ERRORS = frozenset(
    {"TypeError", "NotImplementedError", "AssertionError", "KeyboardInterrupt"}
)


@dataclass(frozen=True)
class RaiseWitness:
    """Why one exception name is in a function's escape set."""

    #: The escaping exception class name.
    exception: str
    #: Qualified function whose body raises it directly.
    origin: str
    #: 1-based line of the originating raise site.
    line: int
    #: Human-readable description of the site.
    detail: str


@dataclass(frozen=True)
class FunctionErrors:
    """The inferred (and, if present, declared) error surface of one function."""

    qualified: str
    #: Exceptions the function's own body can let escape, by name.
    local: Mapping[str, RaiseWitness]
    #: Transitive escape set (own body plus resolved callees), by name.
    escapes: Mapping[str, RaiseWitness]
    #: Declared escape set (``@raises``), ``None`` when undeclared;
    #: the empty set means declared never-raising.
    declared: frozenset[str] | None
    #: Declared transient (retry-safe) subset.
    declared_transient: frozenset[str]
    #: Line of the declaration decorator, when present.
    declared_line: int | None
    #: Malformed-declaration messages (non-literal args, bad names).
    declared_problems: tuple[str, ...]

    def escape_names(self) -> tuple[str, ...]:
        """Sorted inferred escaping exception names."""
        return tuple(sorted(self.escapes))


class ExceptionHierarchy:
    """Class hierarchy over builtin and analyzed exception classes.

    Answers ``except``-clause matching questions with project classes
    resolved precisely (``except InfeasibleError`` catches
    ``CapacityError``).  Unknown names — classes the analysis never saw —
    are assumed to descend directly from ``Exception``, mirroring
    :func:`repro.lint.callgraph.catches`.
    """

    def __init__(self, bases: Mapping[str, tuple[str, ...]]) -> None:
        #: class name -> direct base names, for analyzed classes.
        self._bases = dict(bases)

    def ancestors(self, name: str) -> frozenset[str]:
        """All classes *name* descends from, including itself."""
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            if current in self._bases:
                frontier.extend(self._bases[current])
            elif current in _BUILTIN_PARENTS:
                frontier.append(_BUILTIN_PARENTS[current])
            elif current not in ("BaseException", "object"):
                # Unknown class: assume it descends from Exception.
                frontier.append("Exception")
        seen.discard("object")
        return frozenset(seen)

    def catches(self, raised: str, handlers: Sequence[str]) -> bool:
        """Whether an ``except`` clause over *handlers* catches *raised*."""
        return bool(self.ancestors(raised) & set(handlers))

    def covers(self, declared: frozenset[str], raised: str) -> bool:
        """Whether a ``@raises`` set covers *raised* (exact or ancestor)."""
        return bool(self.ancestors(raised) & declared)

    def is_repro_error(self, name: str) -> bool:
        """Whether *name* descends from :data:`REPRO_BASE_EXCEPTION`."""
        return REPRO_BASE_EXCEPTION in self.ancestors(name)

    def is_exception(self, name: str) -> bool:
        """Whether *name* is a known analyzed exception class."""
        return name in self._bases

    def as_dict(self) -> dict[str, list[str]]:
        """Analyzed exception classes -> sorted proper ancestors."""
        return {
            name: sorted(self.ancestors(name) - {name})
            for name in sorted(self._bases)
        }


def build_exception_hierarchy(program: ProgramContext) -> ExceptionHierarchy:
    """Collect exception class definitions from every analyzed module.

    A class counts as an exception when its base-name chain reaches
    ``BaseException`` (through other analyzed classes or the builtin
    table).  Non-exception classes never appear in raise/except clauses,
    so keeping them out keeps the hierarchy document small.
    """
    candidate_bases: dict[str, tuple[str, ...]] = {}
    for parsed in program.files.values():
        if parsed.tree is None:
            continue
        for node in ast.walk(parsed.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            names = []
            for base in node.bases:
                name = dotted_name(base)
                if name is not None:
                    names.append(name.rsplit(".", 1)[-1])
            if names:
                candidate_bases.setdefault(node.name, tuple(names))

    def reaches_base_exception(name: str, trail: frozenset[str]) -> bool:
        if name in ("Exception", "BaseException"):
            return True
        if name in _BUILTIN_PARENTS:
            return True
        if name in trail:
            return False
        for base in candidate_bases.get(name, ()):
            if reaches_base_exception(base, trail | {name}):
                return True
        return False

    return ExceptionHierarchy(
        {
            name: bases
            for name, bases in candidate_bases.items()
            if reaches_base_exception(name, frozenset())
        }
    )


def _declared_raises(
    info: FunctionInfo,
) -> tuple[
    frozenset[str] | None, frozenset[str], int | None, tuple[str, ...]
]:
    """Parse a ``@raises(...)`` decorator off one function, statically."""
    for decorator in info.node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.rsplit(".", 1)[-1] != "raises":
            continue
        problems: list[str] = []
        names: set[str] = set()
        transient: set[str] = set()

        def literal(node: ast.expr) -> str | None:
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                issues = exception_name_problems(node.value)
                if issues:
                    problems.extend(issues)
                    return None
                return node.value
            problems.append("exception names must be string literals")
            return None

        for argument in decorator.args:
            value = literal(argument)
            if value is not None:
                names.add(value)
        for keyword in decorator.keywords:
            if keyword.arg != "transient":
                problems.append(
                    f"unknown raises() keyword {keyword.arg!r}; "
                    "only 'transient' is accepted"
                )
                continue
            if isinstance(keyword.value, (ast.Tuple, ast.List)):
                for element in keyword.value.elts:
                    value = literal(element)
                    if value is not None:
                        transient.add(value)
            else:
                problems.append(
                    "transient= must be a tuple/list of string literals"
                )
        declared = frozenset(names) | frozenset(transient)
        return declared, frozenset(transient), decorator.lineno, tuple(problems)
    return None, frozenset(), None, ()


def _handler_names(handler: ast.ExceptHandler) -> tuple[str, ...]:
    """The exception class names one ``except`` clause matches.

    A bare ``except:`` matches everything, modeled as ``BaseException``.
    """
    if handler.type is None:
        return ("BaseException",)
    elements = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names: list[str] = []
    for element in elements:
        name = dotted_name(element)
        if name is not None:
            names.append(name.rsplit(".", 1)[-1])
    return tuple(names)


def _own_calls(statement: ast.stmt) -> Iterator[ast.Call]:
    """Call expressions at one statement's own level (nested ``ast.stmt``
    subtrees are walked separately by the evaluator, so descending into
    them here would double-count their call sites)."""
    stack: list[ast.AST] = [statement]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Call):
            yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            stack.append(child)


class _FunctionEvaluator:
    """Computes one function's escape set given current callee summaries.

    Re-run under the fixpoint loop: the result is monotone in the
    summaries (growing callee sets only grow the in-flight sets entering
    each ``try``), so iteration terminates on the finite lattice of
    exception names mentioned anywhere in the program.
    """

    def __init__(
        self,
        info: FunctionInfo,
        hierarchy: ExceptionHierarchy,
        callees_at_line: Mapping[int, tuple[str, ...]],
    ) -> None:
        self._info = info
        self._hierarchy = hierarchy
        self._callees_at_line = callees_at_line

    def escapes(
        self, summaries: Mapping[str, Mapping[str, RaiseWitness]]
    ) -> dict[str, RaiseWitness]:
        return self._body(
            list(self._info.node.body), None, {}, summaries
        )

    def _body(
        self,
        body: list[ast.stmt],
        alias: str | None,
        caught: Mapping[str, RaiseWitness],
        summaries: Mapping[str, Mapping[str, RaiseWitness]],
    ) -> dict[str, RaiseWitness]:
        """Escapes of a statement list.

        *alias*/*caught* describe the innermost enclosing ``except``
        handler: the ``as`` name (if any) and the narrowed set it caught,
        which a bare ``raise`` (or ``raise alias``) re-raises.
        """
        escapes: dict[str, RaiseWitness] = {}

        def merge(more: Mapping[str, RaiseWitness]) -> None:
            for name, witness in more.items():
                escapes.setdefault(name, witness)

        for statement in body:
            if isinstance(statement, ast.Try):
                merge(self._try(statement, alias, caught, summaries))
                continue
            if isinstance(statement, ast.Raise):
                merge(self._raise(statement, alias, caught))
                continue
            for node in _own_calls(statement):
                for callee in self._callees_at_line.get(node.lineno, ()):
                    merge(summaries.get(callee, {}))
            children: list[ast.stmt] = []
            if isinstance(
                statement, (ast.If, ast.For, ast.AsyncFor, ast.While)
            ):
                children = [*statement.body, *statement.orelse]
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                children = list(statement.body)
            elif isinstance(statement, ast.Match):
                children = [s for case in statement.cases for s in case.body]
            if children:
                merge(self._body(children, alias, caught, summaries))
        return escapes

    def _try(
        self,
        statement: ast.Try,
        alias: str | None,
        caught: Mapping[str, RaiseWitness],
        summaries: Mapping[str, Mapping[str, RaiseWitness]],
    ) -> dict[str, RaiseWitness]:
        remaining = self._body(
            list(statement.body), alias, caught, summaries
        )
        escapes: dict[str, RaiseWitness] = {}

        def merge(more: Mapping[str, RaiseWitness]) -> None:
            for name, witness in more.items():
                escapes.setdefault(name, witness)

        for handler in statement.handlers:
            names = _handler_names(handler)
            caught_here = {
                exception: witness
                for exception, witness in remaining.items()
                if self._hierarchy.catches(exception, names)
            }
            for exception in caught_here:
                del remaining[exception]
            handler_alias = handler.name
            merge(
                self._body(
                    list(handler.body), handler_alias, caught_here, summaries
                )
            )
        merge(remaining)
        merge(self._body(list(statement.orelse), alias, caught, summaries))
        merge(self._body(list(statement.finalbody), alias, caught, summaries))
        return escapes

    def _raise(
        self,
        statement: ast.Raise,
        alias: str | None,
        caught: Mapping[str, RaiseWitness],
    ) -> dict[str, RaiseWitness]:
        if statement.exc is None:
            # Bare re-raise: the handler's narrowed caught set escapes.
            return dict(caught)
        target = (
            statement.exc.func
            if isinstance(statement.exc, ast.Call)
            else statement.exc
        )
        name = dotted_name(target)
        if name is None:
            return {}
        name = name.rsplit(".", 1)[-1]
        if alias is not None and name == alias:
            # ``raise err`` of the handler's ``as`` alias: same as bare.
            return dict(caught)
        if not name[:1].isupper():
            # A lowercase name is a variable holding an instance we
            # cannot type statically; stay optimistic like unresolved
            # callees — @raises declarations keep the boundary honest.
            return {}
        return {
            name: RaiseWitness(
                exception=name,
                origin=self._info.qualified,
                line=statement.lineno,
                detail=f"raised at {self._info.qualified}:{statement.lineno}",
            )
        }


def analyze_errors(
    program: ProgramContext,
    hierarchy: ExceptionHierarchy | None = None,
) -> dict[str, FunctionErrors]:
    """Infer the escape set of every module-level function.

    Each function's evaluator re-walks its body under the current callee
    summaries until a fixpoint is reached; every escaping name keeps the
    witness of the function that raised it, for attributable findings.
    """
    if hierarchy is None:
        hierarchy = build_exception_hierarchy(program)

    evaluators: dict[str, _FunctionEvaluator] = {}
    declared: dict[
        str,
        tuple[frozenset[str] | None, frozenset[str], int | None, tuple[str, ...]],
    ] = {}
    for qualified, info in program.calls.functions.items():
        callees_at_line: dict[int, list[str]] = {}
        for site in program.calls.calls_from(qualified):
            if site.callee is not None and site.callee != qualified:
                callees_at_line.setdefault(site.line, []).append(site.callee)
        evaluators[qualified] = _FunctionEvaluator(
            info,
            hierarchy,
            {line: tuple(names) for line, names in callees_at_line.items()},
        )
        declared[qualified] = _declared_raises(info)

    local = {
        qualified: evaluator.escapes({})
        for qualified, evaluator in evaluators.items()
    }
    summaries: dict[str, dict[str, RaiseWitness]] = {
        qualified: dict(escapes) for qualified, escapes in local.items()
    }
    changed = True
    while changed:
        changed = False
        for qualified, evaluator in evaluators.items():
            updated = evaluator.escapes(summaries)
            if set(updated) - set(summaries[qualified]):
                changed = True
            # Keep first-seen witnesses stable across iterations.
            for name, witness in summaries[qualified].items():
                updated[name] = witness
            summaries[qualified] = updated

    return {
        qualified: FunctionErrors(
            qualified=qualified,
            local=dict(sorted(local[qualified].items())),
            escapes=dict(sorted(summaries[qualified].items())),
            declared=declared[qualified][0],
            declared_transient=declared[qualified][1],
            declared_line=declared[qualified][2],
            declared_problems=declared[qualified][3],
        )
        for qualified in sorted(program.calls.functions)
    }


def _covered_entries(
    program: ProgramContext, errors_map: Mapping[str, FunctionErrors]
) -> tuple[str, ...]:
    """Entry points plus every ``@raises``-declared function."""
    from .effects import entry_point_names

    covered = set(entry_point_names(program))
    for qualified, errors in errors_map.items():
        if errors.declared is not None:
            covered.add(qualified)
    return tuple(sorted(covered))


def build_error_contract(
    program: ProgramContext,
    errors_map: Mapping[str, FunctionErrors],
    hierarchy: ExceptionHierarchy,
) -> dict[str, object]:
    """Assemble the JSON error-contract certificate document.

    Covers every solver entry point (``solve_*`` / ``optimal_*``) plus
    every ``@raises``-declared function.  The published ``raises`` set is
    the union of declaration and inference — the safe contract even when
    the two disagree (R600 reports the disagreement separately).
    """
    from .effects import ENTRY_POINT_PATTERN

    functions: dict[str, dict[str, object]] = {}
    for qualified in _covered_entries(program, errors_map):
        errors = errors_map.get(qualified)
        if errors is None:
            continue
        info = program.calls.functions[qualified]
        contract = frozenset(errors.escapes) | (errors.declared or frozenset())
        functions[qualified] = {
            "module": info.module,
            "name": info.name,
            "line": info.line,
            "raises": sorted(contract),
            "transient": sorted(errors.declared_transient),
            "declared": (
                sorted(errors.declared)
                if errors.declared is not None
                else None
            ),
            "entry_point": bool(ENTRY_POINT_PATTERN.match(info.name)),
        }

    return {
        "kind": CONTRACT_KIND,
        "version": CONTRACT_VERSION,
        "policy": {
            "base": REPRO_BASE_EXCEPTION,
            "programming_errors": sorted(PROGRAMMING_ERRORS),
        },
        "hierarchy": hierarchy.as_dict(),
        "functions": functions,
    }


def build_error_contract_for_paths(
    paths: Sequence[Path | str],
    config: LintConfig | None = None,
    *,
    cache: ParseCache | None = None,
) -> dict[str, object]:
    """Parse *paths* and emit their error contract (CLI / test entry).

    Pass the run's shared :class:`ParseCache` to preserve the
    parse-exactly-once contract when the linter already read the files.
    """
    active_config = config if config is not None else LintConfig()
    active_cache = cache if cache is not None else ParseCache()
    parsed = [
        active_cache.parsed(path)
        for path in iter_python_files(paths, active_config)
    ]
    program = build_program_context(parsed, active_config, cache=active_cache)
    hierarchy = build_exception_hierarchy(program)
    errors_map = analyze_errors(program, hierarchy)
    return build_error_contract(program, errors_map, hierarchy)


def validate_error_contract(document: object) -> tuple[str, ...]:
    """Schema-check a contract document; returns problem messages.

    An empty tuple means the document is valid.  The same structural
    rules are enforced (more leniently) by
    :func:`repro.resilience.load_certificate`, which cannot import this
    module — keep the two in sync.
    """
    problems: list[str] = []
    if not isinstance(document, dict):
        return ("error contract must be a JSON object",)
    if document.get("kind") != CONTRACT_KIND:
        problems.append(f"contract 'kind' must be {CONTRACT_KIND!r}")
    if document.get("version") != CONTRACT_VERSION:
        problems.append(f"contract 'version' must be {CONTRACT_VERSION}")
    policy = document.get("policy")
    if not isinstance(policy, dict) or not isinstance(
        policy.get("base"), str
    ):
        problems.append("contract 'policy.base' must be a string")
    hierarchy = document.get("hierarchy")
    if not isinstance(hierarchy, dict) or not all(
        isinstance(name, str)
        and isinstance(ancestors, list)
        and all(isinstance(entry, str) for entry in ancestors)
        for name, ancestors in hierarchy.items()
    ):
        problems.append(
            "contract 'hierarchy' must map class names to ancestor lists"
        )
    functions = document.get("functions")
    if not isinstance(functions, dict):
        problems.append("contract 'functions' must be an object")
        return tuple(problems)
    for qualified, entry in functions.items():
        if not isinstance(entry, dict):
            problems.append(f"function entry {qualified!r} must be an object")
            continue
        for key in ("raises", "transient"):
            value = entry.get(key)
            if not isinstance(value, list) or not all(
                isinstance(name, str) for name in value
            ):
                problems.append(
                    f"function {qualified!r}: {key!r} must list exception names"
                )
        raises_set = set(entry.get("raises") or ())
        transient_set = set(entry.get("transient") or ())
        if not transient_set <= raises_set:
            problems.append(
                f"function {qualified!r}: transient names must be a subset "
                "of 'raises'"
            )
        for key in ("module", "name"):
            if not isinstance(entry.get(key), str):
                problems.append(
                    f"function {qualified!r}: {key!r} must be a string"
                )
        if not isinstance(entry.get("entry_point"), bool):
            problems.append(
                f"function {qualified!r}: 'entry_point' must be a boolean"
            )
    return tuple(problems)


def render_error_contract(document: Mapping[str, object]) -> str:
    """Stable JSON text of a contract document."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def build_error_table(
    program: ProgramContext,
    errors_map: Mapping[str, FunctionErrors],
    hierarchy: ExceptionHierarchy,
) -> dict[str, object]:
    """The declared-vs-inferred table behind ``repro errors``."""
    from .effects import entry_point_names

    entry_points = frozenset(entry_point_names(program))
    rows: dict[str, dict[str, object]] = {}
    for qualified in _covered_entries(program, errors_map):
        errors = errors_map.get(qualified)
        if errors is None:
            continue
        info = program.calls.functions[qualified]
        uncovered = (
            tuple(
                sorted(
                    name
                    for name in errors.escapes
                    if not hierarchy.covers(errors.declared, name)
                )
            )
            if errors.declared is not None
            else ()
        )
        rows[qualified] = {
            "module": info.module,
            "name": info.name,
            "line": info.line,
            "declared": (
                sorted(errors.declared)
                if errors.declared is not None
                else None
            ),
            "transient": sorted(errors.declared_transient),
            "inferred": sorted(errors.escapes),
            "uncovered": list(uncovered),
            "problems": list(errors.declared_problems),
            "entry_point": qualified in entry_points,
        }
    return {
        "kind": ERROR_TABLE_KIND,
        "version": ERROR_TABLE_VERSION,
        "functions": rows,
    }


def _format_names(names: object) -> str:
    if names is None:
        return "(undeclared)"
    if not names:
        return "(none)"
    assert isinstance(names, list)
    return ", ".join(names)


def render_error_table_text(document: Mapping[str, object]) -> str:
    """Human-readable declared-vs-inferred listing."""
    lines: list[str] = []
    functions = document.get("functions")
    assert isinstance(functions, dict)
    for qualified in sorted(functions):
        entry = functions[qualified]
        lines.append(f"{qualified}")
        lines.append(f"  declared: {_format_names(entry['declared'])}")
        if entry["transient"]:
            lines.append(f"  transient: {_format_names(entry['transient'])}")
        lines.append(f"  inferred: {_format_names(entry['inferred'])}")
        for name in entry["uncovered"]:
            lines.append(f"  UNCOVERED: {name}")
        for problem in entry["problems"]:
            lines.append(f"  PROBLEM: {problem}")
    uncovered = sum(len(entry["uncovered"]) for entry in functions.values())
    lines.append(
        f"{len(functions)} functions, {uncovered} uncovered escapes"
    )
    return "\n".join(lines) + "\n"


def render_error_table_markdown(document: Mapping[str, object]) -> str:
    """Markdown table of the declared-vs-inferred error surface."""
    lines = [
        "| Function | Declared | Transient | Inferred | Status |",
        "| --- | --- | --- | --- | --- |",
    ]
    functions = document.get("functions")
    assert isinstance(functions, dict)
    for qualified in sorted(functions):
        entry = functions[qualified]
        if entry["problems"]:
            status = "malformed"
        elif entry["declared"] is None:
            status = "undeclared"
        elif entry["uncovered"]:
            status = "uncovered: " + ", ".join(entry["uncovered"])
        else:
            status = "ok"
        lines.append(
            "| `{0}` | {1} | {2} | {3} | {4} |".format(
                qualified,
                _format_names(entry["declared"]),
                _format_names(entry["transient"]) if entry["transient"] else "—",
                _format_names(entry["inferred"]),
                status,
            )
        )
    return "\n".join(lines) + "\n"
