"""SARIF 2.1.0 rendering of lint findings.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format code-scanning UIs (GitHub code scanning,
VS Code SARIF viewer) consume; ``repro lint --sarif out.sarif`` writes
one so CI annotations come from the same single-parse run as the text
report.  The document carries the full registered rule catalogue as
``tool.driver.rules`` (id, name, summary, help URI into
``docs/static_analysis.md``), every reported finding as a ``result``,
and — unusually for linters — every *suppressed* finding too, mapped to
a SARIF ``suppressions: [{"kind": "inSource"}]`` entry so dashboards can
audit what ``# repro-lint: disable=...`` comments hide rather than
losing them.

The renderer is deliberately dependency-free and emits deterministic
output (sorted rules, findings in engine order, two-space indent) so the
artifact diffs cleanly between CI runs.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

from .engine import registered_rules
from .findings import Finding

__all__ = ["render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Anchor page for every rule's ``helpUri``.
_DOCS_URI = "docs/static_analysis.md"


def _rule_descriptors() -> list[dict[str, object]]:
    descriptors: list[dict[str, object]] = []
    for rule_id in sorted(registered_rules()):
        rule = registered_rules()[rule_id]
        descriptors.append(
            {
                "id": rule_id,
                "name": rule.name,
                "shortDescription": {"text": rule.summary},
                "helpUri": f"{_DOCS_URI}#{rule_id.lower()}",
                "defaultConfiguration": {"level": "error"},
            }
        )
    return descriptors


def _result(
    finding: Finding,
    rule_index: dict[str, int],
    *,
    suppressed: bool,
) -> dict[str, object]:
    result: dict[str, object] = {
        "ruleId": finding.rule_id,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.column,
                    },
                }
            }
        ],
    }
    index = rule_index.get(finding.rule_id)
    if index is not None:
        result["ruleIndex"] = index
    if suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def render_sarif(
    findings: Sequence[Finding],
    *,
    suppressed: Iterable[Finding] = (),
) -> str:
    """Render *findings* (plus in-source-*suppressed* ones) as SARIF."""
    rules = _rule_descriptors()
    rule_index = {
        str(descriptor["id"]): position
        for position, descriptor in enumerate(rules)
    }
    results = [
        _result(finding, rule_index, suppressed=False) for finding in findings
    ]
    results.extend(
        _result(finding, rule_index, suppressed=True)
        for finding in suppressed
    )
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": _DOCS_URI,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
