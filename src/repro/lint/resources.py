"""Resource-lifecycle analysis: acquisitions must release on every path.

The serving-layer failure mode this guards against: an
``InfeasibleError`` mid-sweep abandons an open process pool, span sink
or LP-model checkpoint, and the leak only shows up under sustained
traffic.  The analysis tracks *acquisitions* inside every module-level
function:

==================  ===================================================
``pool``            ``ProcessPoolExecutor`` / ``ThreadPoolExecutor`` /
                    ``Pool`` constructions (released by ``shutdown`` /
                    ``terminate``)
``file``            ``open(...)`` handles (released by ``close``)
``span-sink``       ``JsonlSpanSink(...)`` trace sinks (``close``)
``checkpoint``      ``<model>.checkpoint()`` LP build-state snapshots
                    (released by ``<model>.rollback(mark)``)
==================  ===================================================

and *scopes* — ``span(...)``, ``telemetry_scope()``, ``collect(...)``
context managers whose ``__exit__`` is what closes the measurement.

An acquisition is **exception-safe** only when it is ``with``-managed
(directly, re-entered via ``with name:`` / ``closing(name)`` /
``enter_context(...)``) or released inside the ``finally`` of a ``try``
that starts no later than the statement after the acquisition — the two
idioms whose release Python guarantees on exceptional paths.  Releases
anywhere else are classified over the function's CFG
(:mod:`repro.lint.cfg`): if some fall-through path reaches the exit
without passing a release block the resource leaks outright; if every
fall-through path releases, the leak is exception-only (any raise
between acquisition and release abandons it), which is still a finding
— that is exactly the mid-sweep case above.

Scopes have no release method at all, so anything but ``with`` /
``enter_context`` usage is reported (R604).  Findings are consumed by
rules R601/R604 in :mod:`repro.lint.error_rules`; methods are out of
scope, matching the call graph's module-level-functions approximation.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from .astutils import dotted_name
from .callgraph import FunctionInfo
from .cfg import CALL, ControlFlowGraph, build_cfg
from .interproc import ProgramContext

__all__ = [
    "ResourceReport",
    "analyze_resources",
]

#: Constructor name (tail) -> (resource kind, release method names).
RESOURCE_KINDS: Mapping[str, tuple[str, frozenset[str]]] = {
    "ProcessPoolExecutor": ("pool", frozenset({"shutdown", "terminate"})),
    "ThreadPoolExecutor": ("pool", frozenset({"shutdown", "terminate"})),
    "Pool": ("pool", frozenset({"shutdown", "terminate", "close", "join"})),
    "open": ("file", frozenset({"close"})),
    "JsonlSpanSink": ("span-sink", frozenset({"close"})),
}

#: Method-call acquisitions: attribute name -> (kind, release methods on
#: the *same receiver*).
METHOD_ACQUISITIONS: Mapping[str, tuple[str, frozenset[str]]] = {
    "checkpoint": ("checkpoint", frozenset({"rollback"})),
}

#: Calls producing measurement scopes that must be ``with``-managed.
SCOPE_CALLEES = frozenset({"span", "telemetry_scope", "collect"})

#: Leak classifications (the ``reason`` field of :class:`ResourceLeak`).
NEVER_RELEASED = "never-released"
EXCEPTIONAL_PATH = "exceptional-path"
FALLTHROUGH_PATH = "fallthrough-path"
GAP_BEFORE_TRY = "gap-before-try"


@dataclass(frozen=True)
class ResourceLeak:
    """One acquisition that is not released on every path."""

    #: Qualified function holding the acquisition.
    function: str
    #: Resource kind (``pool`` / ``file`` / ``span-sink`` / ``checkpoint``).
    kind: str
    #: Bound variable name (empty when the value is dropped).
    name: str
    #: 1-based line of the acquisition.
    line: int
    #: Why the acquisition is unsafe (one of the module constants).
    reason: str
    #: Human-readable elaboration.
    detail: str


@dataclass(frozen=True)
class ScopeProblem:
    """One ``span``/``telemetry_scope``/``collect`` not ``with``-managed."""

    function: str
    #: The scope callee name.
    callee: str
    line: int
    detail: str


@dataclass(frozen=True)
class ResourceReport:
    """All lifecycle findings of one analyzed program."""

    leaks: tuple[ResourceLeak, ...]
    scope_problems: tuple[ScopeProblem, ...]


@dataclass(frozen=True)
class _Acquisition:
    kind: str
    name: str
    statement: ast.stmt
    value: ast.Call
    release_methods: frozenset[str]
    #: Receiver name for method acquisitions (``model`` in
    #: ``model.checkpoint()``), ``None`` for constructors.
    receiver: str | None


def _call_tail(node: ast.Call) -> str | None:
    name = dotted_name(node.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _resource_call(node: ast.Call) -> tuple[str, frozenset[str], str | None] | None:
    """Classify *node* as a resource acquisition, if it is one."""
    tail = _call_tail(node)
    if tail is None:
        return None
    if tail in RESOURCE_KINDS and not isinstance(node.func, ast.Attribute):
        kind, releases = RESOURCE_KINDS[tail]
        return kind, releases, None
    if (
        tail in RESOURCE_KINDS
        and isinstance(node.func, ast.Attribute)
        and tail != "open"
    ):
        # Qualified constructors (``futures.ProcessPoolExecutor(...)``).
        kind, releases = RESOURCE_KINDS[tail]
        return kind, releases, None
    if isinstance(node.func, ast.Attribute) and tail in METHOD_ACQUISITIONS:
        kind, releases = METHOD_ACQUISITIONS[tail]
        receiver = None
        if isinstance(node.func.value, ast.Name):
            receiver = node.func.value.id
        return kind, releases, receiver
    return None


def _statements(body: list[ast.stmt]) -> Iterator[ast.stmt]:
    """All statements of a function body, nested defs excluded."""
    for statement in body:
        yield statement
        children: list[ast.stmt] = []
        if isinstance(statement, (ast.If, ast.For, ast.AsyncFor, ast.While)):
            children = [*statement.body, *statement.orelse]
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            children = list(statement.body)
        elif isinstance(statement, ast.Try):
            children = [
                *statement.body,
                *(s for handler in statement.handlers for s in handler.body),
                *statement.orelse,
                *statement.finalbody,
            ]
        elif isinstance(statement, ast.Match):
            children = [s for case in statement.cases for s in case.body]
        if children:
            yield from _statements(children)


def _own_expressions(statement: ast.stmt) -> Iterator[ast.AST]:
    stack: list[ast.AST] = [statement]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            stack.append(child)


def _with_managed_calls(info: FunctionInfo) -> set[int]:
    """``id()`` of every Call used directly as a ``with`` item or passed
    to ``enter_context`` / ``closing``."""
    managed: set[int] = set()
    for statement in _statements(list(info.node.body)):
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            for item in statement.items:
                if isinstance(item.context_expr, ast.Call):
                    managed.add(id(item.context_expr))
    for statement in _statements(list(info.node.body)):
        for node in _own_expressions(statement):
            if not isinstance(node, ast.Call):
                continue
            tail = _call_tail(node)
            if tail in ("enter_context", "closing"):
                for argument in node.args:
                    if isinstance(argument, ast.Call):
                        managed.add(id(argument))
    return managed


def _with_entered_names(info: FunctionInfo) -> set[str]:
    """Names later entered as context managers (``with name:`` or
    ``with closing(name):``), whose ``__exit__`` performs the release."""
    names: set[str] = set()
    for statement in _statements(list(info.node.body)):
        if not isinstance(statement, (ast.With, ast.AsyncWith)):
            continue
        for item in statement.items:
            expr = item.context_expr
            if isinstance(expr, ast.Name):
                names.add(expr.id)
            elif isinstance(expr, ast.Call):
                tail = _call_tail(expr)
                if tail in ("closing", "enter_context"):
                    for argument in expr.args:
                        if isinstance(argument, ast.Name):
                            names.add(argument.id)
    return names


def _release_calls(
    info: FunctionInfo, acquisition: _Acquisition
) -> list[ast.Call]:
    """Calls that release *acquisition* (``name.close()``-style, or
    ``receiver.rollback(...)`` for checkpoints)."""
    owner = (
        acquisition.receiver
        if acquisition.receiver is not None
        else acquisition.name
    )
    if not owner:
        return []
    releases: list[ast.Call] = []
    for statement in _statements(list(info.node.body)):
        for node in _own_expressions(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in acquisition.release_methods
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == owner
            ):
                releases.append(node)
    return releases


def _finally_protected(
    info: FunctionInfo, acquisition: _Acquisition, releases: list[ast.Call]
) -> tuple[bool, str | None]:
    """Whether a release in some ``finally`` covers the acquisition.

    Covered positions: the acquisition statement sits inside the ``try``
    body itself, or it immediately precedes the ``try`` in the same
    statement list (the standard acquire-then-``try/finally`` idiom).
    Returns ``(protected, gap_detail)`` — *gap_detail* is set when a
    ``finally`` release exists but statements between the acquisition
    and the ``try`` leave an unprotected window.
    """
    release_ids = {id(node) for node in releases}

    def contains_release(body: list[ast.stmt]) -> bool:
        for statement in _statements(list(body)):
            for node in _own_expressions(statement):
                if id(node) in release_ids:
                    return True
        return False

    def contains_statement(body: list[ast.stmt], target: ast.stmt) -> bool:
        return any(s is target for s in _statements(list(body)))

    gap: str | None = None
    for statement in _statements(list(info.node.body)):
        if not isinstance(statement, ast.Try):
            continue
        if not contains_release(statement.finalbody):
            continue
        if contains_statement(statement.body, acquisition.statement):
            return True, None
        # Acquire-before-try: find the try in the lists that could hold
        # both; protected only when nothing runs in between.
        for body in _sibling_lists(info.node):
            if statement not in body or acquisition.statement not in body:
                continue
            acq_index = body.index(acquisition.statement)
            try_index = body.index(statement)
            if try_index == acq_index + 1:
                return True, None
            if try_index > acq_index:
                gap = (
                    f"statements between the acquisition (line "
                    f"{acquisition.statement.lineno}) and the protecting "
                    f"try (line {statement.lineno}) can raise and leak it"
                )
    return False, gap


def _sibling_lists(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[list[ast.stmt]]:
    """Every statement list of the function body (nested defs excluded)."""
    stack: list[list[ast.stmt]] = [list(node.body)]
    while stack:
        body = stack.pop()
        yield body
        for statement in body:
            if isinstance(statement, (ast.If, ast.For, ast.AsyncFor, ast.While)):
                stack.append(list(statement.body))
                stack.append(list(statement.orelse))
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                stack.append(list(statement.body))
            elif isinstance(statement, ast.Try):
                stack.append(list(statement.body))
                for handler in statement.handlers:
                    stack.append(list(handler.body))
                stack.append(list(statement.orelse))
                stack.append(list(statement.finalbody))
            elif isinstance(statement, ast.Match):
                for case in statement.cases:
                    stack.append(list(case.body))


def _fallthrough_leaks(
    cfg: ControlFlowGraph,
    acquisition: _Acquisition,
    releases: list[ast.Call],
) -> bool:
    """Whether some CFG path from the acquisition reaches the exit
    without passing a release call (the fall-through classification; the
    CFG does not model implicit exception edges outside ``try`` bodies,
    which is exactly why a ``True`` here means the leak is unconditional,
    not merely exceptional)."""
    release_ids = {id(node) for node in releases}
    acquired_block: int | None = None
    release_blocks: set[int] = set()
    for block in cfg.blocks:
        for event in block.events:
            if id(event.node) == id(acquisition.value):
                acquired_block = block.index
            if event.kind == CALL and id(event.node) in release_ids:
                release_blocks.add(block.index)
    if acquired_block is None:
        return False
    frontier = [acquired_block]
    seen = {acquired_block}
    while frontier:
        current = frontier.pop()
        if current == cfg.exit:
            return True
        if current != acquired_block and current in release_blocks:
            continue
        for successor in cfg.blocks[current].successors:
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return False


def _function_leaks(info: FunctionInfo) -> Iterator[ResourceLeak]:
    managed_calls = _with_managed_calls(info)
    entered_names = _with_entered_names(info)
    acquisitions: list[_Acquisition] = []
    for statement in _statements(list(info.node.body)):
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            continue
        value: ast.expr | None = None
        targets: list[ast.expr] = []
        if isinstance(statement, ast.Assign):
            value = statement.value
            targets = statement.targets
        elif isinstance(statement, ast.AnnAssign):
            value = statement.value
            targets = [statement.target]
        elif isinstance(statement, ast.Expr):
            value = statement.value
        else:
            continue
        if not isinstance(value, ast.Call) or id(value) in managed_calls:
            continue
        classified = _resource_call(value)
        if classified is None:
            continue
        kind, release_methods, receiver = classified
        name = ""
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            name = targets[0].id
        acquisitions.append(
            _Acquisition(
                kind=kind,
                name=name,
                statement=statement,
                value=value,
                release_methods=release_methods,
                receiver=receiver,
            )
        )

    cfg: ControlFlowGraph | None = None
    for acquisition in acquisitions:
        if acquisition.name and acquisition.name in entered_names:
            continue
        releases = _release_calls(info, acquisition)
        label = acquisition.name or f"<dropped {acquisition.kind}>"
        if not releases:
            yield ResourceLeak(
                function=info.qualified,
                kind=acquisition.kind,
                name=acquisition.name,
                line=acquisition.value.lineno,
                reason=NEVER_RELEASED,
                detail=(
                    f"{acquisition.kind} {label!r} is never released; "
                    "manage it with 'with' or release it in a try/finally"
                ),
            )
            continue
        protected, gap = _finally_protected(info, acquisition, releases)
        if protected:
            continue
        if gap is not None:
            yield ResourceLeak(
                function=info.qualified,
                kind=acquisition.kind,
                name=acquisition.name,
                line=acquisition.value.lineno,
                reason=GAP_BEFORE_TRY,
                detail=f"{acquisition.kind} {label!r}: {gap}",
            )
            continue
        if cfg is None:
            cfg = build_cfg(info.node)
        if _fallthrough_leaks(cfg, acquisition, releases):
            yield ResourceLeak(
                function=info.qualified,
                kind=acquisition.kind,
                name=acquisition.name,
                line=acquisition.value.lineno,
                reason=FALLTHROUGH_PATH,
                detail=(
                    f"{acquisition.kind} {label!r} reaches the function "
                    "exit without a release on some fall-through path"
                ),
            )
        else:
            yield ResourceLeak(
                function=info.qualified,
                kind=acquisition.kind,
                name=acquisition.name,
                line=acquisition.value.lineno,
                reason=EXCEPTIONAL_PATH,
                detail=(
                    f"{acquisition.kind} {label!r} is released on every "
                    "fall-through path but leaks when an exception "
                    "interrupts the function; move the release into a "
                    "finally or use 'with'"
                ),
            )


def _shadowed_names(info: FunctionInfo) -> set[str]:
    """Function names defined inside *info* (nested defs shadow the obs
    helpers: a local ``collect`` closure is not ``repro.obs.collect``)."""
    shadowed: set[str] = set()
    for node in ast.walk(info.node):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not info.node:
                shadowed.add(node.name)
    return shadowed


def _function_scope_problems(
    info: FunctionInfo, module_names: frozenset[str]
) -> Iterator[ScopeProblem]:
    managed_calls = _with_managed_calls(info)
    entered_names = _with_entered_names(info)
    shadowed = _shadowed_names(info) | module_names
    for statement in _statements(list(info.node.body)):
        assigned: str | None = None
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            continue
        if isinstance(statement, ast.Assign) and (
            len(statement.targets) == 1
            and isinstance(statement.targets[0], ast.Name)
        ):
            assigned = statement.targets[0].id
        for node in _own_expressions(statement):
            if not isinstance(node, ast.Call) or id(node) in managed_calls:
                continue
            tail = _call_tail(node)
            if tail not in SCOPE_CALLEES or tail in shadowed:
                continue
            if isinstance(node.func, ast.Attribute):
                # ``module.span`` is fine to track, but skip method
                # calls like ``self.span`` whose receiver we cannot type.
                if not isinstance(node.func.value, ast.Name):
                    continue
            if (
                assigned is not None
                and isinstance(statement, ast.Assign)
                and statement.value is node
                and assigned in entered_names
            ):
                continue
            yield ScopeProblem(
                function=info.qualified,
                callee=tail,
                line=node.lineno,
                detail=(
                    f"{tail}(...) creates a measurement scope that is "
                    "never entered with 'with'; its __exit__ is what "
                    "closes the span/scope on exceptional paths"
                ),
            )


def analyze_resources(program: ProgramContext) -> ResourceReport:
    """Run the lifecycle analysis over every module-level function."""
    leaks: list[ResourceLeak] = []
    scope_problems: list[ScopeProblem] = []
    module_functions: dict[str, set[str]] = {}
    for info in program.calls.functions.values():
        module_functions.setdefault(info.module, set()).add(info.name)
    for qualified in sorted(program.calls.functions):
        info = program.calls.functions[qualified]
        leaks.extend(_function_leaks(info))
        locally_defined = frozenset(
            module_functions.get(info.module, set()) & SCOPE_CALLEES
        )
        scope_problems.extend(
            _function_scope_problems(info, locally_defined)
        )
    return ResourceReport(
        leaks=tuple(leaks), scope_problems=tuple(scope_problems)
    )
