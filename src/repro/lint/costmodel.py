"""Static asymptotic-cost inference and the ``repro cost`` table.

Every module-level function of the analyzed program gets a symbolic
upper bound on its running time, expressed over the small vocabulary of
:data:`repro._validation.COST_SYMBOLS`:

==========  =====================================================
``n``       network nodes
``m``       network edges
``q``       quorums in the system
``c``       candidate placements / sweep width
==========  =====================================================

A bound (:class:`CostBound`) is a sum of monomials; each
:class:`Monomial` is a product of symbol powers, optional ``log``
factors (display-only: they never decide a comparison) and optional
``exp`` markers for exponential growth (``exp(n)``, also spelled
``2**n``).  Inference walks each function body once, multiplying the
enclosing-loop context through ``for`` statements and comprehensions
whose iterables it *recognizes* — ``range(x)`` / ``len(x)`` chains,
``enumerate`` / ``zip`` / ``sorted`` wrappers, and name heuristics
(anything mentioning nodes maps to ``n``, edges to ``m``, quorums to
``q``, candidates to ``c``).  Costs compose interprocedurally along the
resolved call graph: each call site contributes *loop context times
callee summary*, declared costs (``@cost``) are trusted as summaries,
and undeclared call cycles are widened to the ``unbounded`` top element
once their degree exceeds :data:`WIDENING_CAP` — the fixpoint therefore
always terminates.

The analysis is **optimistic about what it cannot see**, in exactly the
spirit of the effect tier: unrecognized iterables and ``while`` loops
count as constant trip counts, method calls and third-party functions
as constant cost.  It under-approximates, so "inferred exceeds
declared" (R500) is always a real finding, while a clean run is
evidence, not proof — ``--profile-check`` (R504) closes the loop
empirically with measured timings.

Besides the inference this module owns the declaration parser for
``@cost``, the witness scans the R501-R503 rules consume (allocations
inside symbolic loops, dense all-pairs :class:`~repro.network.metric.
Metric` builds, ``*_reference`` oracle calls), the ``repro cost`` table
document and its renderers, and the schema of the R504 telemetry file.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from .._validation import COST_SCALES, COST_SYMBOLS, cost_expression_problems
from ..exceptions import LintError
from .astutils import callee_name, dotted_name
from .callgraph import FunctionInfo
from .effects import entry_point_names
from .interproc import ProgramContext

__all__ = [
    "Monomial",
    "CostBound",
    "CostDeclaration",
    "LocalCost",
    "FunctionCost",
    "AllocationSite",
    "DenseBuildSite",
    "ReferenceCallSite",
    "parse_cost_expression",
    "declared_cost",
    "analyze_costs",
    "solver_reachable",
    "reachable_from",
    "build_cost_table",
    "render_cost_table_text",
    "render_cost_table_markdown",
    "render_cost_table_json",
    "CostObservation",
    "load_cost_telemetry",
    "validate_cost_telemetry",
    "stale_declarations",
    "COST_TABLE_KIND",
    "COST_TABLE_VERSION",
    "TELEMETRY_KIND",
    "TELEMETRY_VERSION",
    "WIDENING_CAP",
    "R504_TOLERANCE",
]

#: Document identifier of the ``repro cost`` table.
COST_TABLE_KIND = "repro-cost-table"
#: Schema version of the cost-table document.
COST_TABLE_VERSION = 1
#: Document identifier of the R504 telemetry file.
TELEMETRY_KIND = "repro-cost-telemetry"
#: Schema version of the R504 telemetry file.
TELEMETRY_VERSION = 1
#: Per-symbol polynomial degree beyond which an undeclared call cycle is
#: widened to the unbounded top element.  Real code in this repository
#: peaks at cubic; anything the fixpoint drives past this cap is growing
#: through recursion, not through honest loop nesting.
WIDENING_CAP = 6
#: Slack added to a declared degree before R504 calls a measured
#: exponent a contradiction.  Log factors, cache warmup and constant
#: overheads all bend a two-point log-log fit; one-third of a degree is
#: comfortably above that noise while still catching an undeclared
#: extra factor of ``n``.
R504_TOLERANCE = 0.35

_SYMBOL_INDEX: Mapping[str, int] = {
    symbol: index for index, symbol in enumerate(COST_SYMBOLS)
}
_ZEROS = (0,) * len(COST_SYMBOLS)

#: Substring heuristics mapping iterable names to cost symbols, first
#: match wins.  ``system`` iterates a quorum system's quorums; ``job``
#: and ``machine`` cover the GAP reduction (jobs are quorums, machines
#: are nodes).
_NAME_HINTS: tuple[tuple[str, str], ...] = (
    ("node", "n"),
    ("vertex", "n"),
    ("machine", "n"),
    ("edge", "m"),
    ("quorum", "q"),
    ("system", "q"),
    ("job", "q"),
    ("cand", "c"),
)

#: Iterable wrappers that preserve (or index) what they iterate.
_TRANSPARENT_ITERABLES = frozenset(
    {"enumerate", "sorted", "reversed", "list", "tuple", "set", "frozenset"}
)

#: numpy allocation constructors R501 watches inside symbolic loops.
_ALLOCATORS = frozenset(
    {
        "zeros", "ones", "empty", "full", "eye", "arange", "linspace",
        "zeros_like", "ones_like", "empty_like", "full_like",
    }
)

#: ``*_reference`` scalar oracles (R503 / the R203 pairing convention).
_REFERENCE_PATTERN = re.compile(r"_reference$")


@dataclass(frozen=True)
class Monomial:
    """One product term: symbol powers, log factors, exponential markers.

    ``poly``, ``logs`` and ``expo`` are parallel to
    :data:`~repro._validation.COST_SYMBOLS`.  ``logs`` is display-only —
    coverage comparisons ignore it in both directions, so ``log(n)``
    can annotate a binary search without ever deciding a finding.
    """

    poly: tuple[int, ...] = _ZEROS
    logs: tuple[int, ...] = _ZEROS
    expo: tuple[int, ...] = _ZEROS

    @staticmethod
    def unit() -> "Monomial":
        """The constant monomial ``1``."""
        return Monomial()

    @staticmethod
    def symbol(name: str) -> "Monomial":
        """The degree-one monomial of one cost symbol."""
        index = _SYMBOL_INDEX[name]
        poly = tuple(1 if i == index else 0 for i in range(len(COST_SYMBOLS)))
        return Monomial(poly=poly)

    def times(self, other: "Monomial") -> "Monomial":
        """The product of two monomials (exponents add)."""
        return Monomial(
            poly=tuple(a + b for a, b in zip(self.poly, other.poly)),
            logs=tuple(a + b for a, b in zip(self.logs, other.logs)),
            expo=tuple(a + b for a, b in zip(self.expo, other.expo)),
        )

    def covered_by(self, declared: "Monomial") -> bool:
        """Whether *declared* is an upper bound for this monomial.

        Per symbol: an exponential on the declared side absorbs any
        polynomial degree; otherwise polynomial degrees compare
        pointwise.  Log factors never decide the comparison.
        """
        return all(
            se <= de and (sp <= dp or de >= 1)
            for sp, se, dp, de in zip(
                self.poly, self.expo, declared.poly, declared.expo
            )
        )

    def dominates(self, other: "Monomial") -> bool:
        """Whether this monomial renders *other* redundant in a sum."""
        return (
            all(a >= b for a, b in zip(self.poly, other.poly))
            and all(a >= b for a, b in zip(self.logs, other.logs))
            and all(a >= b for a, b in zip(self.expo, other.expo))
        )

    @property
    def constant(self) -> bool:
        """Whether this is the constant monomial (no symbol appears)."""
        return not any(self.poly) and not any(self.expo)

    def degree(self, symbol: str) -> float:
        """Polynomial degree in *symbol*; ``inf`` when exponential."""
        index = _SYMBOL_INDEX[symbol]
        if self.expo[index]:
            return float("inf")
        return float(self.poly[index])

    def render(self) -> str:
        """Canonical text form, ``"1"`` for the constant monomial."""
        factors: list[str] = []
        for index, symbol in enumerate(COST_SYMBOLS):
            if self.expo[index]:
                factors.append(f"exp({symbol})")
            if self.poly[index] == 1:
                factors.append(symbol)
            elif self.poly[index] > 1:
                factors.append(f"{symbol}**{self.poly[index]}")
        for index, symbol in enumerate(COST_SYMBOLS):
            factors.extend(f"log({symbol})" for _ in range(self.logs[index]))
        return " * ".join(factors) if factors else "1"

    def sort_key(self) -> tuple[int, int, tuple[int, ...], str]:
        """Stable ordering: heaviest terms first within a rendered sum."""
        return (
            -sum(self.expo),
            -sum(self.poly),
            tuple(-p for p in self.poly),
            self.render(),
        )


@dataclass(frozen=True)
class CostBound:
    """A sum of monomials, or the ``unbounded`` top element."""

    monomials: frozenset[Monomial] = frozenset({Monomial.unit()})
    unbounded: bool = False
    #: Why the bound was widened to top (set only when ``unbounded``).
    reason: str = ""

    @staticmethod
    def constant() -> "CostBound":
        """The O(1) bound."""
        return CostBound()

    @staticmethod
    def top(reason: str) -> "CostBound":
        """The unbounded top element, carrying its widening witness."""
        return CostBound(monomials=frozenset(), unbounded=True, reason=reason)

    @staticmethod
    def of(monomials: Iterable[Monomial]) -> "CostBound":
        """A normalized bound over *monomials* (dominated terms dropped)."""
        terms = set(monomials) or {Monomial.unit()}
        kept = {
            term
            for term in terms
            if not any(
                other != term and other.dominates(term) for other in terms
            )
        }
        return CostBound(monomials=frozenset(kept))

    def plus(self, other: "CostBound") -> "CostBound":
        """The sum (pointwise max) of two bounds."""
        if self.unbounded:
            return self
        if other.unbounded:
            return other
        return CostBound.of(self.monomials | other.monomials)

    def times_monomial(self, factor: Monomial) -> "CostBound":
        """This bound scaled by one context monomial."""
        if self.unbounded:
            return self
        return CostBound.of(term.times(factor) for term in self.monomials)

    def covered_by(self, declared: "CostBound") -> bool:
        """Whether *declared* upper-bounds this inferred cost."""
        if declared.unbounded:
            return True
        if self.unbounded:
            return False
        return all(
            any(term.covered_by(upper) for upper in declared.monomials)
            for term in self.monomials
        )

    def degree(self, symbol: str) -> float:
        """Maximum degree in *symbol* across monomials; ``inf`` on top."""
        if self.unbounded:
            return float("inf")
        return max(term.degree(symbol) for term in self.monomials)

    def render(self) -> str:
        """Canonical text form, ``"unbounded"`` for the top element."""
        if self.unbounded:
            return "unbounded"
        ordered = sorted(self.monomials, key=Monomial.sort_key)
        return " + ".join(term.render() for term in ordered)

    def exceeds_cap(self) -> bool:
        """Whether any monomial's degree passed :data:`WIDENING_CAP`."""
        return any(
            degree > WIDENING_CAP
            for term in self.monomials
            for degree in (*term.poly, *term.expo)
        )


def parse_cost_expression(text: str) -> tuple[CostBound | None, tuple[str, ...]]:
    """Parse a ``@cost`` expression string into a :class:`CostBound`.

    Returns ``(bound, ())`` on success and ``(None, problems)`` when the
    expression violates the grammar — the same grammar
    :func:`repro._validation.cost_expression_problems` enforces at
    decoration time, so the evaluator below only ever sees valid shapes.
    """
    problems = cost_expression_problems(text)
    if problems:
        return None, problems
    tree = ast.parse(text, mode="eval")
    return _evaluate(tree.body), ()


def _evaluate(node: ast.expr) -> CostBound:
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Add):
            return _evaluate(node.left).plus(_evaluate(node.right))
        if isinstance(node.op, ast.Mult):
            left = _evaluate(node.left)
            right = _evaluate(node.right)
            return CostBound.of(
                a.times(b) for a in left.monomials for b in right.monomials
            )
        if isinstance(node.op, ast.Pow):
            if isinstance(node.left, ast.Name):
                assert isinstance(node.right, ast.Constant)
                base = Monomial.symbol(node.left.id)
                result = Monomial.unit()
                for _ in range(int(node.right.value)):
                    result = result.times(base)
                return CostBound.of([result])
            # the 2**sym exponential spelling
            assert isinstance(node.right, ast.Name)
            return CostBound.of([_exponential(node.right.id)])
    if isinstance(node, ast.Name):
        return CostBound.of([Monomial.symbol(node.id)])
    if isinstance(node, ast.Constant):
        return CostBound.constant()
    assert isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
    argument = node.args[0]
    assert isinstance(argument, ast.Name)
    if node.func.id == "log":
        index = _SYMBOL_INDEX[argument.id]
        logs = tuple(
            1 if i == index else 0 for i in range(len(COST_SYMBOLS))
        )
        return CostBound.of([Monomial(logs=logs)])
    return CostBound.of([_exponential(argument.id)])


def _exponential(symbol: str) -> Monomial:
    index = _SYMBOL_INDEX[symbol]
    expo = tuple(1 if i == index else 0 for i in range(len(COST_SYMBOLS)))
    return Monomial(expo=expo)


@dataclass(frozen=True)
class CostDeclaration:
    """One parsed ``@cost`` decorator."""

    #: The raw expression string as written in the decorator.
    expression: str
    #: The parsed bound, ``None`` when the expression is malformed.
    bound: CostBound | None
    #: The ``scale=`` tag, when present.
    scale: str | None
    #: 1-based line of the decorator.
    line: int
    #: Malformed-declaration messages (bad grammar, non-literal args).
    problems: tuple[str, ...]


def declared_cost(info: FunctionInfo) -> CostDeclaration | None:
    """Parse a ``@cost(...)`` decorator off one function, statically."""
    for decorator in info.node.decorator_list:
        if not isinstance(decorator, ast.Call):
            continue
        name = dotted_name(decorator.func)
        if name is None or name.rsplit(".", 1)[-1] != "cost":
            continue
        problems: list[str] = []
        expression = ""
        if len(decorator.args) != 1:
            problems.append("cost() takes exactly one expression string")
        elif isinstance(decorator.args[0], ast.Constant) and isinstance(
            decorator.args[0].value, str
        ):
            expression = decorator.args[0].value
        else:
            problems.append("the cost expression must be a string literal")
        scale: str | None = None
        for keyword in decorator.keywords:
            if keyword.arg != "scale":
                problems.append(
                    f"cost() got an unexpected keyword {keyword.arg!r}"
                )
            elif isinstance(keyword.value, ast.Constant) and isinstance(
                keyword.value.value, str
            ):
                if keyword.value.value in COST_SCALES:
                    scale = keyword.value.value
                else:
                    problems.append(
                        f"unknown cost scale {keyword.value.value!r}; "
                        f"known: {sorted(COST_SCALES)}"
                    )
            else:
                problems.append("scale= must be a string literal")
        bound: CostBound | None = None
        if expression:
            bound, parse_problems = parse_cost_expression(expression)
            problems.extend(parse_problems)
        return CostDeclaration(
            expression=expression,
            bound=bound,
            scale=scale,
            line=decorator.lineno,
            problems=tuple(problems),
        )
    return None


@dataclass(frozen=True)
class AllocationSite:
    """One array allocation inside a symbolic loop (R501 witness)."""

    line: int
    detail: str
    context: Monomial


@dataclass(frozen=True)
class DenseBuildSite:
    """One dense all-pairs metric materialization (R502 witness)."""

    line: int
    detail: str


@dataclass(frozen=True)
class ReferenceCallSite:
    """One ``*_reference`` oracle call (R503 witness)."""

    line: int
    text: str


@dataclass(frozen=True)
class LocalCost:
    """What one function's own body contributes, before call composition."""

    #: Loop-structure bound of the body itself.
    work: CostBound
    #: Loop context at each call expression, keyed by ``(line, text)``
    #: so the resolved :class:`~repro.lint.callgraph.CallSite` list can
    #: be joined back to its context.
    call_contexts: Mapping[tuple[int, str], Monomial]
    allocations: tuple[AllocationSite, ...]
    dense_builds: tuple[DenseBuildSite, ...]
    reference_calls: tuple[ReferenceCallSite, ...]


def _hint_symbol(name: str) -> str | None:
    lowered = name.lower()
    if lowered in _SYMBOL_INDEX:
        return lowered
    for fragment, symbol in _NAME_HINTS:
        if fragment in lowered:
            return symbol
    return None


def _iterable_symbol(node: ast.expr) -> str | None:
    """The cost symbol an iterable expression ranges over, if recognized."""
    if isinstance(node, ast.Name):
        return _hint_symbol(node.id)
    if isinstance(node, ast.Attribute):
        return _hint_symbol(node.attr)
    if isinstance(node, ast.Call):
        name = callee_name(node)
        if name == "range":
            # the trip count is governed by stop: args[1] in the
            # (start, stop[, step]) form, args[0] otherwise
            ordered = (
                [node.args[1], node.args[0], *node.args[2:]]
                if len(node.args) >= 2
                else list(node.args)
            )
            for argument in ordered:
                symbol = _iterable_symbol(argument)
                if symbol is not None:
                    return symbol
            return None
        if name == "len" and node.args:
            return _iterable_symbol(node.args[0])
        if name == "zip":
            for argument in node.args:
                symbol = _iterable_symbol(argument)
                if symbol is not None:
                    return symbol
            return None
        if name in _TRANSPARENT_ITERABLES and node.args:
            return _iterable_symbol(node.args[0])
        if name is not None:
            return _hint_symbol(name)
    if isinstance(node, ast.Subscript):
        return _iterable_symbol(node.value)
    return None


def _is_dense_metric_build(node: ast.Call) -> str | None:
    """Describe *node* as a dense all-pairs metric build, or ``None``."""
    name = callee_name(node)
    dotted = dotted_name(node.func)
    if name == "from_network" or (
        dotted is not None and dotted.endswith("Metric.from_network")
    ):
        return "Metric.from_network materializes the all-pairs matrix"
    if name == "Metric":
        return "Metric(...) holds a dense all-pairs matrix"
    if name == "dijkstra_batched":
        has_sources = len(node.args) >= 2 or any(
            keyword.arg == "sources"
            and not (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is None
            )
            for keyword in node.keywords
        )
        if not has_sources:
            return "dijkstra_batched over all sources is an all-pairs build"
    return None


class _BodyScan:
    """One pass over a function body, threading the loop-context monomial."""

    def __init__(self) -> None:
        self.work: set[Monomial] = {Monomial.unit()}
        self.call_contexts: dict[tuple[int, str], Monomial] = {}
        self.allocations: list[AllocationSite] = []
        self.dense_builds: list[DenseBuildSite] = []
        self.reference_calls: list[ReferenceCallSite] = []

    def scan(self, body: Sequence[ast.stmt], context: Monomial) -> None:
        for statement in body:
            if isinstance(statement, (ast.For, ast.AsyncFor)):
                symbol = _iterable_symbol(statement.iter)
                inner = (
                    context.times(Monomial.symbol(symbol))
                    if symbol is not None
                    else context
                )
                self.work.add(inner)
                self.expr(statement.iter, context)
                self.expr(statement.target, context)
                self.scan(statement.body, inner)
                self.scan(statement.orelse, context)
            elif isinstance(statement, ast.While):
                # Unknown trip count: optimistically constant (documented).
                self.expr(statement.test, context)
                self.scan(statement.body, context)
                self.scan(statement.orelse, context)
            elif isinstance(statement, ast.If):
                self.expr(statement.test, context)
                self.scan(statement.body, context)
                self.scan(statement.orelse, context)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                for item in statement.items:
                    self.expr(item.context_expr, context)
                self.scan(statement.body, context)
            elif isinstance(statement, ast.Try):
                self.scan(statement.body, context)
                for handler in statement.handlers:
                    self.scan(handler.body, context)
                self.scan(statement.orelse, context)
                self.scan(statement.finalbody, context)
            elif isinstance(statement, ast.Match):
                self.expr(statement.subject, context)
                for case in statement.cases:
                    self.scan(case.body, context)
            elif isinstance(
                statement,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                # Nested definitions run in a different dynamic context;
                # the call graph skips them, so the cost model does too.
                continue
            else:
                for child in ast.iter_child_nodes(statement):
                    if isinstance(child, ast.expr):
                        self.expr(child, context)

    def expr(self, node: ast.expr, context: Monomial) -> None:
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            inner = context
            for generator in node.generators:
                symbol = _iterable_symbol(generator.iter)
                if symbol is not None:
                    inner = inner.times(Monomial.symbol(symbol))
            self.work.add(inner)
            for index, generator in enumerate(node.generators):
                # The first iterable is evaluated in the outer context;
                # later ones re-evaluate per outer element.
                self.expr(generator.iter, context if index == 0 else inner)
                for condition in generator.ifs:
                    self.expr(condition, inner)
            if isinstance(node, ast.DictComp):
                self.expr(node.key, inner)
                self.expr(node.value, inner)
            else:
                self.expr(node.elt, inner)
            return
        if isinstance(node, ast.Lambda):
            self.expr(node.body, context)
            return
        if isinstance(node, ast.Call):
            self.record_call(node, context)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child, context)

    def record_call(self, node: ast.Call, context: Monomial) -> None:
        text = dotted_name(node.func) or "<dynamic>"
        key = (node.lineno, text)
        previous = self.call_contexts.get(key)
        # Two calls to the same target on one line: keep the heavier
        # context (the safe over-approximation for the join).
        if previous is None or context.dominates(previous):
            self.call_contexts[key] = context
        name = callee_name(node)
        if name in _ALLOCATORS and not context.constant:
            self.allocations.append(
                AllocationSite(
                    line=node.lineno,
                    detail=(
                        f"{text}(...) allocates inside an "
                        f"O({context.render()}) loop"
                    ),
                    context=context,
                )
            )
        dense = _is_dense_metric_build(node)
        if dense is not None:
            self.dense_builds.append(
                DenseBuildSite(line=node.lineno, detail=dense)
            )
        if name is not None and _REFERENCE_PATTERN.search(name):
            self.reference_calls.append(
                ReferenceCallSite(line=node.lineno, text=text)
            )


def _local_cost(info: FunctionInfo) -> LocalCost:
    scan = _BodyScan()
    scan.scan(info.node.body, Monomial.unit())
    return LocalCost(
        work=CostBound.of(scan.work),
        call_contexts=dict(scan.call_contexts),
        allocations=tuple(scan.allocations),
        dense_builds=tuple(scan.dense_builds),
        reference_calls=tuple(scan.reference_calls),
    )


@dataclass(frozen=True)
class FunctionCost:
    """The complete cost picture of one function."""

    qualified: str
    local: LocalCost
    declared: CostDeclaration | None
    inferred: CostBound


def analyze_costs(program: ProgramContext) -> dict[str, FunctionCost]:
    """Infer a symbolic cost bound for every module-level function.

    Declared costs are trusted as callee summaries (they are checked
    against their own inference separately, so trust does not launder a
    lie — it only breaks composition cycles).  Undeclared functions
    iterate to a fixpoint; a cycle that keeps growing a monomial past
    :data:`WIDENING_CAP` is widened to the unbounded top element, which
    then propagates to its callers.
    """
    locals_map: dict[str, LocalCost] = {}
    declarations: dict[str, CostDeclaration | None] = {}
    for qualified, info in program.calls.functions.items():
        locals_map[qualified] = _local_cost(info)
        declarations[qualified] = declared_cost(info)

    # Join each resolved call edge to its recorded loop context.
    edges: dict[str, list[tuple[str, Monomial]]] = {
        qualified: [] for qualified in program.calls.functions
    }
    for site in program.calls.calls:
        if site.callee is None or site.caller not in locals_map:
            continue
        if site.callee not in program.calls.functions:
            continue
        context = locals_map[site.caller].call_contexts.get(
            (site.line, site.text), Monomial.unit()
        )
        edges[site.caller].append((site.callee, context))

    def trusted_summary(qualified: str) -> CostBound | None:
        declaration = declarations.get(qualified)
        if declaration is not None and declaration.bound is not None:
            return declaration.bound
        return None

    summaries: dict[str, CostBound] = {}
    for qualified in program.calls.functions:
        trusted = trusted_summary(qualified)
        summaries[qualified] = (
            trusted if trusted is not None else locals_map[qualified].work
        )

    changed = True
    while changed:
        changed = False
        for qualified in program.calls.functions:
            if trusted_summary(qualified) is not None:
                continue
            updated = locals_map[qualified].work
            for callee, context in edges[qualified]:
                # Self-edges included: plain self-recursion is a no-op
                # under the join, while recursion through a loop context
                # keeps growing until the cap below widens it to top.
                updated = updated.plus(
                    summaries[callee].times_monomial(context)
                )
            if not updated.unbounded and updated.exceeds_cap():
                updated = CostBound.top(
                    f"call cycle through {qualified!r} keeps growing the "
                    f"bound past degree {WIDENING_CAP}; widened to top"
                )
            if updated != summaries[qualified]:
                summaries[qualified] = updated
                changed = True

    # The fixpoint computed summaries; the *inferred* cost of a declared
    # function must not use its own declaration (that would make R500
    # vacuous), so recompute one composition step from callee summaries.
    inferred: dict[str, CostBound] = {}
    for qualified in program.calls.functions:
        result = locals_map[qualified].work
        for callee, context in edges[qualified]:
            if callee == qualified:
                continue
            result = result.plus(summaries[callee].times_monomial(context))
        if not result.unbounded and result.exceeds_cap():
            result = CostBound.top(
                f"composition at {qualified!r} exceeds degree "
                f"{WIDENING_CAP}; widened to top"
            )
        inferred[qualified] = result

    return {
        qualified: FunctionCost(
            qualified=qualified,
            local=locals_map[qualified],
            declared=declarations[qualified],
            inferred=inferred[qualified],
        )
        for qualified in sorted(program.calls.functions)
    }


def reachable_from(
    program: ProgramContext, roots: Iterable[str]
) -> frozenset[str]:
    """Functions reachable from *roots* over resolved call edges."""
    frontier = list(roots)
    reachable = set(frontier)
    while frontier:
        current = frontier.pop()
        for callee in program.calls.resolved_callees(current):
            if callee not in reachable:
                reachable.add(callee)
                frontier.append(callee)
    return frozenset(reachable)


def solver_reachable(program: ProgramContext) -> frozenset[str]:
    """Functions reachable from ``solve_*`` / ``optimal_*`` entry points.

    This is the *hot path* of R501/R503 — deliberately narrower than
    :meth:`~repro.lint.interproc.ProgramContext.reachable_functions`,
    which seeds from the CLI entry roots and would drag reporting and
    test-support code into the hot set.
    """
    return reachable_from(program, entry_point_names(program))


def build_cost_table(
    program: ProgramContext, costs: Mapping[str, FunctionCost]
) -> dict[str, object]:
    """Assemble the ``repro cost`` JSON document.

    Covers every solver entry point plus every ``@cost``-declared
    function, mirroring the parallel-safety certificate's coverage rule.
    """
    entry_points = set(entry_point_names(program))
    covered = set(entry_points)
    for qualified, record in costs.items():
        if record.declared is not None:
            covered.add(qualified)

    functions: dict[str, dict[str, object]] = {}
    for qualified in sorted(covered):
        record = costs.get(qualified)
        if record is None:
            continue
        info = program.calls.functions[qualified]
        declaration = record.declared
        declared_bound = (
            declaration.bound if declaration is not None else None
        )
        functions[qualified] = {
            "module": info.module,
            "name": info.name,
            "line": info.line,
            "declared": (
                declaration.expression if declaration is not None else None
            ),
            "inferred": record.inferred.render(),
            "scale": declaration.scale if declaration is not None else None,
            "covered": (
                record.inferred.covered_by(declared_bound)
                if declared_bound is not None
                else None
            ),
            "entry_point": qualified in entry_points,
        }

    return {
        "kind": COST_TABLE_KIND,
        "version": COST_TABLE_VERSION,
        "symbols": list(COST_SYMBOLS),
        "functions": functions,
    }


def _table_rows(document: Mapping[str, object]) -> list[tuple[str, ...]]:
    functions = document.get("functions")
    assert isinstance(functions, Mapping)
    rows: list[tuple[str, ...]] = []
    for qualified in sorted(functions):
        entry = functions[qualified]
        assert isinstance(entry, Mapping)
        declared = entry.get("declared")
        covered = entry.get("covered")
        if covered is None:
            verdict = "undeclared"
        elif covered:
            verdict = "ok"
        else:
            verdict = "MISMATCH"
        rows.append(
            (
                qualified,
                str(declared) if declared is not None else "-",
                str(entry.get("inferred", "-")),
                str(entry.get("scale") or "-"),
                verdict,
            )
        )
    return rows


def render_cost_table_text(document: Mapping[str, object]) -> str:
    """Aligned-columns rendering for terminals."""
    header = ("function", "declared", "inferred", "scale", "verdict")
    rows = [header, *_table_rows(document)]
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(header))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_cost_table_markdown(document: Mapping[str, object]) -> str:
    """README-embeddable markdown table."""
    lines = [
        "| function | declared | inferred | scale | verdict |",
        "| --- | --- | --- | --- | --- |",
    ]
    for row in _table_rows(document):
        cells = (row[0], f"`{row[1]}`", f"`{row[2]}`", row[3], row[4])
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_cost_table_json(document: Mapping[str, object]) -> str:
    """Stable JSON text of the cost-table document."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


@dataclass(frozen=True)
class CostObservation:
    """One timed run at a known instance size (R504 input)."""

    #: Qualified name of the measured function.
    function: str
    #: The cost symbol the experiment varied.
    symbol: str
    #: The instance size along that symbol.
    size: int
    #: Measured wall seconds.
    seconds: float


def validate_cost_telemetry(document: object) -> tuple[str, ...]:
    """Schema-check a cost-telemetry document; returns problem messages."""
    problems: list[str] = []
    if not isinstance(document, Mapping):
        return ("cost telemetry must be a JSON object",)
    if document.get("kind") != TELEMETRY_KIND:
        problems.append(f"telemetry 'kind' must be {TELEMETRY_KIND!r}")
    if document.get("version") != TELEMETRY_VERSION:
        problems.append(f"telemetry 'version' must be {TELEMETRY_VERSION}")
    observations = document.get("observations")
    if not isinstance(observations, list):
        problems.append("telemetry 'observations' must be a list")
        return tuple(problems)
    for index, row in enumerate(observations):
        if not isinstance(row, Mapping):
            problems.append(f"observation {index} must be an object")
            continue
        if not isinstance(row.get("function"), str):
            problems.append(f"observation {index}: 'function' must be a string")
        if row.get("symbol") not in COST_SYMBOLS:
            problems.append(
                f"observation {index}: 'symbol' must be one of "
                f"{', '.join(COST_SYMBOLS)}"
            )
        size = row.get("size")
        if not isinstance(size, int) or isinstance(size, bool) or size <= 0:
            problems.append(
                f"observation {index}: 'size' must be a positive integer"
            )
        seconds = row.get("seconds")
        if not isinstance(seconds, (int, float)) or isinstance(
            seconds, bool
        ) or seconds <= 0:
            problems.append(
                f"observation {index}: 'seconds' must be a positive number"
            )
    return tuple(problems)


def load_cost_telemetry(path: Path | str) -> tuple[CostObservation, ...]:
    """Read and validate an R504 telemetry file."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read telemetry {str(path)!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(
            f"telemetry {str(path)!r} is not valid JSON: {exc}"
        ) from exc
    problems = validate_cost_telemetry(document)
    if problems:
        raise LintError(
            f"telemetry {str(path)!r} is malformed: " + "; ".join(problems)
        )
    assert isinstance(document, Mapping)
    observations = document["observations"]
    assert isinstance(observations, list)
    return tuple(
        CostObservation(
            function=row["function"],
            symbol=row["symbol"],
            size=int(row["size"]),
            seconds=float(row["seconds"]),
        )
        for row in observations
    )


@dataclass(frozen=True)
class StaleDeclaration:
    """One declaration the measurements contradict (R504 witness)."""

    qualified: str
    symbol: str
    declared_degree: float
    fitted_exponent: float
    sizes: tuple[int, ...]


def stale_declarations(
    costs: Mapping[str, FunctionCost],
    observations: Sequence[CostObservation],
    *,
    tolerance: float = R504_TOLERANCE,
) -> tuple[StaleDeclaration, ...]:
    """Declarations whose measured scaling exceeds the declared degree.

    Observations are grouped by ``(function, symbol)``; groups with
    fewer than two distinct sizes are skipped (no slope to fit), as are
    functions without a well-formed declaration.  The comparison is
    one-sided: measuring *better* than declared is never a finding —
    declarations are upper bounds.
    """
    # Lazy import keeps deps-only code paths free of the obs substrate.
    from ..obs.report import fit_scaling_exponent

    grouped: dict[tuple[str, str], list[CostObservation]] = {}
    for observation in observations:
        grouped.setdefault(
            (observation.function, observation.symbol), []
        ).append(observation)

    stale: list[StaleDeclaration] = []
    for (qualified, symbol), group in sorted(grouped.items()):
        record = costs.get(qualified)
        if record is None or record.declared is None:
            continue
        if record.declared.bound is None:
            continue
        sizes = [observation.size for observation in group]
        if len(set(sizes)) < 2:
            continue
        fitted = fit_scaling_exponent(
            [float(size) for size in sizes],
            [observation.seconds for observation in group],
        )
        declared_degree = record.declared.bound.degree(symbol)
        if fitted > declared_degree + tolerance:
            stale.append(
                StaleDeclaration(
                    qualified=qualified,
                    symbol=symbol,
                    declared_degree=declared_degree,
                    fitted_exponent=fitted,
                    sizes=tuple(sorted(set(sizes))),
                )
            )
    return tuple(stale)
