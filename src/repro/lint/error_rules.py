"""The R600-series exception-flow and resource-safety rules.

Built on the interprocedural escape analysis (:mod:`repro.lint.excflow`)
and the resource-lifecycle analysis (:mod:`repro.lint.resources`):

============  =========================================================
``R600``      inferred escape sets must be covered by ``@raises``
              declarations (and every solver entry point must declare)
``R601``      no resource (pool, file, span sink, LP checkpoint) leaked
              on an exceptional path
``R602``      no swallowed or over-broad ``except`` on a solver hot path
``R603``      no non-``ReproError`` exception escaping an entry point
              (the interprocedural upgrade of R103's builtin denylist)
``R604``      metrics/span scopes must be closed on every CFG path
============  =========================================================

These rules run only under ``repro lint --errors``; they see the same
parse-once files as everything else.  Findings honor inline suppressions
and ``"R6xx:qualified.name"`` config exemptions.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

from .engine import ErrorRule, register_rule
from .excflow import (
    PROGRAMMING_ERRORS,
    REPRO_BASE_EXCEPTION,
    ExceptionHierarchy,
    FunctionErrors,
    analyze_errors,
    build_exception_hierarchy,
)
from .findings import Finding
from .interproc import ProgramContext, _in_packages
from .resources import ResourceReport, analyze_resources

__all__ = [
    "ErrorContext",
    "build_error_context",
]

#: Handler names R602 treats as over-broad on a solver hot path.
_BROAD_HANDLERS = frozenset({"Exception", "BaseException"})


@dataclass
class ErrorContext:
    """Everything a :class:`~repro.lint.engine.ErrorRule` may inspect."""

    #: The shared whole-program view (files, call graph, config).
    program: ProgramContext
    #: Builtin + analyzed exception class hierarchy.
    hierarchy: ExceptionHierarchy
    #: Inferred (and declared) error surface of every analyzed function.
    errors: Mapping[str, FunctionErrors]
    #: Resource/scope lifecycle findings.
    resources: ResourceReport
    #: Solver entry points (public ``solve_*`` / ``optimal_*``).
    entry_points: tuple[str, ...] = field(default_factory=tuple)
    #: Functions reachable from the entry points over resolved calls —
    #: the "solver hot path" R602 judges.
    hot_path: frozenset[str] = field(default_factory=frozenset)


def build_error_context(program: ProgramContext) -> ErrorContext:
    """Run the escape fixpoint and lifecycle analysis over one program."""
    from .effects import entry_point_names

    hierarchy = build_exception_hierarchy(program)
    errors = analyze_errors(program, hierarchy)
    entry_points = entry_point_names(program)
    frontier = list(entry_points)
    hot_path = set(frontier)
    while frontier:
        current = frontier.pop()
        for callee in program.calls.resolved_callees(current):
            if callee not in hot_path:
                hot_path.add(callee)
                frontier.append(callee)
    return ErrorContext(
        program=program,
        hierarchy=hierarchy,
        errors=errors,
        resources=analyze_resources(program),
        entry_points=entry_points,
        hot_path=frozenset(hot_path),
    )


def _witness_clause(errors: FunctionErrors, exception: str) -> str:
    witness = errors.escapes.get(exception)
    if witness is None:
        return ""
    if witness.origin == errors.qualified:
        return f" (raised at line {witness.line})"
    return f" (via {witness.origin!r}, line {witness.line})"


@register_rule
class RaisesDeclarationRule(ErrorRule):
    """R600: inferred escape sets must be covered by ``@raises``.

    A declaration is a machine-checked promise: the error-contract
    certificate (and the retry gate built on it) trusts declared escape
    sets, so an annotation narrower than the inferred reality would let
    :func:`repro.resilience.retrying` misclassify a real failure.
    Coverage is hierarchy-aware — declaring ``InfeasibleError`` covers a
    ``CapacityError`` raised three calls down — and over-declaration is
    legal (declaring exceptions the analysis cannot see through method
    calls is the sanctioned idiom).  Solver entry points must declare:
    an entry point without ``@raises`` has no contract to publish.
    """

    id = "R600"
    name = "raises-declaration"
    summary = "inferred escape sets must be covered by @raises declarations"

    def check_errors(self, context: ErrorContext) -> Iterable[Finding]:
        program = context.program
        undeclared_entries = set(context.entry_points)
        for qualified, errors in context.errors.items():
            if errors.declared is not None:
                undeclared_entries.discard(qualified)
            if errors.declared is None and not errors.declared_problems:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            line = (
                errors.declared_line
                if errors.declared_line is not None
                else info.line
            )
            for problem in errors.declared_problems:
                yield program.finding(
                    info.module, line, self.id,
                    f"malformed @raises declaration on {info.name!r}: "
                    f"{problem}",
                )
            if errors.declared is None:
                continue
            for exception in sorted(errors.escapes):
                if context.hierarchy.covers(errors.declared, exception):
                    continue
                yield program.finding(
                    info.module, line, self.id,
                    f"{info.name!r} declares @raises"
                    f"({sorted(errors.declared)}) but the analysis infers "
                    f"{exception!r} can escape"
                    f"{_witness_clause(errors, exception)}; widen the "
                    "declaration or catch it at the boundary",
                )
        for qualified in sorted(undeclared_entries):
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            yield program.finding(
                info.module, info.line, self.id,
                f"solver entry point {info.name!r} carries no @raises "
                "declaration; declare its escape set so the error "
                "contract can publish it, or exempt with "
                f"'R600:{qualified}'",
            )


@register_rule
class ResourceLeakRule(ErrorRule):
    """R601: no resource leaked on an exceptional path.

    A process pool, file handle, span sink or LP-model checkpoint that
    is not ``with``-managed or released in a ``finally`` is abandoned
    the moment an ``InfeasibleError`` interrupts the sweep holding it —
    the failure mode only shows up as descriptor/worker exhaustion under
    sustained serving traffic.  The lifecycle analysis
    (:mod:`repro.lint.resources`) classifies each leak: never released,
    released only on fall-through paths, or an unprotected window
    between acquisition and its ``try/finally``.
    """

    id = "R601"
    name = "resource-leak"
    summary = "resources must be released on all paths (with or try/finally)"

    def check_errors(self, context: ErrorContext) -> Iterable[Finding]:
        program = context.program
        for leak in context.resources.leaks:
            info = program.calls.functions.get(leak.function)
            if info is None:
                continue
            if not _in_packages(info.module, program.config.library_packages):
                continue
            if program.config.is_exempt(self.id, leak.function):
                continue
            yield program.finding(
                info.module, leak.line, self.id,
                f"{info.name!r}: {leak.detail}; or exempt with "
                f"'R601:{leak.function}'",
            )


@register_rule
class BroadHandlerRule(ErrorRule):
    """R602: no swallowed or over-broad ``except`` on a solver hot path.

    ``except Exception:`` (or a bare ``except:``) on a function the
    solver entry points can reach hides real defects — a ``TypeError``
    from a broken kernel is silently converted into "infeasible" — and
    defeats both the escape analysis and the retry gate, which can only
    trust declared failure modes.  A broad handler that *re-raises* is
    legal (narrow-log-reraise is a sanctioned idiom); one that swallows
    is the finding.
    """

    id = "R602"
    name = "broad-handler"
    summary = "solver hot paths must not swallow broad exception classes"

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False

    def check_errors(self, context: ErrorContext) -> Iterable[Finding]:
        program = context.program
        for qualified in sorted(context.hot_path):
            info = program.calls.functions.get(qualified)
            if info is None:
                continue
            if not _in_packages(info.module, program.config.library_packages):
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Try):
                    continue
                for handler in node.handlers:
                    label: str | None = None
                    if handler.type is None:
                        label = "a bare 'except:'"
                    else:
                        elements = (
                            handler.type.elts
                            if isinstance(handler.type, ast.Tuple)
                            else [handler.type]
                        )
                        for element in elements:
                            name = getattr(element, "id", None)
                            if name in _BROAD_HANDLERS:
                                label = f"'except {name}'"
                                break
                    if label is None or self._reraises(handler):
                        continue
                    yield program.finding(
                        info.module, handler.lineno, self.id,
                        f"{info.name!r} is on a solver hot path but "
                        f"{label} swallows everything it catches; narrow "
                        "the handler to the failures this code expects "
                        "(or re-raise), or exempt with "
                        f"'R602:{qualified}'",
                    )


@register_rule
class EntryPointEscapeRule(ErrorRule):
    """R603: no non-``ReproError`` exception escaping an entry point.

    The interprocedural upgrade of R103: instead of a denylist of
    builtin names seeded from raise sites, the full escape analysis
    decides what reaches the public boundary, and the project hierarchy
    decides what counts as deliberate (anything descending from
    ``ReproError``).  Programming-error classes (``TypeError``,
    ``NotImplementedError``, ``AssertionError``) stay legal, matching
    the convention in ``repro.exceptions``.
    """

    id = "R603"
    name = "entry-point-escape"
    summary = "only ReproError subclasses may escape solver entry points"

    def check_errors(self, context: ErrorContext) -> Iterable[Finding]:
        program = context.program
        for qualified in context.entry_points:
            errors = context.errors.get(qualified)
            if errors is None:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            for exception in sorted(errors.escapes):
                if exception in PROGRAMMING_ERRORS:
                    continue
                if context.hierarchy.is_repro_error(exception):
                    continue
                yield program.finding(
                    info.module, info.line, self.id,
                    f"solver entry point {info.name!r} can let "
                    f"{exception!r} escape"
                    f"{_witness_clause(errors, exception)}, which is not "
                    f"a {REPRO_BASE_EXCEPTION} subclass; catch it at the "
                    "boundary and re-raise a library exception, or "
                    f"exempt with 'R603:{qualified}'",
                )


@register_rule
class ScopeClosureRule(ErrorRule):
    """R604: metrics/span scopes must be closed on every CFG path.

    A ``span(...)`` / ``telemetry_scope()`` / ``collect(...)`` created
    outside a ``with`` block never runs its ``__exit__`` on exceptional
    paths, so the span stack corrupts (children attach to a dead parent)
    and counter scopes bleed into whatever solve runs next.  The only
    closure Python guarantees is the context-manager protocol, so that
    is what this rule demands.
    """

    id = "R604"
    name = "scope-closure"
    summary = "obs spans and telemetry scopes must be with-managed"

    def check_errors(self, context: ErrorContext) -> Iterable[Finding]:
        program = context.program
        for problem in context.resources.scope_problems:
            info = program.calls.functions.get(problem.function)
            if info is None:
                continue
            if not _in_packages(info.module, program.config.library_packages):
                continue
            if program.config.is_exempt(self.id, problem.function):
                continue
            yield program.finding(
                info.module, problem.line, self.id,
                f"{info.name!r}: {problem.detail}; or exempt with "
                f"'R604:{problem.function}'",
            )
