"""The intra-package call graph with name resolution and raise sites.

The graph covers *module-level functions* — the package's public API
surface and its helpers.  Methods are deliberately out of scope: the
R102/R103 contracts (validate before use, convert builtin raises) are
stated for the functional solver API, and resolving dynamic dispatch
statically would buy little precision for a lot of machinery.  This
approximation is documented in ``docs/static_analysis.md``.

Resolution handles the package's real idioms:

* ``from ..network.graph import Network`` — symbol imports, with
  aliasing (``as``);
* ``from . import generators`` / ``import repro.lp`` — module imports,
  so ``generators.grid(...)`` and ``repro.lp.solve(...)`` resolve;
* re-export chains — ``from .qpp import solve_qpp`` inside
  ``repro.core.__init__`` makes ``repro.core.solve_qpp`` an alias for
  ``repro.core.qpp.solve_qpp``, chased transitively with cycle guards;
* ``functools.partial(f, ...)`` — binding arguments records a call edge
  to ``f``, so deferred dispatch (pool workers) stays visible to the
  interprocedural effect inference.

Every call and raise site records the set of exception names caught
around it: a site inside a ``try`` *body* is protected by that
statement's handlers, while code in the handlers, ``else`` and
``finally`` blocks is not (exceptions raised there propagate).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field

from .astutils import dotted_name
from .modgraph import resolve_relative_base

__all__ = [
    "CallSite",
    "RaiseSite",
    "FunctionInfo",
    "CallGraph",
    "build_call_graph",
    "catches",
]

#: Direct bases of the builtin exceptions the linter reasons about, for
#: deciding whether ``except X`` catches a raised ``Y``.
_BUILTIN_PARENTS: Mapping[str, str] = {
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "ZeroDivisionError": "ArithmeticError",
    "FloatingPointError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "FileNotFoundError": "OSError",
    "PermissionError": "OSError",
    "IsADirectoryError": "OSError",
    "NotADirectoryError": "OSError",
    "IOError": "OSError",
    "LookupError": "Exception",
    "ArithmeticError": "Exception",
    "OSError": "Exception",
    "ValueError": "Exception",
    "TypeError": "Exception",
    "RuntimeError": "Exception",
    "StopIteration": "Exception",
    "NotImplementedError": "RuntimeError",
    "Exception": "BaseException",
}


def catches(raised: str, handlers: tuple[str, ...]) -> bool:
    """Whether an ``except`` clause over *handlers* catches *raised*.

    Walks the builtin exception hierarchy (``KeyError`` is caught by
    ``except LookupError`` and ``except Exception``).  Unknown names —
    project exceptions like ``ReproError`` — match only exactly, plus
    the universal ``Exception``/``BaseException`` handlers.
    """
    ancestors = {raised}
    current = raised
    while current in _BUILTIN_PARENTS:
        current = _BUILTIN_PARENTS[current]
        ancestors.add(current)
    if raised not in _BUILTIN_PARENTS and raised != "BaseException":
        # A non-builtin exception class: assume it descends from Exception.
        ancestors.update({"Exception", "BaseException"})
    return any(handler in ancestors for handler in handlers)


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    #: Qualified name of the calling function.
    caller: str
    #: Qualified name of the resolved callee (a function in the graph),
    #: or ``None`` for calls the resolver cannot pin down (methods,
    #: builtins, third-party functions, dynamic dispatch).
    callee: str | None
    #: The textual callee, for diagnostics (``"np.dot"``, ``"solve"``).
    text: str
    #: 1-based source line of the call.
    line: int
    #: Exception names caught by enclosing ``try`` bodies at this site.
    caught: tuple[str, ...] = ()


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` statement inside a function body."""

    #: Qualified name of the raising function.
    function: str
    #: Name of the raised exception class (``None`` for bare re-raise).
    exception: str | None
    #: 1-based source line of the raise.
    line: int
    #: Exception names caught by enclosing ``try`` bodies at this site.
    caught: tuple[str, ...] = ()


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function definition."""

    #: Module the function is defined in.
    module: str
    #: Bare function name.
    name: str
    #: ``module.name`` — the node id used throughout the call graph.
    qualified: str
    #: 1-based source line of the ``def``.
    line: int
    #: Parameter names, in order (``self``-free: module-level only).
    params: tuple[str, ...]
    #: Whether the name is public (no leading underscore).
    public: bool
    #: The function's AST, for rules that need statement-level analysis.
    node: ast.FunctionDef | ast.AsyncFunctionDef = field(compare=False, repr=False)


@dataclass(frozen=True)
class CallGraph:
    """Functions, call sites and raise sites of the analyzed package."""

    functions: Mapping[str, FunctionInfo]
    calls: tuple[CallSite, ...]
    raises: tuple[RaiseSite, ...]

    def calls_from(self, qualified: str) -> tuple[CallSite, ...]:
        return tuple(site for site in self.calls if site.caller == qualified)

    def raises_in(self, qualified: str) -> tuple[RaiseSite, ...]:
        return tuple(site for site in self.raises if site.function == qualified)

    def resolved_callees(self, qualified: str) -> tuple[str, ...]:
        return tuple(
            sorted(
                {
                    site.callee
                    for site in self.calls
                    if site.caller == qualified and site.callee is not None
                }
            )
        )


class _ModuleSymbols:
    """What each name means at one module's top level."""

    def __init__(self, module: str) -> None:
        self.module = module
        #: Locally defined module-level functions, by bare name.
        self.functions: set[str] = set()
        #: name -> (source module, original name) for symbol imports.
        self.imported_symbols: dict[str, tuple[str, str]] = {}
        #: name -> module for module imports (``import x as y``).
        self.imported_modules: dict[str, str] = {}
        #: Modules star-imported into this namespace, in order.
        self.star_imports: list[str] = []


def _collect_symbols(
    module: str, tree: ast.Module, is_package: bool, known: frozenset[str]
) -> _ModuleSymbols:
    symbols = _ModuleSymbols(module)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            symbols.functions.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    if alias.name in known:
                        symbols.imported_modules[alias.asname] = alias.name
                else:
                    root = alias.name.partition(".")[0]
                    if root in known:
                        symbols.imported_modules[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = resolve_relative_base(module, is_package, node)
            if base is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                if alias.name == "*":
                    if base in known:
                        symbols.star_imports.append(base)
                    continue
                dotted = f"{base}.{alias.name}"
                if dotted in known:
                    symbols.imported_modules[bound] = dotted
                elif base in known:
                    symbols.imported_symbols[bound] = (base, alias.name)
    return symbols


class _Resolver:
    """Chases names through imports and re-exports to function ids."""

    def __init__(
        self,
        symbols: Mapping[str, _ModuleSymbols],
        functions: Mapping[str, FunctionInfo],
    ) -> None:
        self._symbols = symbols
        self._functions = functions

    def resolve(
        self, module: str, name: str, _trail: frozenset[str] = frozenset()
    ) -> tuple[str, str] | None:
        """What *name* means at the top level of *module*.

        Returns ``("func", qualified)`` for a module-level function,
        ``("module", dotted)`` for an imported module, ``None`` when the
        name is unknown (builtin, third-party, class, constant).
        Re-export chains (``from .sub import f``) are followed
        transitively with a cycle guard.
        """
        key = f"{module}:{name}"
        if key in _trail:
            return None
        trail = _trail | {key}
        table = self._symbols.get(module)
        if table is None:
            return None
        if name in table.functions:
            return ("func", f"{module}.{name}")
        if name in table.imported_modules:
            return ("module", table.imported_modules[name])
        if name in table.imported_symbols:
            source, original = table.imported_symbols[name]
            return self.resolve(source, original, trail)
        for source in table.star_imports:
            resolved = self.resolve(source, name, trail)
            if resolved is not None:
                return resolved
        return None

    def resolve_call(self, module: str, func: ast.expr) -> str | None:
        """The qualified function a call target refers to, if resolvable."""
        if isinstance(func, ast.Name):
            resolved = self.resolve(module, func.id)
            if resolved is not None and resolved[0] == "func":
                return resolved[1]
            return None
        if isinstance(func, ast.Attribute):
            dotted = dotted_name(func)
            if dotted is None:
                return None
            head, _, rest = dotted.partition(".")
            resolved = self.resolve(module, head)
            if resolved is None or not rest:
                return None
            kind, target = resolved
            if kind != "module":
                return None
            # Walk the remaining attributes through module namespaces:
            # ``pkg.sub.fn`` where ``pkg.sub`` is a module import.
            parts = rest.split(".")
            current = target
            for index, part in enumerate(parts):
                step = self.resolve(current, part)
                if step is None:
                    return None
                kind, value = step
                if kind == "func":
                    return value if index == len(parts) - 1 else None
                current = value
            return None
        return None


def _walk_with_caught(
    body: list[ast.stmt], caught: tuple[str, ...]
) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield nodes with the exception names caught around each.

    Only a ``try`` statement's *body* is protected by its handlers;
    handler, ``else`` and ``finally`` code raises past them.  Nested
    function/class definitions are not descended into — their bodies
    run in a different dynamic context.
    """
    for statement in body:
        if isinstance(statement, ast.Try):
            handler_names: list[str] = []
            for handler in statement.handlers:
                if handler.type is None:
                    handler_names.append("BaseException")
                elif isinstance(handler.type, ast.Tuple):
                    for element in handler.type.elts:
                        name = dotted_name(element)
                        if name is not None:
                            handler_names.append(name.rsplit(".", 1)[-1])
                else:
                    name = dotted_name(handler.type)
                    if name is not None:
                        handler_names.append(name.rsplit(".", 1)[-1])
            inner = caught + tuple(handler_names)
            yield from _walk_with_caught(statement.body, inner)
            for handler in statement.handlers:
                yield from _walk_with_caught(handler.body, caught)
            yield from _walk_with_caught(statement.orelse, caught)
            yield from _walk_with_caught(statement.finalbody, caught)
            continue
        yield statement, caught
        children: list[ast.stmt] = []
        if isinstance(
            statement, (ast.If, ast.For, ast.AsyncFor, ast.While)
        ):
            children = [*statement.body, *statement.orelse]
        elif isinstance(statement, (ast.With, ast.AsyncWith)):
            children = list(statement.body)
        elif isinstance(statement, ast.Match):
            children = [s for case in statement.cases for s in case.body]
        if children:
            yield from _walk_with_caught(children, caught)


def _statement_expressions(statement: ast.AST) -> Iterator[ast.AST]:
    """Walk one statement's own expressions.

    Nested statements are excluded — :func:`_walk_with_caught` yields
    them separately (with their own caught-context), so descending here
    would double-count their call sites.
    """
    stack: list[ast.AST] = [statement]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            stack.append(child)


def build_call_graph(
    trees: Mapping[str, ast.Module],
    *,
    packages: frozenset[str] = frozenset(),
) -> CallGraph:
    """Construct the call graph for *trees* (module name -> parsed AST)."""
    known = frozenset(trees)
    functions: dict[str, FunctionInfo] = {}
    symbols: dict[str, _ModuleSymbols] = {}

    for module, tree in trees.items():
        symbols[module] = _collect_symbols(
            module, tree, module in packages, known
        )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualified = f"{module}.{node.name}"
                args = node.args
                params = tuple(
                    a.arg
                    for a in (
                        *args.posonlyargs,
                        *args.args,
                        *args.kwonlyargs,
                        *((args.vararg,) if args.vararg else ()),
                        *((args.kwarg,) if args.kwarg else ()),
                    )
                )
                functions[qualified] = FunctionInfo(
                    module=module,
                    name=node.name,
                    qualified=qualified,
                    line=node.lineno,
                    params=params,
                    public=not node.name.startswith("_"),
                    node=node,
                )

    resolver = _Resolver(symbols, functions)
    calls: list[CallSite] = []
    raises: list[RaiseSite] = []

    for info in functions.values():
        for statement, caught in _walk_with_caught(list(info.node.body), ()):
            if isinstance(statement, ast.Raise):
                exception: str | None = None
                if statement.exc is not None:
                    target = (
                        statement.exc.func
                        if isinstance(statement.exc, ast.Call)
                        else statement.exc
                    )
                    name = dotted_name(target)
                    if name is not None:
                        exception = name.rsplit(".", 1)[-1]
                raises.append(
                    RaiseSite(info.qualified, exception, statement.lineno, caught)
                )
            for node in _statement_expressions(statement):
                if not isinstance(node, ast.Call):
                    continue
                text = dotted_name(node.func) or "<dynamic>"
                callee = resolver.resolve_call(info.module, node.func)
                calls.append(
                    CallSite(info.qualified, callee, text, node.lineno, caught)
                )
                # ``functools.partial(f, ...)`` defers a call to ``f``:
                # record the edge so interprocedural analyses (effect
                # inference in particular) see through the binding.  The
                # partial is almost always invoked — and when it is not,
                # an extra conservative edge only widens effect sets.
                if text in ("partial", "functools.partial") and node.args:
                    first = node.args[0]
                    if isinstance(first, (ast.Name, ast.Attribute)):
                        bound = resolver.resolve_call(info.module, first)
                        if bound is not None:
                            calls.append(
                                CallSite(
                                    info.qualified,
                                    bound,
                                    dotted_name(first) or "<dynamic>",
                                    node.lineno,
                                    caught,
                                )
                            )

    return CallGraph(
        functions=dict(sorted(functions.items())),
        calls=tuple(calls),
        raises=tuple(raises),
    )
