"""The :class:`Finding` value type and its renderings.

A finding is one rule violation anchored to a file position.  Findings
are immutable, totally ordered (by path, line, column, rule id) so that
linter output is deterministic, and serialize to plain dictionaries for
the ``--format json`` machine interface consumed by CI.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import asdict, dataclass

__all__ = ["Finding", "render_text", "render_json", "sort_findings"]

#: Schema version of the JSON output; bump on breaking changes.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location.

    Attributes
    ----------
    path:
        Path of the offending file, as given to the linter (kept
        relative when the input path was relative, for stable output).
    line:
        1-based line of the offending node.
    column:
        1-based column of the offending node.
    rule_id:
        Identifier of the violated rule, e.g. ``"R002"``.
    message:
        Human-readable, actionable description of the violation.
    """

    path: str
    line: int
    column: int
    rule_id: str
    message: str

    def to_dict(self) -> dict[str, object]:
        """Plain-dict form used by the JSON output format."""
        return asdict(self)

    def render(self) -> str:
        """``path:line:col: RULE message`` — the text output line."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"


def sort_findings(findings: Iterable[Finding]) -> list[Finding]:
    """Deterministic output order: by path, then position, then rule."""
    return sorted(findings)


def render_text(findings: Iterable[Finding]) -> str:
    """Render findings for terminals, one per line plus a summary."""
    ordered = sort_findings(findings)
    lines = [finding.render() for finding in ordered]
    noun = "finding" if len(ordered) == 1 else "findings"
    lines.append(f"{len(ordered)} {noun}")
    return "\n".join(lines)


def render_json(findings: Iterable[Finding]) -> str:
    """Render findings as a stable machine-readable JSON document."""
    ordered = sort_findings(findings)
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(ordered),
        "findings": [finding.to_dict() for finding in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
