"""Small AST helpers shared by the rule implementations."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "dotted_name",
    "callee_name",
    "exception_name",
    "module_level_functions",
    "top_level_bound_names",
    "iter_top_level_statements",
    "is_stub_body",
    "has_decorator",
    "declared_all",
]


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute/name chains, ``None`` for anything else."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def callee_name(call: ast.Call) -> str | None:
    """The rightmost name of a call target: ``f`` for ``f()`` and ``m.f()``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def exception_name(raised: ast.expr) -> str | None:
    """The exception class name in ``raise X`` / ``raise X(...)`` forms."""
    target = raised.func if isinstance(raised, ast.Call) else raised
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute):
        return target.attr
    return None


def module_level_functions(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    """Functions defined directly at module scope, by name."""
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def iter_top_level_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-scope statements, descending into ``if``/``try``/``with``.

    A name bound inside a top-level conditional (``if TYPE_CHECKING:``,
    ``try: import fast except ImportError: import slow``) is still a
    module-scope binding, so export checks must see it.
    """
    stack: list[ast.stmt] = list(tree.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
            for handler in node.handlers:
                stack.extend(handler.body)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            stack.extend(node.body)


def is_stub_body(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether the body is only a docstring / ``pass`` / ``...``."""
    for index, statement in enumerate(fn.body):
        if isinstance(statement, ast.Pass):
            continue
        if isinstance(statement, ast.Expr) and isinstance(statement.value, ast.Constant):
            if statement.value.value is Ellipsis:
                continue
            if index == 0 and isinstance(statement.value.value, str):
                continue
        return False
    return True


def has_decorator(fn: ast.FunctionDef | ast.AsyncFunctionDef, name: str) -> bool:
    """Whether *fn* carries a decorator whose trailing name is *name*."""
    for decorator in fn.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == name:
            return True
        if isinstance(target, ast.Attribute) and target.attr == name:
            return True
    return False


def declared_all(tree: ast.Module) -> tuple[ast.stmt, list[str] | None] | None:
    """The module's ``__all__`` declaration, if present.

    Returns ``(statement, exported names)`` for a literal list/tuple of
    string constants, ``(statement, None)`` for a computed declaration
    (concatenation, comprehension — statically unverifiable), and
    ``None`` when the module declares no ``__all__`` at all.
    """
    for node in iter_top_level_statements(tree):
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                value = node.value
        if value is None:
            continue
        if isinstance(value, (ast.List, ast.Tuple)) and all(
            isinstance(el, ast.Constant) and isinstance(el.value, str)
            for el in value.elts
        ):
            names = [el.value for el in value.elts if isinstance(el, ast.Constant)]
            return node, [str(name) for name in names]
        return node, None
    return None


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def top_level_bound_names(tree: ast.Module) -> tuple[set[str], bool]:
    """Names bound at module scope, plus whether a ``*`` import occurs.

    Returns ``(names, has_star_import)``; with a star import present the
    bound-name set is necessarily incomplete.
    """
    names: set[str] = set()
    has_star = False
    for node in iter_top_level_statements(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                names.update(_target_names(target))
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            names.update(_target_names(node.target))
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.partition(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name == "*":
                    has_star = True
                else:
                    names.add(alias.asname or alias.name)
    return names, has_star
