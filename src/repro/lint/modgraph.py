"""The module import graph: construction, cycles, layers, renderings.

Built once per whole-program run from the shared parse cache, the graph
records every *intra-package* import edge — ``import repro.core``,
``from ..network.graph import Network``, ``from . import generators`` —
with its source line, the imported symbols, and whether the import is
*lazy* (written inside a function body, the sanctioned way to break a
cycle).  Edges to third-party modules are dropped: the graph answers
architecture questions about this package only.

The same graph backs the R100/R101 rules and the ``repro deps`` command
(text tree, Graphviz ``--dot``, stable ``--json``).
"""

from __future__ import annotations

import ast
import json
from collections.abc import Iterable, Iterator, Mapping
from dataclasses import dataclass

__all__ = [
    "ImportEdge",
    "ModuleGraph",
    "build_module_graph",
    "render_deps_tree",
    "render_deps_dot",
    "render_deps_json",
]

#: Schema version of the ``repro deps --json`` output; bump on breaking changes.
DEPS_JSON_VERSION = 1


@dataclass(frozen=True, order=True)
class ImportEdge:
    """One import of an intra-package module."""

    #: Dotted name of the importing module.
    source: str
    #: Dotted name of the imported module.
    target: str
    #: 1-based line of the import statement.
    line: int
    #: Whether the import sits inside a function body (deferred at
    #: runtime; excused from the R101 cycle check but not from R100).
    lazy: bool
    #: Symbols named by a ``from target import a, b`` form (``"*"`` for
    #: star imports); empty when the module itself is imported.
    symbols: tuple[str, ...] = ()


@dataclass(frozen=True)
class ModuleGraph:
    """An immutable import graph over one package's modules."""

    #: Every analyzed module, sorted.
    modules: tuple[str, ...]
    #: Every intra-package import edge, sorted.
    edges: tuple[ImportEdge, ...]
    #: Declared layer order (lowest first), from the lint config.
    layers: tuple[tuple[str, ...], ...]

    def imports_of(self, module: str) -> tuple[ImportEdge, ...]:
        """The outgoing edges of *module*, sorted."""
        return tuple(edge for edge in self.edges if edge.source == module)

    def layer_of(self, module: str) -> int | None:
        """The layer index of *module* by longest-prefix match, if mapped."""
        best: int | None = None
        best_length = -1
        for index, group in enumerate(self.layers):
            for prefix in group:
                if module == prefix or module.startswith(prefix + "."):
                    if len(prefix) > best_length:
                        best, best_length = index, len(prefix)
        return best

    def eager_adjacency(self) -> dict[str, set[str]]:
        """Module-level (non-lazy) successor sets, for cycle analysis."""
        adjacency: dict[str, set[str]] = {module: set() for module in self.modules}
        for edge in self.edges:
            if not edge.lazy and edge.target in adjacency:
                adjacency[edge.source].add(edge.target)
        return adjacency

    def cycles(self) -> list[tuple[str, ...]]:
        """Module-level import cycles, each rendered as a closed path.

        Lazy (function-local) imports are excluded: deferring an import
        into the function that needs it is the sanctioned way to break a
        cycle.  Each strongly connected component with more than one
        module (or a self-loop) contributes one representative cycle
        path starting at its lexicographically smallest member; the
        result is sorted and deterministic.
        """
        adjacency = self.eager_adjacency()
        cycles: list[tuple[str, ...]] = []
        for component in _strongly_connected_components(adjacency):
            if len(component) == 1:
                only = next(iter(component))
                if only not in adjacency[only]:
                    continue
            start = min(component)
            path = _cycle_path(start, component, adjacency)
            if path is not None:
                cycles.append(path)
        return sorted(cycles)


def _strongly_connected_components(
    adjacency: Mapping[str, set[str]]
) -> list[set[str]]:
    """Tarjan's algorithm, iteratively (deep package trees, no recursion)."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = 0

    for root in sorted(adjacency):
        if root in index_of:
            continue
        work: list[tuple[str, Iterator[str]]] = [(root, iter(sorted(adjacency[root])))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index_of:
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(adjacency[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component: set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == node:
                        break
                components.append(component)
    return components


def _cycle_path(
    start: str, component: set[str], adjacency: Mapping[str, set[str]]
) -> tuple[str, ...] | None:
    """A concrete ``start -> ... -> start`` path inside one SCC (BFS)."""
    parents: dict[str, str] = {}
    frontier = [start]
    visited: set[str] = set()
    while frontier:
        next_frontier: list[str] = []
        for node in frontier:
            for successor in sorted(adjacency[node]):
                if successor == start:
                    # Walk parents back to start, then reverse into
                    # forward order: start -> ... -> node -> start.
                    forward = [node]
                    current = node
                    while current != start:
                        current = parents[current]
                        forward.append(current)
                    forward.reverse()
                    return tuple(forward + [start])
                if successor in component and successor not in visited:
                    visited.add(successor)
                    parents[successor] = node
                    next_frontier.append(successor)
        frontier = next_frontier
    return None


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    return isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"


def _iter_imports(tree: ast.Module) -> Iterator[tuple[ast.stmt, bool]]:
    """Yield every import statement with its laziness flag.

    Imports inside function bodies are lazy (deferred until the call),
    and so are imports under ``if TYPE_CHECKING:`` — that block never
    executes at runtime, so such imports cannot participate in a
    runtime cycle.
    """
    stack: list[tuple[ast.AST, bool]] = [
        (child, False) for child in ast.iter_child_nodes(tree)
    ]
    while stack:
        node, lazy = stack.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node, lazy
        child_lazy = lazy or isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        )
        if isinstance(node, ast.If) and _is_type_checking_test(node.test):
            for child in node.body:
                stack.append((child, True))
            for child in node.orelse:
                stack.append((child, child_lazy))
            continue
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_lazy))


def resolve_relative_base(
    module: str, is_package: bool, node: ast.ImportFrom
) -> str | None:
    """The absolute module a ``from``-import refers to, or ``None``.

    Implements Python's relative-import anchoring: level 1 resolves
    against the containing package (the module itself for packages),
    each further level climbs one package.
    """
    if node.level == 0:
        return node.module
    parts = module.split(".")
    anchor = parts if is_package else parts[:-1]
    drop = node.level - 1
    if drop > len(anchor):
        return None
    base = anchor[: len(anchor) - drop] if drop else anchor
    if node.module:
        base = [*base, *node.module.split(".")]
    return ".".join(base) if base else None


def _longest_known_prefix(name: str, known: frozenset[str]) -> str | None:
    parts = name.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in known:
            return candidate
    return None


def build_module_graph(
    trees: Mapping[str, ast.Module],
    *,
    packages: Iterable[str] = (),
    layers: Iterable[Iterable[str]] = (),
) -> ModuleGraph:
    """Construct the import graph for *trees* (module name -> parsed AST).

    *packages* names the modules that are package ``__init__`` files
    (needed to anchor relative imports); *layers* is the declared layer
    order from the config.  Only edges whose target resolves to another
    module in *trees* are kept.
    """
    known = frozenset(trees)
    package_set = frozenset(packages)
    edges: set[ImportEdge] = set()
    for module, tree in trees.items():
        is_package = module in package_set
        for statement, lazy in _iter_imports(tree):
            if isinstance(statement, ast.Import):
                for alias in statement.names:
                    target = _longest_known_prefix(alias.name, known)
                    if target is not None and target != module:
                        edges.add(
                            ImportEdge(module, target, statement.lineno, lazy)
                        )
            elif isinstance(statement, ast.ImportFrom):
                base = resolve_relative_base(module, is_package, statement)
                if base is None:
                    # `from . import x` inside a top-level module: no base
                    # package to anchor to; resolve aliases directly below.
                    base = ""
                symbol_edges: dict[str, list[str]] = {}
                for alias in statement.names:
                    if alias.name == "*":
                        if base in known:
                            symbol_edges.setdefault(base, []).append("*")
                        continue
                    dotted = f"{base}.{alias.name}" if base else alias.name
                    if dotted in known:
                        # `from pkg import submodule` — a module import.
                        symbol_edges.setdefault(dotted, [])
                    elif base in known:
                        symbol_edges.setdefault(base, []).append(alias.name)
                for target, symbols in symbol_edges.items():
                    if target != module:
                        edges.add(
                            ImportEdge(
                                module,
                                target,
                                statement.lineno,
                                lazy,
                                tuple(sorted(symbols)),
                            )
                        )
    return ModuleGraph(
        modules=tuple(sorted(known)),
        edges=tuple(sorted(edges)),
        layers=tuple(tuple(group) for group in layers),
    )


# -- renderings (the `repro deps` command) ----------------------------------------


def render_deps_tree(graph: ModuleGraph) -> str:
    """Human-readable listing: each module with its direct imports."""
    lines: list[str] = []
    for module in graph.modules:
        layer = graph.layer_of(module)
        suffix = f"  [layer {layer}]" if layer is not None else ""
        lines.append(f"{module}{suffix}")
        for edge in graph.imports_of(module):
            marker = " (lazy)" if edge.lazy else ""
            names = f" ({', '.join(edge.symbols)})" if edge.symbols else ""
            lines.append(f"  -> {edge.target}{names}{marker}")
    lines.append(f"{len(graph.modules)} modules, {len(graph.edges)} edges")
    return "\n".join(lines)


def render_deps_dot(graph: ModuleGraph) -> str:
    """Graphviz rendering; lazy edges dashed, one rank per layer."""
    lines = [
        "digraph deps {",
        "  rankdir=BT;",
        '  node [shape=box, fontname="Helvetica", fontsize=10];',
    ]
    by_layer: dict[int, list[str]] = {}
    for module in graph.modules:
        layer = graph.layer_of(module)
        if layer is not None:
            by_layer.setdefault(layer, []).append(module)
    for layer in sorted(by_layer):
        members = " ".join(f'"{m}";' for m in by_layer[layer])
        lines.append(f"  {{ rank=same; {members} }}  // layer {layer}")
    for module in graph.modules:
        lines.append(f'  "{module}";')
    for edge in graph.edges:
        style = " [style=dashed]" if edge.lazy else ""
        lines.append(f'  "{edge.source}" -> "{edge.target}"{style};')
    lines.append("}")
    return "\n".join(lines)


def render_deps_json(graph: ModuleGraph) -> str:
    """Stable machine-readable rendering of the import graph."""
    modules: dict[str, object] = {}
    for module in graph.modules:
        modules[module] = {
            "layer": graph.layer_of(module),
            "imports": [
                {
                    "target": edge.target,
                    "line": edge.line,
                    "lazy": edge.lazy,
                    "symbols": list(edge.symbols),
                }
                for edge in graph.imports_of(module)
            ],
        }
    payload = {
        "version": DEPS_JSON_VERSION,
        "module_count": len(graph.modules),
        "edge_count": len(graph.edges),
        "layers": [list(group) for group in graph.layers],
        "modules": modules,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
