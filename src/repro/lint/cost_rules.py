"""The R500-series asymptotic-cost rules.

Built on the static cost model (:mod:`repro.lint.costmodel`):

============  =========================================================
``R500``      inferred cost must be covered by the ``@cost`` declaration
``R501``      no undeclared superlinear allocation on a solver hot path
``R502``      no dense ``Metric`` build reachable from ``scale="large"``
``R503``      no ``*_reference`` oracle call on a solver hot path
``R504``      declared cost must not contradict measured scaling
============  =========================================================

These rules run only under ``repro lint --cost``; they see the same
parse-once files as everything else.  R504 additionally needs the
``--profile-check`` telemetry file and is silent without one.  Findings
honor inline suppressions and ``"R5xx:qualified.name"`` config
exemptions.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from .costmodel import (
    CostObservation,
    FunctionCost,
    analyze_costs,
    reachable_from,
    solver_reachable,
    stale_declarations,
)
from .effects import entry_point_names
from .engine import CostRule, register_rule
from .findings import Finding
from .interproc import ProgramContext

__all__ = [
    "CostContext",
    "build_cost_context",
    "CostDeclarationRule",
    "HotLoopAllocationRule",
    "DenseMetricScaleRule",
    "ReferenceOnHotPathRule",
    "StaleCostDeclarationRule",
]


@dataclass
class CostContext:
    """Everything a :class:`~repro.lint.engine.CostRule` may inspect."""

    #: The shared whole-program view (files, call graph, config).
    program: ProgramContext
    #: The cost picture of every analyzed function.
    costs: Mapping[str, FunctionCost]
    #: Solver entry points (public ``solve_*`` / ``optimal_*``).
    entry_points: tuple[str, ...] = field(default_factory=tuple)
    #: Functions reachable from solver entry points (the hot path).
    hot_path: frozenset[str] = field(default_factory=frozenset)
    #: R504 telemetry observations; empty without ``--profile-check``.
    telemetry: tuple[CostObservation, ...] = field(default_factory=tuple)


def build_cost_context(
    program: ProgramContext,
    *,
    telemetry: Sequence[CostObservation] = (),
) -> CostContext:
    """Run the cost fixpoint and reachability over one program."""
    return CostContext(
        program=program,
        costs=analyze_costs(program),
        entry_points=entry_point_names(program),
        hot_path=solver_reachable(program),
        telemetry=tuple(telemetry),
    )


@register_rule
class CostDeclarationRule(CostRule):
    """R500: inferred cost must be covered by the ``@cost`` declaration.

    A declaration is a machine-checked promise: the ``repro cost`` table
    (and scaling decisions built on it) trusts declared bounds, so an
    annotation tighter than the inferred reality would advertise a cheap
    function that is not.  Over-declaration is legal — bounding work the
    analysis cannot see (method calls, library internals) from above is
    the sanctioned idiom, and R504 keeps generous bounds honest against
    measurements.  Solver entry points must carry a declaration at all:
    an unlabeled entry point is exactly the blind spot this tier exists
    to close.
    """

    id = "R500"
    name = "cost-declaration"
    summary = "inferred costs must be covered by @cost declarations"

    def check_cost(self, context: CostContext) -> Iterable[Finding]:
        program = context.program
        entry_points = set(context.entry_points)
        for qualified, record in context.costs.items():
            declaration = record.declared
            if declaration is None:
                if qualified not in entry_points:
                    continue
                if program.config.is_exempt(self.id, qualified):
                    continue
                info = program.calls.functions[qualified]
                yield program.finding(
                    info.module, info.line, self.id,
                    f"solver entry point {info.name!r} has no @cost "
                    "declaration; declare its asymptotic bound (the "
                    f"analysis infers O({record.inferred.render()}))",
                )
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            for problem in declaration.problems:
                yield program.finding(
                    info.module, declaration.line, self.id,
                    f"malformed @cost declaration on {info.name!r}: "
                    f"{problem}",
                )
            if declaration.bound is None:
                continue
            if not record.inferred.covered_by(declaration.bound):
                detail = (
                    f" ({record.inferred.reason})"
                    if record.inferred.unbounded
                    else ""
                )
                yield program.finding(
                    info.module, declaration.line, self.id,
                    f"{info.name!r} is declared "
                    f"O({declaration.expression}) but the analysis "
                    f"infers O({record.inferred.render()}){detail}; "
                    "widen the declaration or remove the work",
                )


@register_rule
class HotLoopAllocationRule(CostRule):
    """R501: no undeclared superlinear allocation on a solver hot path.

    An array allocation inside a loop over ``n``/``m``/``q``/``c`` turns
    into allocator pressure exactly where the paper's instances grow;
    hoisting the buffer (or declaring the cost so the table shows it) is
    always possible.  Only *undeclared* functions are flagged: a
    ``@cost`` declaration covering the loop already puts the behavior on
    the record, and R500 verifies it.
    """

    id = "R501"
    name = "hot-loop-allocation"
    summary = "no undeclared allocation inside symbolic loops on hot paths"

    def check_cost(self, context: CostContext) -> Iterable[Finding]:
        program = context.program
        for qualified in sorted(context.hot_path):
            record = context.costs.get(qualified)
            if record is None or record.declared is not None:
                continue
            if not record.local.allocations:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            for site in record.local.allocations:
                yield program.finding(
                    info.module, site.line, self.id,
                    f"{info.name!r} is on a solver hot path and "
                    f"{site.detail} without a @cost declaration; hoist "
                    "the allocation out of the loop or declare the bound",
                )


@register_rule
class DenseMetricScaleRule(CostRule):
    """R502: no dense ``Metric`` build reachable from ``scale="large"``.

    ``scale="large"`` promises a code path survives 10^3-10^5 nodes; a
    dense all-pairs metric is Theta(n^2) memory and kills that promise
    on contact.  The paper's LP (Thm 3.7) is naturally sparse, so the
    sparse/lazy path always exists — this rule makes reaching for the
    dense one a finding instead of an OOM three weeks later.
    """

    id = "R502"
    name = "dense-metric-scale"
    summary = "scale='large' functions must not reach dense metric builds"

    def check_cost(self, context: CostContext) -> Iterable[Finding]:
        program = context.program
        for qualified, record in context.costs.items():
            declaration = record.declared
            if declaration is None or declaration.scale != "large":
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            for reached in sorted(reachable_from(program, [qualified])):
                target = context.costs.get(reached)
                if target is None or not target.local.dense_builds:
                    continue
                site = target.local.dense_builds[0]
                via = (
                    f"line {site.line}"
                    if reached == qualified
                    else f"via {reached!r}, line {site.line}"
                )
                yield program.finding(
                    info.module, declaration.line, self.id,
                    f"{info.name!r} is tagged scale='large' but can reach "
                    f"a dense all-pairs metric build ({site.detail}; "
                    f"{via}); use the sparse/batched path or drop the tag",
                )


@register_rule
class ReferenceOnHotPathRule(CostRule):
    """R503: no ``*_reference`` oracle call on a solver hot path.

    The ``*_reference`` twins exist to check the vectorized kernels, not
    to run in production — they are scalar Python loops, typically a
    couple of orders of magnitude slower.  R203 pairs them with their
    fast twins; this rule makes sure the slow twin never leaks into the
    solver call graph (tests and benchmarks, which legitimately call
    oracles, live outside the hot set).
    """

    id = "R503"
    name = "reference-on-hot-path"
    summary = "no *_reference oracle calls on solver hot paths"

    def check_cost(self, context: CostContext) -> Iterable[Finding]:
        program = context.program
        for qualified in sorted(context.hot_path):
            record = context.costs.get(qualified)
            if record is None or not record.local.reference_calls:
                continue
            if program.config.is_exempt(self.id, qualified):
                continue
            info = program.calls.functions[qualified]
            for site in record.local.reference_calls:
                yield program.finding(
                    info.module, site.line, self.id,
                    f"{info.name!r} calls scalar oracle {site.text!r} on "
                    "a solver hot path; call the vectorized twin instead "
                    "(the oracle exists for tests)",
                )


@register_rule
class StaleCostDeclarationRule(CostRule):
    """R504: declared cost must not contradict measured scaling.

    The static tier under-approximates by construction, so a declaration
    can pass R500 while the code actually scales worse — behind a method
    call, a library routine, an accidental quadratic.  This rule closes
    the loop empirically: ``--profile-check`` supplies timings at two or
    three instance sizes, a log-log fit extracts the measured exponent
    per varied symbol, and a fit exceeding the declared degree (plus
    slack for log factors and noise) flags the declaration as stale.
    Measuring *better* than declared is never a finding — declarations
    are upper bounds.
    """

    id = "R504"
    name = "stale-cost-declaration"
    summary = "declared costs must not contradict profiled scaling"

    def check_cost(self, context: CostContext) -> Iterable[Finding]:
        if not context.telemetry:
            return
        program = context.program
        for stale in stale_declarations(context.costs, context.telemetry):
            if program.config.is_exempt(self.id, stale.qualified):
                continue
            record = context.costs[stale.qualified]
            declaration = record.declared
            assert declaration is not None
            info = program.calls.functions[stale.qualified]
            sizes = ", ".join(str(size) for size in stale.sizes)
            yield program.finding(
                info.module, declaration.line, self.id,
                f"{info.name!r} declares degree "
                f"{stale.declared_degree:g} in {stale.symbol!r} "
                f"(O({declaration.expression})) but timings at sizes "
                f"[{sizes}] fit {stale.symbol}^"
                f"{stale.fitted_exponent:.2f}; update the declaration "
                "or fix the regression",
            )
