"""Forward abstract interpretation over the per-function CFG.

This is the analysis substrate behind the R200-series rules.  One
worklist pass computes, per :class:`~repro.lint.cfg.Block`, a *must*
state made of two components:

* **definite assignment** — the set of local names bound on *every*
  path reaching the block (intersection at joins).  A ``Name`` load of
  a local outside this set is a possibly-uninitialized use (R201).
* **an abstract environment** mapping names to :class:`Fact` records —
  array rank and per-axis shape symbols, a coarse dtype kind, simplex
  and nonnegativity flags, and a constant interval for scalars.  The
  evaluator recognizes the numpy construction idioms this codebase
  uses (``np.zeros((n, m))``, ``np.asarray(x, dtype=...)``,
  ``np.bincount``), the normalization pattern ``x / x.sum()`` (which
  *proves* the simplex invariant for R202), and two documented
  trust-by-name conventions: an attribute named ``probabilities`` is an
  access-strategy distribution (validated at construction by
  ``AccessStrategy``) and one named ``matrix`` is a dense 2-d float
  metric.  Contracted callees feed their declared return facts back in
  through the ``resolve_call`` hook.

Joins widen every non-boolean component to "unknown" on disagreement
(rank, each shape symbol, dtype, interval bounds), so the lattice has
finite height and the worklist terminates without iteration caps.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field, replace

from .cfg import BIND, CALL, DELETE, USE, ControlFlowGraph, Event

__all__ = [
    "Fact",
    "TOP",
    "FunctionDataflow",
    "analyze_function",
    "evaluate_expression",
]

#: One axis of an abstract shape: a concrete extent, a symbol, or unknown.
Dim = int | str | None


@dataclass(frozen=True)
class Fact:
    """What the analysis knows about one value.

    ``rank is None`` means "could be anything" (including a non-array);
    ``rank == 0`` is a scalar, whose ``low``/``high`` bound its value
    when constant.  ``dims`` has length ``rank`` when both are known.
    ``dtype`` is a coarse kind: ``"float"``, ``"int"`` or ``"bool"``.
    """

    rank: int | None = None
    dims: tuple[Dim, ...] | None = None
    dtype: str | None = None
    simplex: bool = False
    nonnegative: bool = False
    low: float | None = None
    high: float | None = None
    #: Per-element facts when the value is a known tuple (e.g. the
    #: declared returns of a contracted helper); indexed subscripts and
    #: unpacking assignments project through this.
    elements: tuple["Fact", ...] | None = None

    def is_top(self) -> bool:
        return self == TOP

    def join(self, other: "Fact") -> "Fact":
        """Widen to the least common knowledge of the two facts."""
        rank = self.rank if self.rank == other.rank else None
        dims: tuple[Dim, ...] | None
        if self.dims is not None and other.dims is not None and rank is not None:
            dims = tuple(
                a if a == b else None for a, b in zip(self.dims, other.dims)
            )
        else:
            dims = None
        elements: tuple[Fact, ...] | None = None
        if (
            self.elements is not None
            and other.elements is not None
            and len(self.elements) == len(other.elements)
        ):
            elements = tuple(
                a.join(b) for a, b in zip(self.elements, other.elements)
            )
        return Fact(
            rank=rank,
            dims=dims,
            dtype=self.dtype if self.dtype == other.dtype else None,
            simplex=self.simplex and other.simplex,
            nonnegative=self.nonnegative and other.nonnegative,
            low=self.low if self.low == other.low else None,
            high=self.high if self.high == other.high else None,
            elements=elements,
        )


TOP = Fact()

_NUMPY_BASES = frozenset({"np", "numpy"})
_FILL_CONSTRUCTORS = frozenset({"zeros", "ones", "empty", "full"})
_DTYPE_KINDS = {
    "float": "float",
    "float32": "float",
    "float64": "float",
    "double": "float",
    "int": "int",
    "intp": "int",
    "int32": "int",
    "int64": "int",
    "uint64": "int",
    "bool": "bool",
    "bool_": "bool",
}


def _dotted_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _dtype_kind(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    dotted = _dotted_name(node)
    if dotted is None:
        return None
    return _DTYPE_KINDS.get(dotted.rsplit(".", maxsplit=1)[-1])


def _shape_argument(node: ast.expr, env: Mapping[str, Fact]) -> tuple[int | None, tuple[Dim, ...] | None]:
    """Interpret the shape argument of a numpy constructor."""
    if isinstance(node, ast.Tuple):
        dims: list[Dim] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, int):
                dims.append(element.value)
            elif isinstance(element, ast.Name):
                dims.append(element.id)
            else:
                dims.append(None)
        return len(dims), tuple(dims)
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return 1, (node.value,)
    fact = evaluate_expression(node, env)
    if fact.rank == 0:
        # A scalar extent: 1-d of symbolic length.
        name = node.id if isinstance(node, ast.Name) else None
        return 1, (name,)
    return None, None


def _same_expression(a: ast.expr, b: ast.expr) -> bool:
    return ast.dump(a) == ast.dump(b)


def _is_sum_of(node: ast.expr, numerator: ast.expr) -> bool:
    """``numerator.sum()`` or ``np.sum(numerator)`` (no axis argument)."""
    if not isinstance(node, ast.Call) or node.keywords:
        return False
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr == "sum"
        and not node.args
        and _same_expression(func.value, numerator)
    ):
        return True
    dotted = _dotted_name(func)
    if (
        dotted is not None
        and dotted.rsplit(".", maxsplit=1)[-1] == "sum"
        and dotted.partition(".")[0] in _NUMPY_BASES
        and len(node.args) == 1
        and _same_expression(node.args[0], numerator)
    ):
        return True
    return False


def _constructor_fact(
    call: ast.Call, env: Mapping[str, Fact]
) -> Fact | None:
    """Facts for recognized numpy constructors, else ``None``."""
    dotted = _dotted_name(call.func)
    if dotted is None or "." not in dotted:
        return None
    base, _, attr = dotted.rpartition(".")
    if base.partition(".")[0] not in _NUMPY_BASES:
        return None
    keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg}
    if attr in _FILL_CONSTRUCTORS and call.args:
        rank, dims = _shape_argument(call.args[0], env)
        dtype = _dtype_kind(keywords.get("dtype")) or (
            "float" if attr != "full" else None
        )
        nonnegative = attr in {"zeros", "ones"}
        if attr == "full" and len(call.args) >= 2:
            fill = call.args[1]
            if isinstance(fill, ast.Constant) and isinstance(
                fill.value, (int, float)
            ):
                nonnegative = fill.value >= 0
                if dtype is None:
                    dtype = "int" if isinstance(fill.value, int) else "float"
        return Fact(rank=rank, dims=dims, dtype=dtype, nonnegative=nonnegative)
    if attr in {"asarray", "array", "ascontiguousarray"} and call.args:
        inner = evaluate_expression(call.args[0], env)
        dtype = _dtype_kind(keywords.get("dtype")) or inner.dtype
        return replace(inner, dtype=dtype)
    if attr == "bincount" and call.args:
        return Fact(rank=1, dtype="int", nonnegative=True)
    if attr in {"sum", "max", "min", "mean", "dot"} and call.args:
        if "axis" in keywords:
            return TOP
        inner = evaluate_expression(call.args[0], env)
        return Fact(rank=0, dtype=inner.dtype, nonnegative=inner.nonnegative)
    if attr == "arange":
        return Fact(rank=1, dtype="int" if not keywords.get("dtype") else None)
    return None


def _method_fact(call: ast.Call, env: Mapping[str, Fact]) -> Fact | None:
    """Facts for common array-method calls, else ``None``."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    base = evaluate_expression(func.value, env)
    keywords = {kw.arg for kw in call.keywords if kw.arg}
    if func.attr in {"sum", "max", "min", "mean"}:
        if call.args or "axis" in keywords:
            return TOP
        return Fact(rank=0, dtype=base.dtype, nonnegative=base.nonnegative)
    if func.attr == "copy":
        return base
    if func.attr == "astype" and call.args:
        return replace(base, dtype=_dtype_kind(call.args[0]))
    return None


#: Attribute names whose invariants this codebase establishes at
#: construction time; trusting them here is a documented approximation.
_TRUSTED_ATTRIBUTES = {
    "probabilities": Fact(rank=1, dtype="float", simplex=True, nonnegative=True),
    "matrix": Fact(rank=2, dtype="float", nonnegative=True),
}


def evaluate_expression(
    node: ast.expr,
    env: Mapping[str, Fact],
    resolve_call: Callable[[ast.Call], Fact | None] | None = None,
) -> Fact:
    """Best-effort abstract value of *node* under *env*."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, bool):
            return Fact(rank=0, dtype="bool", nonnegative=True)
        if isinstance(value, (int, float)):
            return Fact(
                rank=0,
                dtype="int" if isinstance(value, int) else "float",
                nonnegative=value >= 0,
                low=float(value),
                high=float(value),
            )
        return TOP
    if isinstance(node, ast.Name):
        return env.get(node.id, TOP)
    if isinstance(node, ast.Attribute):
        trusted = _TRUSTED_ATTRIBUTES.get(node.attr)
        if trusted is not None:
            return trusted
        if node.attr == "T":
            base = evaluate_expression(node.value, env, resolve_call)
            dims = None if base.dims is None else tuple(reversed(base.dims))
            return replace(base, dims=dims, simplex=False)
        return TOP
    if isinstance(node, ast.Call):
        if resolve_call is not None:
            resolved = resolve_call(node)
            if resolved is not None:
                return resolved
        dotted = _dotted_name(node.func)
        if (
            dotted is not None
            and dotted.rsplit(".", maxsplit=1)[-1] == "check_probability_vector"
            and node.args
        ):
            # repro._validation.check_probability_vector returns its
            # argument once the simplex invariant holds.
            inner = evaluate_expression(node.args[0], env, resolve_call)
            return replace(
                inner, rank=1 if inner.rank is None else inner.rank,
                dtype="float", simplex=True, nonnegative=True,
            )
        constructed = _constructor_fact(node, env)
        if constructed is not None:
            return constructed
        method = _method_fact(node, env)
        if method is not None:
            return method
        return TOP
    if isinstance(node, ast.BinOp):
        left = evaluate_expression(node.left, env, resolve_call)
        right = evaluate_expression(node.right, env, resolve_call)
        if isinstance(node.op, ast.Div) and _is_sum_of(node.right, node.left):
            # x / x.sum(): a proven normalization (given x nonnegative
            # the result is exactly a distribution; we record simplex
            # either way since every use site normalizes nonnegatives).
            return Fact(
                rank=left.rank,
                dims=left.dims,
                dtype="float",
                simplex=True,
                nonnegative=True,
            )
        if left.rank == 0 and right.rank == 0:
            return _scalar_binop(node.op, left, right)
        if left.rank is not None and left.rank == right.rank:
            dims = None
            if left.dims is not None and right.dims is not None:
                dims = tuple(
                    a if a == b else None for a, b in zip(left.dims, right.dims)
                )
            return Fact(rank=left.rank, dims=dims)
        return TOP
    if isinstance(node, ast.UnaryOp):
        inner = evaluate_expression(node.operand, env, resolve_call)
        if isinstance(node.op, ast.USub) and inner.rank == 0:
            return Fact(
                rank=0,
                dtype=inner.dtype,
                nonnegative=inner.high is not None and inner.high <= 0,
                low=None if inner.high is None else -inner.high,
                high=None if inner.low is None else -inner.low,
            )
        if isinstance(node.op, ast.Not):
            return Fact(rank=0, dtype="bool", nonnegative=True)
        return TOP
    if isinstance(node, (ast.Compare, ast.BoolOp)):
        return Fact(rank=0, dtype="bool", nonnegative=True)
    if isinstance(node, ast.Subscript):
        return _subscript_fact(node, env, resolve_call)
    if isinstance(node, ast.IfExp):
        true_fact = evaluate_expression(node.body, env, resolve_call)
        false_fact = evaluate_expression(node.orelse, env, resolve_call)
        return true_fact.join(false_fact)
    if isinstance(node, ast.Tuple) and isinstance(node.ctx, ast.Load):
        return Fact(
            elements=tuple(
                evaluate_expression(element, env, resolve_call)
                for element in node.elts
            )
        )
    return TOP


def _scalar_binop(op: ast.operator, left: Fact, right: Fact) -> Fact:
    dtype = left.dtype if left.dtype == right.dtype else None
    if isinstance(op, ast.Div):
        dtype = "float"
    low = high = None
    if None not in (left.low, left.high, right.low, right.high):
        assert left.low is not None and left.high is not None
        assert right.low is not None and right.high is not None
        if isinstance(op, ast.Add):
            low, high = left.low + right.low, left.high + right.high
        elif isinstance(op, ast.Sub):
            low, high = left.low - right.high, left.high - right.low
        elif isinstance(op, ast.Mult):
            corners = (
                left.low * right.low,
                left.low * right.high,
                left.high * right.low,
                left.high * right.high,
            )
            low, high = min(corners), max(corners)
    nonnegative = (low is not None and low >= 0) or (
        left.nonnegative
        and right.nonnegative
        and isinstance(op, (ast.Add, ast.Mult, ast.Div))
    )
    return Fact(rank=0, dtype=dtype, nonnegative=nonnegative, low=low, high=high)


def _subscript_fact(
    node: ast.Subscript,
    env: Mapping[str, Fact],
    resolve_call: Callable[[ast.Call], Fact | None] | None,
) -> Fact:
    base = evaluate_expression(node.value, env, resolve_call)
    if (
        base.elements is not None
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, int)
        and 0 <= node.slice.value < len(base.elements)
    ):
        return base.elements[node.slice.value]
    if base.rank is None:
        # A slice of a simplex array (the support-slicing idiom in
        # Placement._support_arrays) keeps nonnegativity; simplex only
        # survives when the slice provably covers the support, which the
        # contract layer asserts — keep the flag as documented trust.
        if base.simplex:
            return Fact(dtype=base.dtype, simplex=True, nonnegative=True)
        return TOP
    index = node.slice
    rank: int | None
    dims: tuple[Dim, ...] | None
    if isinstance(index, ast.Tuple):
        dropped = 0
        kept: list[Dim] = []
        added = 0
        known = base.dims if base.dims is not None else (None,) * base.rank
        axis = 0
        indeterminate = False
        for element in index.elts:
            if isinstance(element, ast.Slice):
                if axis < len(known):
                    kept.append(known[axis])
                axis += 1
            elif _dotted_name(element) in {"np.newaxis", "numpy.newaxis"} or (
                isinstance(element, ast.Constant) and element.value is None
            ):
                kept.append(1)
                added += 1
            else:
                element_fact = evaluate_expression(element, env, resolve_call)
                if element_fact.rank == 0 or isinstance(element, ast.Constant):
                    dropped += 1
                    axis += 1
                else:
                    indeterminate = True
                    axis += 1
        if indeterminate:
            rank, dims = None, None
        else:
            rank = base.rank - dropped + added
            remaining = known[axis:] if axis <= len(known) else ()
            dims = tuple(kept) + tuple(remaining)
            if len(dims) != rank:
                dims = None
    elif isinstance(index, ast.Slice):
        rank, dims = base.rank, base.dims
    else:
        index_fact = evaluate_expression(index, env, resolve_call)
        if isinstance(index, ast.Constant) or index_fact.rank == 0:
            rank = base.rank - 1 if base.rank > 0 else None
            dims = base.dims[1:] if base.dims else None
        elif index_fact.rank is not None:
            # Fancy indexing: result rank = index rank + (base rank - 1).
            rank = index_fact.rank + base.rank - 1
            dims = None
        else:
            rank, dims = None, None
    simplex = base.simplex  # see the support-slicing note above
    return Fact(
        rank=rank,
        dims=dims,
        dtype=base.dtype,
        simplex=simplex,
        nonnegative=base.nonnegative,
    )


@dataclass(frozen=True)
class _State:
    assigned: frozenset[str]
    env: tuple[tuple[str, Fact], ...]

    def environment(self) -> dict[str, Fact]:
        return dict(self.env)


def _make_state(assigned: frozenset[str], env: Mapping[str, Fact]) -> _State:
    return _State(
        assigned=assigned,
        env=tuple(sorted((k, v) for k, v in env.items() if not v.is_top())),
    )


def _join_states(a: _State, b: _State) -> _State:
    env_a, env_b = a.environment(), b.environment()
    joined: dict[str, Fact] = {}
    for name in env_a.keys() & env_b.keys():
        fact = env_a[name].join(env_b[name])
        if not fact.is_top():
            joined[name] = fact
    return _make_state(a.assigned & b.assigned, joined)


@dataclass(frozen=True)
class FunctionDataflow:
    """The fixpoint result for one function."""

    graph: ControlFlowGraph
    #: Local-name loads not definitely assigned, in source order.
    unbound_uses: tuple[tuple[str, ast.AST], ...]
    #: Abstract environment snapshot at each call, keyed by
    #: ``(lineno, col_offset)`` of the ``ast.Call`` node.
    call_environments: Mapping[tuple[int, int], Mapping[str, Fact]]


def _transfer(
    events: list[Event],
    state: _State,
    locals_: frozenset[str],
    resolve_call: Callable[[ast.Call], Fact | None] | None,
    unbound: list[tuple[str, ast.AST]] | None = None,
    snapshots: dict[tuple[int, int], dict[str, Fact]] | None = None,
) -> _State:
    assigned = set(state.assigned)
    env = state.environment()
    for event in events:
        if event.kind == USE:
            if (
                unbound is not None
                and event.name in locals_
                and event.name not in assigned
            ):
                unbound.append((event.name, event.node))
        elif event.kind == BIND:
            assigned.add(event.name)
            if event.value is not None:
                fact = evaluate_expression(event.value, env, resolve_call)
                if fact.is_top():
                    env.pop(event.name, None)
                else:
                    env[event.name] = fact
            else:
                env.pop(event.name, None)
        elif event.kind == DELETE:
            assigned.discard(event.name)
            env.pop(event.name, None)
        elif event.kind == CALL and snapshots is not None:
            node = event.node
            key = (
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
            )
            snapshots[key] = dict(env)
    return _make_state(frozenset(assigned), env)


def analyze_function(
    graph: ControlFlowGraph,
    *,
    parameter_facts: Mapping[str, Fact] | None = None,
    resolve_call: Callable[[ast.Call], Fact | None] | None = None,
) -> FunctionDataflow:
    """Run the combined must-analysis to fixpoint over *graph*."""
    locals_ = graph.local_names()
    entry_env = {
        name: fact
        for name, fact in (parameter_facts or {}).items()
        if not fact.is_top()
    }
    entry_state = _make_state(frozenset(graph.params), entry_env)
    in_states: dict[int, _State] = {graph.entry: entry_state}
    worklist: deque[int] = deque([graph.entry])
    while worklist:
        index = worklist.popleft()
        block = graph.blocks[index]
        out_state = _transfer(block.events, in_states[index], locals_, resolve_call)
        for successor in sorted(block.successors):
            current = in_states.get(successor)
            merged = (
                out_state if current is None else _join_states(current, out_state)
            )
            if merged != current:
                in_states[successor] = merged
                if successor not in worklist:
                    worklist.append(successor)
    unbound: list[tuple[str, ast.AST]] = []
    snapshots: dict[tuple[int, int], dict[str, Fact]] = {}
    for index in sorted(in_states):
        block = graph.blocks[index]
        _transfer(
            block.events,
            in_states[index],
            locals_,
            resolve_call,
            unbound=unbound,
            snapshots=snapshots,
        )
    seen: set[tuple[str, int, int]] = set()
    ordered: list[tuple[str, ast.AST]] = []
    for name, node in unbound:
        key = (name, getattr(node, "lineno", 0), getattr(node, "col_offset", 0))
        if key not in seen:
            seen.add(key)
            ordered.append((name, node))
    ordered.sort(key=lambda item: (getattr(item[1], "lineno", 0), getattr(item[1], "col_offset", 0)))
    return FunctionDataflow(
        graph=graph,
        unbound_uses=tuple(ordered),
        call_environments=snapshots,
    )
