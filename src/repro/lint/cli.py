"""Command-line front-end for the linter, deps viewer and trace matrix.

Used both standalone (``python -m repro.lint``) and as the ``repro
lint`` / ``repro deps`` / ``repro trace`` subcommands of the main CLI.  Exit codes follow
convention:

* 0 — no findings (or none that ``--fail-on`` gates on)
* 1 — gating findings reported
* 2 — the linter itself could not run (bad path, bad config, bad baseline)
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import TYPE_CHECKING

from ..exceptions import LintError

if TYPE_CHECKING:  # pragma: no cover - runtime import stays lazy
    from .costmodel import CostObservation
from .config import LintConfig, load_config, merge_cli_options
from .engine import ParseCache, lint_paths, registered_rules
from .findings import Finding, render_json, render_text
from .interproc import load_module_graph
from .modgraph import render_deps_dot, render_deps_json, render_deps_tree

__all__ = [
    "add_lint_arguments",
    "add_deps_arguments",
    "add_trace_arguments",
    "add_cost_arguments",
    "add_errors_arguments",
    "render_rule_index_markdown",
    "run_lint",
    "run_deps",
    "run_trace",
    "run_cost",
    "run_errors",
    "main",
]

#: ``--fail-on r1xx-only`` gates the exit code on these rule ids.
_GRAPH_RULE_PATTERN = re.compile(r"^R1\d\d$")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``lint`` options to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format (json is stable and machine-readable)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--whole-program",
        action="store_true",
        help="also run the graph-level R100-series rules (layering, "
        "cycles, validation flow, exception escape, dead exports)",
    )
    parser.add_argument(
        "--dataflow",
        action="store_true",
        help="also run the R200-series dataflow and contract rules "
        "(call-site shape/dtype contracts, unbound locals, simplex "
        "invariants, oracle pairing, paper traceability)",
    )
    parser.add_argument(
        "--effects",
        action="store_true",
        help="also run the R400-series effect/concurrency-safety rules "
        "(effect-declaration checks, pure-function writes, ambient RNG "
        "on solver entry points, pool picklability, telemetry scoping)",
    )
    parser.add_argument(
        "--cost",
        action="store_true",
        help="also run the R500-series asymptotic-cost rules (declared "
        "vs inferred bounds, hot-loop allocations, dense metric builds "
        "behind scale='large', reference oracles on hot paths)",
    )
    parser.add_argument(
        "--profile-check",
        default=None,
        metavar="TELEMETRY",
        help="a repro-cost-telemetry JSON file with timings at two or "
        "more instance sizes; R504 flags declarations the measured "
        "scaling contradicts; implies --cost",
    )
    parser.add_argument(
        "--certificate",
        default=None,
        metavar="OUT",
        help="write the JSON parallel-safety certificate (every solver "
        "entry point with its inferred effect set) to OUT; implies "
        "--effects",
    )
    parser.add_argument(
        "--errors",
        action="store_true",
        help="also run the R600-series exception-flow and "
        "resource-safety rules (escape sets vs @raises declarations, "
        "resource leaks on exceptional paths, broad handlers on hot "
        "paths, non-ReproError entry-point escapes, unclosed scopes)",
    )
    parser.add_argument(
        "--error-contract",
        default=None,
        metavar="OUT",
        dest="error_contract",
        help="write the JSON error-contract certificate (every solver "
        "entry point with its inferred escape set and declared "
        "transient failures) to OUT; implies --errors",
    )
    parser.add_argument(
        "--sarif",
        default=None,
        metavar="OUT",
        help="additionally write the findings (including in-source "
        "suppressed ones) as a SARIF 2.1.0 document to OUT",
    )
    parser.add_argument(
        "--fail-on",
        choices=("any", "r1xx-only"),
        default="any",
        dest="fail_on",
        help="which findings set a non-zero exit code: every finding "
        "(default) or only the whole-program R100-series",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="REPORT",
        help="a previous `--format json` report; findings it already "
        "contains (same path, rule and message) are filtered out",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="with --list-rules, render the rule index as the markdown "
        "table embedded in docs/static_analysis.md",
    )


def add_deps_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``deps`` options to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to graph (default: src)",
    )
    rendering = parser.add_mutually_exclusive_group()
    rendering.add_argument(
        "--dot",
        action="store_true",
        help="emit Graphviz dot (lazy imports dashed, one rank per layer)",
    )
    rendering.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit the stable machine-readable graph document",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest one above the first path)",
    )


def _split_rules(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(part.strip().upper() for part in raw.split(",") if part.strip())


def _base_config(args: argparse.Namespace) -> LintConfig:
    explicit = Path(args.config) if args.config is not None else None
    search_from = Path(args.paths[0]) if args.paths else Path(".")
    return load_config(explicit, search_from=search_from)


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    return merge_cli_options(
        _base_config(args),
        select=_split_rules(args.select),
        ignore=_split_rules(args.ignore),
    )


def _load_baseline(path: str) -> frozenset[tuple[str, str, str]]:
    """Finding keys of a previous ``--format json`` report.

    Findings match on ``(path, rule id, message)``; lines and columns
    are deliberately ignored so unrelated edits do not resurrect
    baselined findings.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise LintError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    entries = document.get("findings") if isinstance(document, dict) else None
    if not isinstance(entries, list):
        raise LintError(
            f"baseline {path!r} is not a repro-lint JSON report "
            "(expected a 'findings' array)"
        )
    keys: set[tuple[str, str, str]] = set()
    for entry in entries:
        if not isinstance(entry, dict):
            raise LintError(f"baseline {path!r} contains a malformed finding")
        keys.add(
            (
                str(entry.get("path", "")),
                str(entry.get("rule_id", "")),
                str(entry.get("message", "")),
            )
        )
    return frozenset(keys)


def _gates_exit(finding: Finding, fail_on: str) -> bool:
    if fail_on == "r1xx-only":
        return _GRAPH_RULE_PATTERN.match(finding.rule_id) is not None
    return True


#: Rule-id series -> the lint tier (and flag) that runs it.
_TIER_BY_SERIES = {
    "R0": "per-file",
    "R1": "whole-program (`--whole-program`)",
    "R2": "dataflow (`--dataflow`)",
    "R3": "per-file",
    "R4": "effects (`--effects`)",
    "R5": "cost (`--cost`)",
    "R6": "errors (`--errors`)",
}


def render_rule_index_markdown() -> str:
    """The registered-rule index as the markdown table embedded in
    ``docs/static_analysis.md`` (``repro lint --list-rules --markdown``;
    a drift test keeps the doc in sync with the registry)."""
    lines = [
        "| Rule | Name | Tier | Checks |",
        "| --- | --- | --- | --- |",
    ]
    for rule_id, rule in sorted(registered_rules().items()):
        tier = _TIER_BY_SERIES.get(rule_id[:2], "per-file")
        lines.append(
            f"| {rule_id} | `{rule.name}` | {tier} | {rule.summary} |"
        )
    return "\n".join(lines) + "\n"


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    if args.list_rules:
        if getattr(args, "markdown", False):
            print(render_rule_index_markdown(), end="")
            return 0
        for rule_id, rule in sorted(registered_rules().items()):
            print(f"{rule_id} {rule.name}: {rule.summary}")
        return 0
    config = _resolve_config(args)
    certificate_path = getattr(args, "certificate", None)
    wants_effects = bool(getattr(args, "effects", False)) or (
        certificate_path is not None
    )
    telemetry_path = getattr(args, "profile_check", None)
    wants_cost = bool(getattr(args, "cost", False)) or (
        telemetry_path is not None
    )
    contract_path = getattr(args, "error_contract", None)
    wants_errors = bool(getattr(args, "errors", False)) or (
        contract_path is not None
    )
    telemetry: tuple[CostObservation, ...] = ()
    if telemetry_path is not None:
        from .costmodel import load_cost_telemetry

        telemetry = load_cost_telemetry(telemetry_path)
    sarif_path = getattr(args, "sarif", None)
    suppressed: list[Finding] | None = (
        [] if sarif_path is not None else None
    )
    cache = ParseCache()
    findings = lint_paths(
        args.paths,
        config,
        whole_program=bool(getattr(args, "whole_program", False)),
        dataflow=bool(getattr(args, "dataflow", False)),
        effects=wants_effects,
        cost=wants_cost,
        errors=wants_errors,
        cost_telemetry=telemetry,
        cache=cache,
        suppressed_sink=suppressed,
    )
    if certificate_path is not None:
        # The shared cache keeps this a zero-reparse pass over the same
        # files the lint run just analyzed.
        from .effects import build_certificate_for_paths, render_certificate

        document = build_certificate_for_paths(
            args.paths, config, cache=cache
        )
        try:
            Path(certificate_path).write_text(
                render_certificate(document), encoding="utf-8"
            )
        except OSError as exc:
            raise LintError(
                f"cannot write certificate {certificate_path!r}: {exc}"
            ) from exc
    if contract_path is not None:
        from .excflow import build_error_contract_for_paths, render_error_contract

        contract = build_error_contract_for_paths(
            args.paths, config, cache=cache
        )
        try:
            Path(contract_path).write_text(
                render_error_contract(contract), encoding="utf-8"
            )
        except OSError as exc:
            raise LintError(
                f"cannot write error contract {contract_path!r}: {exc}"
            ) from exc
    baseline_path = getattr(args, "baseline", None)
    if baseline_path is not None:
        known = _load_baseline(baseline_path)
        findings = [
            finding
            for finding in findings
            if (finding.path, finding.rule_id, finding.message) not in known
        ]
    if sarif_path is not None:
        from .sarif import render_sarif

        try:
            Path(sarif_path).write_text(
                render_sarif(findings, suppressed=suppressed or ()),
                encoding="utf-8",
            )
        except OSError as exc:
            raise LintError(
                f"cannot write SARIF report {sarif_path!r}: {exc}"
            ) from exc
    if args.output_format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("clean: no findings")
    fail_on = getattr(args, "fail_on", "any")
    return 1 if any(_gates_exit(f, fail_on) for f in findings) else 0


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``trace`` options to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="implementation files or directories to scan (default: src)",
    )
    rendering = parser.add_mutually_exclusive_group()
    rendering.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit the stable machine-readable coverage document",
    )
    rendering.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown table suitable for embedding in README",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every theorem row is covered on both sides "
        "and no unknown anchors exist",
    )


def run_trace(args: argparse.Namespace) -> int:
    """Execute a parsed ``trace`` invocation; returns the exit code."""
    # Runtime import: trace shares the parse/dataflow substrate, but the
    # deps-only code path must not pay for it.
    from .dataflow_rules import build_dataflow_context
    from .engine import ParseCache, iter_python_files
    from .interproc import build_program_context
    from .trace import render_matrix_json, render_matrix_markdown, render_matrix_text

    config = _base_config(args)
    cache = ParseCache()
    parsed = [cache.parsed(path) for path in iter_python_files(args.paths, config)]
    program = build_program_context(parsed, config, cache=cache)
    matrix = build_dataflow_context(program, cache=cache).trace_matrix()
    if args.json_output:
        print(render_matrix_json(matrix))
    elif args.markdown:
        print(render_matrix_markdown(matrix))
    else:
        print(render_matrix_text(matrix))
    if args.check:
        covered, total = matrix.coverage_counts()
        if covered < total or matrix.unknown:
            return 1
    return 0


def add_cost_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``cost`` options to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="implementation files or directories to analyze (default: src)",
    )
    rendering = parser.add_mutually_exclusive_group()
    rendering.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit the stable machine-readable cost-table document",
    )
    rendering.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown table suitable for embedding in README",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every listed function is declared and every "
        "declaration covers its inferred bound",
    )


def run_cost(args: argparse.Namespace) -> int:
    """Execute a parsed ``cost`` invocation; returns the exit code."""
    # Runtime import: the cost table shares the parse substrate, but the
    # deps-only code path must not pay for it.
    from .costmodel import (
        analyze_costs,
        build_cost_table,
        render_cost_table_json,
        render_cost_table_markdown,
        render_cost_table_text,
    )
    from .engine import iter_python_files
    from .interproc import build_program_context

    config = _base_config(args)
    cache = ParseCache()
    parsed = [cache.parsed(path) for path in iter_python_files(args.paths, config)]
    program = build_program_context(parsed, config, cache=cache)
    document = build_cost_table(program, analyze_costs(program))
    if args.json_output:
        print(render_cost_table_json(document), end="")
    elif args.markdown:
        print(render_cost_table_markdown(document))
    else:
        print(render_cost_table_text(document))
    if args.check:
        functions = document["functions"]
        assert isinstance(functions, dict)
        for entry in functions.values():
            assert isinstance(entry, dict)
            if entry.get("covered") is not True:
                return 1
    return 0


def add_errors_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``errors`` options to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="implementation files or directories to analyze (default: src)",
    )
    rendering = parser.add_mutually_exclusive_group()
    rendering.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit the stable machine-readable error-table document",
    )
    rendering.add_argument(
        "--markdown",
        action="store_true",
        help="emit a markdown table suitable for embedding in README",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless every solver entry point declares @raises, "
        "every declaration covers its inferred escape set, and no "
        "declaration is malformed",
    )


def run_errors(args: argparse.Namespace) -> int:
    """Execute a parsed ``errors`` invocation; returns the exit code."""
    # Runtime import: the error table shares the parse substrate, but
    # the deps-only code path must not pay for it.
    from .engine import iter_python_files
    from .excflow import (
        analyze_errors,
        build_error_table,
        build_exception_hierarchy,
        render_error_table_markdown,
        render_error_table_text,
    )
    from .interproc import build_program_context

    config = _base_config(args)
    cache = ParseCache()
    parsed = [cache.parsed(path) for path in iter_python_files(args.paths, config)]
    program = build_program_context(parsed, config, cache=cache)
    hierarchy = build_exception_hierarchy(program)
    errors_map = analyze_errors(program, hierarchy)
    document = build_error_table(program, errors_map, hierarchy)
    if args.json_output:
        print(json.dumps(document, indent=2, sort_keys=True))
    elif args.markdown:
        print(render_error_table_markdown(document))
    else:
        print(render_error_table_text(document))
    if args.check:
        functions = document["functions"]
        assert isinstance(functions, dict)
        for entry in functions.values():
            assert isinstance(entry, dict)
            if entry.get("problems") or entry.get("uncovered"):
                return 1
            if entry.get("entry_point") and entry.get("declared") is None:
                return 1
    return 0


def run_deps(args: argparse.Namespace) -> int:
    """Execute a parsed ``deps`` invocation; returns the exit code."""
    graph = load_module_graph(args.paths, _base_config(args))
    if args.dot:
        print(render_deps_dot(graph))
    elif args.json_output:
        print(render_deps_json(graph))
    else:
        print(render_deps_tree(graph))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro library",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
