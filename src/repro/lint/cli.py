"""Command-line front-end for the linter.

Used both standalone (``python -m repro.lint``) and as the ``repro
lint`` subcommand of the main CLI.  Exit codes follow convention:

* 0 — no findings
* 1 — findings reported
* 2 — the linter itself could not run (bad path, bad config)
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from ..exceptions import LintError
from .config import LintConfig, load_config, merge_cli_options
from .engine import lint_paths, registered_rules
from .findings import render_json, render_text

__all__ = ["add_lint_arguments", "run_lint", "main"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``lint`` options to *parser*."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="output_format",
        help="output format (json is stable and machine-readable)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--config",
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml to read [tool.repro-lint] from "
        "(default: nearest one above the first path)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )


def _split_rules(raw: str | None) -> frozenset[str] | None:
    if raw is None:
        return None
    return frozenset(part.strip().upper() for part in raw.split(",") if part.strip())


def _resolve_config(args: argparse.Namespace) -> LintConfig:
    explicit = Path(args.config) if args.config is not None else None
    search_from = Path(args.paths[0]) if args.paths else Path(".")
    config = load_config(explicit, search_from=search_from)
    return merge_cli_options(
        config,
        select=_split_rules(args.select),
        ignore=_split_rules(args.ignore),
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute a parsed ``lint`` invocation; returns the exit code."""
    if args.list_rules:
        for rule_id, rule in sorted(registered_rules().items()):
            print(f"{rule_id} {rule.name}: {rule.summary}")
        return 0
    config = _resolve_config(args)
    findings = lint_paths(args.paths, config)
    if args.output_format == "json":
        print(render_json(findings))
    elif findings:
        print(render_text(findings))
    else:
        print("clean: no findings")
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based invariant linter for the repro library",
    )
    add_lint_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return run_lint(args)
    except LintError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
