"""The per-module ruleset: R001–R007 and R301.

Each rule encodes one correctness contract of the reproduction (see
``docs/static_analysis.md`` for the paper-level rationale).  Rules are
deliberately small — a new invariant is typically ~20 lines: subclass
:class:`~repro.lint.engine.Rule`, decorate with ``@register_rule``, and
yield findings from :meth:`check`.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable

from .astutils import (
    callee_name,
    declared_all,
    dotted_name,
    exception_name,
    has_decorator,
    is_stub_body,
    module_level_functions,
    top_level_bound_names,
)
from .engine import ModuleContext, Rule, register_rule
from .findings import Finding

__all__ = [
    "ValidatedEntryPointRule",
    "ReproErrorOnlyRule",
    "MutableDefaultRule",
    "SeededRandomnessRule",
    "FloatEqualityRule",
    "NoPrintRule",
    "ExportIntegrityRule",
    "SolverResultContractRule",
]

_FunctionDef = ast.FunctionDef | ast.AsyncFunctionDef


@register_rule
class ValidatedEntryPointRule(Rule):
    """R001: public functions in the solver packages must validate input.

    The paper's approximation guarantees (Theorems 1.2–1.4, 3.7, 5.1)
    presuppose well-formed inputs — intersecting quorum systems, unit
    probability vectors, positive capacities.  Every public module-level
    function in the configured packages must therefore call a
    ``repro._validation`` checker (directly, or via another function of
    the same module), raise a precondition error itself, or carry an
    explicit exemption.
    """

    id = "R001"
    name = "validated-entry-point"
    summary = "public API functions must validate their inputs"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(ctx.config.validated_packages):
            return
        checker = re.compile(ctx.config.checker_pattern)
        functions = module_level_functions(ctx.tree)

        def validates_directly(fn: _FunctionDef) -> bool:
            for node in ast.walk(fn):
                if isinstance(node, ast.Raise):
                    return True
                if isinstance(node, ast.Call):
                    name = callee_name(node)
                    if name is not None and (
                        name in ctx.config.checker_names or checker.search(name)
                    ):
                        return True
            return False

        def validates(name: str, trail: frozenset[str]) -> bool:
            fn = functions.get(name)
            if fn is None or name in trail:
                return False
            if validates_directly(fn):
                return True
            callees = {
                called
                for node in ast.walk(fn)
                if isinstance(node, ast.Call)
                and (called := callee_name(node)) in functions
            }
            return any(validates(c, trail | {name}) for c in callees)

        for name, fn in functions.items():
            if name.startswith("_") or is_stub_body(fn):
                continue
            if has_decorator(fn, "overload"):
                continue
            if ctx.config.is_exempt(self.id, f"{ctx.module}.{name}"):
                continue
            if not validates(name, frozenset()):
                yield ctx.finding(
                    fn,
                    self.id,
                    f"public function {name!r} performs no input validation; "
                    "call a repro._validation checker, delegate to one, or "
                    "exempt it explicitly",
                )


@register_rule
class ReproErrorOnlyRule(Rule):
    """R002: deliberate failures must derive from ``ReproError``.

    Callers distinguish library failures (invalid quorum system,
    infeasible LP) from programming errors by catching ``ReproError``;
    a bare ``ValueError`` breaks that contract.  ``TypeError`` and
    ``NotImplementedError`` remain legal as programming-error signals.
    """

    id = "R002"
    name = "repro-error-only"
    summary = "raise only ReproError subclasses in library code"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = exception_name(node.exc)
            if name in ctx.config.banned_exceptions:
                yield ctx.finding(
                    node,
                    self.id,
                    f"raise of builtin {name!r}; raise a repro.exceptions."
                    "ReproError subclass instead (ValidationError also "
                    "inherits ValueError for compatibility)",
                )


@register_rule
class MutableDefaultRule(Rule):
    """R003: no mutable default argument values.

    A shared mutable default silently couples calls — one corrupted
    default probability list would poison every later solve.
    """

    id = "R003"
    name = "mutable-default"
    summary = "no mutable default arguments"

    _mutable_calls = frozenset(
        {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
    )

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call)
            and callee_name(node) in self._mutable_calls
        )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(d for d in node.args.kw_defaults if d is not None)
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        default,
                        self.id,
                        f"mutable default argument in {node.name!r}; default "
                        "to None and construct inside the function",
                    )


@register_rule
class SeededRandomnessRule(Rule):
    """R004: all randomness flows through an injected ``Generator``.

    Experiments and random network generators must be exactly
    reproducible; global ``np.random.*`` state or a seedless
    ``default_rng()`` makes runs unrepeatable.
    """

    id = "R004"
    name = "seeded-randomness"
    summary = "no global np.random.* and no seedless default_rng()"

    _safe_attrs = frozenset(
        {
            "Generator",
            "BitGenerator",
            "SeedSequence",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "MT19937",
            "SFC64",
        }
    )

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        # Names imported straight out of numpy.random, e.g.
        # ``from numpy.random import default_rng``.
        imported: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    imported[alias.asname or alias.name] = alias.name

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            seedless = not node.args and not node.keywords
            dotted = dotted_name(node.func)
            if dotted is not None:
                parts = dotted.split(".")
                if (
                    len(parts) == 3
                    and parts[0] in ("np", "numpy")
                    and parts[1] == "random"
                    and parts[2] not in self._safe_attrs
                ):
                    if parts[2] == "default_rng":
                        if seedless:
                            yield ctx.finding(
                                node,
                                self.id,
                                "seedless default_rng(); pass an explicit seed "
                                "or accept an injected Generator",
                            )
                    else:
                        yield ctx.finding(
                            node,
                            self.id,
                            f"global numpy.random.{parts[2]}(); inject a seeded "
                            "np.random.Generator instead",
                        )
                    continue
            if isinstance(node.func, ast.Name) and node.func.id in imported:
                original = imported[node.func.id]
                if original in self._safe_attrs:
                    continue
                if original == "default_rng":
                    if seedless:
                        yield ctx.finding(
                            node,
                            self.id,
                            "seedless default_rng(); pass an explicit seed "
                            "or accept an injected Generator",
                        )
                else:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"global numpy.random.{original}(); inject a seeded "
                        "np.random.Generator instead",
                    )


@register_rule
class FloatEqualityRule(Rule):
    """R005: no ``==``/``!=`` against floating-point literals.

    Delays, loads and probabilities are results of float arithmetic;
    exact comparison against a float literal is almost always a latent
    bug.  Use the shared helpers in :mod:`repro._numeric`
    (``is_unit`` / ``is_zero`` / ``is_close``) or a named tolerance such
    as ``repro._validation.PROBABILITY_TOLERANCE``.
    """

    id = "R005"
    name = "float-equality"
    summary = "no ==/!= comparisons with float literals"

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(
            node.op, (ast.USub, ast.UAdd)
        ):
            node = node.operand
        return isinstance(node, ast.Constant) and isinstance(node.value, float)

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if self._is_float_literal(left) or self._is_float_literal(right):
                    yield ctx.finding(
                        node,
                        self.id,
                        "float equality comparison; use repro._numeric "
                        "(is_unit/is_zero/is_close) or a named tolerance "
                        "(delay/probability values are inexact)",
                    )
                    break


@register_rule
class NoPrintRule(Rule):
    """R006: library code never prints.

    Reporting goes through ``repro.analysis.reporting`` and the CLI so
    that programmatic callers get clean stdout; stray prints in solver
    code corrupt ``--format json`` outputs and benchmark harnesses.
    """

    id = "R006"
    name = "no-print"
    summary = "no print() in library code"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(ctx.config.library_packages):
            return
        posix_path = ctx.path.replace("\\", "/")
        if any(posix_path.endswith(suffix) for suffix in ctx.config.print_allowed):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    "print() in library code; route output through "
                    "repro.analysis.reporting or the CLI layer",
                )


@register_rule
class ExportIntegrityRule(Rule):
    """R007: public modules declare ``__all__`` and it is truthful.

    The public surface is what the API-stability tests and docs index;
    an ``__all__`` entry that does not exist breaks ``import *`` and
    documents an API that is not there.
    """

    id = "R007"
    name = "export-integrity"
    summary = "public modules define a truthful __all__"

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(ctx.config.library_packages):
            return
        leaf = ctx.module.rsplit(".", 1)[-1]
        if leaf.startswith("_"):
            return
        located = declared_all(ctx.tree)
        if located is None:
            yield Finding(
                path=ctx.path,
                line=1,
                column=1,
                rule_id=self.id,
                message=f"public module {ctx.module!r} defines no __all__",
            )
            return
        node, exported = located
        if exported is None:
            # computed __all__ (concatenation, comprehension): statically
            # unverifiable, but the declaration obligation is met.
            return
        bound, has_star = top_level_bound_names(ctx.tree)
        if has_star:
            return
        for name in exported:
            if name not in bound:
                yield ctx.finding(
                    node,
                    self.id,
                    f"__all__ exports {name!r} but the module never binds it",
                )


@register_rule
class SolverResultContractRule(Rule):
    """R301: solver entry points return result objects, not tuples.

    The unified :class:`repro.core.results.SolveResult` contract gives
    every solver the same surface (placement, objective, load factor,
    provenance, telemetry).  A public ``solve_*`` / ``optimal_*``
    function that returns a bare tuple reintroduces the positional API
    the deprecation shims exist to retire, so new entry points must
    construct a result dataclass instead.
    """

    id = "R301"
    name = "solver-result-contract"
    summary = "solver entry points must not return bare tuples"

    _entry_pattern = re.compile(r"^(solve_|optimal_)")

    @staticmethod
    def _own_returns(fn: _FunctionDef) -> Iterable[ast.Return]:
        """Return statements of *fn* itself, skipping nested functions."""
        stack: list[ast.AST] = list(fn.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            if isinstance(node, ast.Return):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_tuple_annotation(node: ast.expr) -> bool:
        if isinstance(node, ast.Subscript):
            node = node.value
        name = dotted_name(node)
        return name is not None and name.rsplit(".", 1)[-1] in ("tuple", "Tuple")

    def check(self, ctx: ModuleContext) -> Iterable[Finding]:
        if not ctx.in_packages(ctx.config.validated_packages):
            return
        for name, fn in module_level_functions(ctx.tree).items():
            if name.startswith("_") or not self._entry_pattern.match(name):
                continue
            if is_stub_body(fn) or has_decorator(fn, "overload"):
                continue
            if ctx.config.is_exempt(self.id, f"{ctx.module}.{name}"):
                continue
            if fn.returns is not None and self._is_tuple_annotation(fn.returns):
                yield ctx.finding(
                    fn,
                    self.id,
                    f"solver entry point {name!r} is annotated to return a "
                    "tuple; return a repro.core.results.SolveResult subclass "
                    "(legacy unpacking is covered by its deprecation shim)",
                )
                continue
            for ret in self._own_returns(fn):
                if isinstance(ret.value, ast.Tuple):
                    yield ctx.finding(
                        ret,
                        self.id,
                        f"solver entry point {name!r} returns a bare tuple; "
                        "return a repro.core.results.SolveResult subclass "
                        "(legacy unpacking is covered by its deprecation shim)",
                    )
