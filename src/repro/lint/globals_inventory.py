"""Census of module-level mutable state, with read/write attribution.

The effects tier (:mod:`repro.lint.effects`) needs to know *what* global
state exists before it can reason about who touches it.  This module
walks every analyzed file's top level and records the mutable bindings —
registry singletons (``_DEFAULT = MetricsRegistry()``), cached metric
objects (``_LP_SOLVES = counter(...)``), container caches
(``_REGISTRY: dict = {}``), module-level RNG handles, and any name a
function rebinds via ``global`` — then attributes every read and write
site inside the package's module-level functions to its global.

Classification is syntactic and deliberately conservative in documented
ways: immutable module constants (numbers, strings, tuples, frozensets,
compiled regexes) are excluded; attribute/method mutation is recognized
through a fixed mutator-name list; globals of *other* modules are seen
only when rebound through ``global`` or touched by name in their home
module (cross-module aliasing of a bare global is not an idiom this
codebase uses).  ``docs/static_analysis.md`` spells out the
approximations.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from .astutils import callee_name, dotted_name, iter_top_level_statements
from .interproc import ProgramContext

__all__ = [
    "GlobalVariable",
    "GlobalAccess",
    "GlobalsInventory",
    "build_globals_inventory",
]

#: Value expressions classified as metric objects (fork-aware registry
#: state; writing them is ``writes-metrics``, not ``writes-global``).
_METRIC_FACTORIES = frozenset(
    {"counter", "gauge", "histogram", "Counter", "Gauge", "Histogram",
     "MetricsRegistry"}
)

#: Constructors yielding plain mutable containers.
_CONTAINER_FACTORIES = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque",
     "OrderedDict", "ChainMap"}
)

#: Module-level RNG handles (ambient randomness when unseeded).
_RNG_FACTORIES = frozenset({"default_rng", "RandomState", "Random"})

#: Constructors whose results are immutable — not inventoried.
_IMMUTABLE_FACTORIES = frozenset(
    {"frozenset", "tuple", "compile", "TypeVar", "namedtuple", "getenv",
     "property", "staticmethod", "classmethod"}
)

#: Method names that mutate their receiver in place.  Calling one of
#: these on a module-level global is a global write.
_MUTATOR_METHODS = frozenset(
    {
        "inc", "set", "observe", "reset",
        "append", "extend", "insert", "remove", "pop", "clear",
        "add", "discard", "update", "setdefault", "popitem",
        "appendleft", "popleft",
    }
)


@dataclass(frozen=True)
class GlobalVariable:
    """One module-level mutable binding."""

    #: Module the binding lives in.
    module: str
    #: Bare name of the binding.
    name: str
    #: ``module.name`` — the key used throughout the inventory.
    qualified: str
    #: ``"metric"`` (registry/counter objects), ``"container"``,
    #: ``"rng"``, ``"object"`` (other constructor calls), or
    #: ``"rebound"`` (reassigned via a ``global`` statement).
    kind: str
    #: 1-based line of the module-level binding (or first ``global``).
    line: int


@dataclass(frozen=True)
class GlobalAccess:
    """One read or write of a global inside a module-level function."""

    #: ``module.name`` of the accessed global.
    variable: str
    #: Qualified name of the accessing function.
    function: str
    #: 1-based source line of the access.
    line: int
    #: Whether the access mutates the global.
    write: bool
    #: Human-readable description of the site (``"_LP_SOLVES.inc(...)"``).
    detail: str


@dataclass(frozen=True)
class GlobalsInventory:
    """Every known mutable global plus its attributed access sites."""

    variables: Mapping[str, GlobalVariable]
    accesses: tuple[GlobalAccess, ...]

    def variable(self, qualified: str) -> GlobalVariable | None:
        return self.variables.get(qualified)

    def accesses_by(self, function: str) -> tuple[GlobalAccess, ...]:
        """All accesses attributed to one function."""
        return tuple(a for a in self.accesses if a.function == function)

    def writers_of(self, variable: str) -> tuple[GlobalAccess, ...]:
        """All write sites of one global, sorted by function then line."""
        return tuple(
            sorted(
                (a for a in self.accesses if a.variable == variable and a.write),
                key=lambda a: (a.function, a.line),
            )
        )

    def readers_of(self, variable: str) -> tuple[GlobalAccess, ...]:
        """All read sites of one global, sorted by function then line."""
        return tuple(
            sorted(
                (a for a in self.accesses if a.variable == variable and not a.write),
                key=lambda a: (a.function, a.line),
            )
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-ready view (embedded in the parallel-safety certificate)."""
        return {
            "variables": [
                {
                    "module": var.module,
                    "name": var.name,
                    "kind": var.kind,
                    "line": var.line,
                    "writers": sorted(
                        {a.function for a in self.writers_of(var.qualified)}
                    ),
                    "readers": sorted(
                        {a.function for a in self.readers_of(var.qualified)}
                    ),
                }
                for var in sorted(
                    self.variables.values(), key=lambda v: v.qualified
                )
            ]
        }


def _classify_value(value: ast.expr) -> str | None:
    """The inventory kind of a module-level binding's value, or ``None``
    when the value is immutable (constants, tuples, compiled regexes)."""
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                          ast.ListComp, ast.SetComp)):
        return "container"
    if isinstance(value, ast.Call):
        name = callee_name(value)
        if name is None:
            return "object"
        if name in _METRIC_FACTORIES:
            return "metric"
        if name in _CONTAINER_FACTORIES:
            return "container"
        if name in _RNG_FACTORIES:
            return "rng"
        if name in _IMMUTABLE_FACTORIES:
            return None
        return "object"
    return None


def _module_bindings(module: str, tree: ast.Module) -> Iterator[GlobalVariable]:
    """Mutable bindings declared at *module*'s top level."""
    for node in iter_top_level_statements(tree):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        if value is None:
            continue
        kind = _classify_value(value)
        if kind is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("__"):  # dunder metadata (__all__ etc.)
                continue
            yield GlobalVariable(
                module=module,
                name=target.id,
                qualified=f"{module}.{target.id}",
                kind=kind,
                line=node.lineno,
            )


def _rebound_globals(
    module: str, tree: ast.Module
) -> Iterator[tuple[str, int]]:
    """Names any function in *module* declares ``global`` (with the line)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Global):
            for name in node.names:
                yield name, node.lineno


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    current: ast.expr = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None


def _local_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names bound locally in *fn*: parameters plus store targets,
    minus anything declared ``global``."""
    args = fn.args
    names = {
        a.arg
        for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
            *((args.vararg,) if args.vararg else ()),
            *((args.kwarg,) if args.kwarg else ()),
        )
    }
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node is not fn:
                names.add(node.name)
        elif isinstance(node, ast.ClassDef):
            names.add(node.name)
    return names - declared_global


def _function_accesses(
    module: str,
    qualified: str,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    known: Mapping[str, GlobalVariable],
) -> Iterator[GlobalAccess]:
    """Attribute every global touch inside one function body."""

    def lookup(name: str) -> GlobalVariable | None:
        return known.get(f"{module}.{name}")

    local = _local_names(fn)
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)

    for node in ast.walk(fn):
        if isinstance(node, ast.Name):
            if node.id in local:
                continue
            var = lookup(node.id)
            if var is None:
                continue
            if isinstance(node.ctx, (ast.Store, ast.Del)):
                if node.id in declared_global:
                    yield GlobalAccess(
                        variable=var.qualified,
                        function=qualified,
                        line=node.lineno,
                        write=True,
                        detail=f"rebinds global {node.id!r}",
                    )
            else:
                yield GlobalAccess(
                    variable=var.qualified,
                    function=qualified,
                    line=node.lineno,
                    write=False,
                    detail=f"reads global {node.id!r}",
                )
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            root = _root_name(node.func)
            if root is None or root in local:
                continue
            var = lookup(root)
            if var is None:
                continue
            if node.func.attr in _MUTATOR_METHODS:
                yield GlobalAccess(
                    variable=var.qualified,
                    function=qualified,
                    line=node.lineno,
                    write=True,
                    detail=f"{root}.{node.func.attr}(...) mutates the global",
                )
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = _root_name(target)
                if root is None or root in local:
                    continue
                var = lookup(root)
                if var is None:
                    continue
                yield GlobalAccess(
                    variable=var.qualified,
                    function=qualified,
                    line=node.lineno,
                    write=True,
                    detail=f"assigns into global {root!r}",
                )


def build_globals_inventory(program: ProgramContext) -> GlobalsInventory:
    """Build the mutable-global census for one analyzed program."""
    variables: dict[str, GlobalVariable] = {}
    for module, parsed in program.files.items():
        if parsed.tree is None:
            continue
        for var in _module_bindings(module, parsed.tree):
            variables.setdefault(var.qualified, var)
        # A name rebound via ``global`` is mutable state even when its
        # module-level initializer is an immutable constant (``_ACTIVE =
        # None`` rebound by an installer function).
        for name, line in _rebound_globals(module, parsed.tree):
            variables.setdefault(
                f"{module}.{name}",
                GlobalVariable(
                    module=module,
                    name=name,
                    qualified=f"{module}.{name}",
                    kind="rebound",
                    line=line,
                ),
            )

    accesses: list[GlobalAccess] = []
    for qualified, info in program.calls.functions.items():
        accesses.extend(
            _function_accesses(info.module, qualified, info.node, variables)
        )

    return GlobalsInventory(
        variables=dict(sorted(variables.items())),
        accesses=tuple(accesses),
    )
