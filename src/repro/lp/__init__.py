"""Declarative linear-programming layer over scipy's HiGHS solver.

Public surface:

* :class:`~repro.lp.model.Model` — build LPs with variables, expressions
  and constraints.
* :class:`~repro.lp.model.Variable`, :class:`~repro.lp.model.LinExpr`,
  :class:`~repro.lp.model.Constraint` — the modeling primitives.
* :func:`~repro.lp.solve.solve_model` / :class:`~repro.lp.solve.Solution`
  — solving and reading back results.
"""

from .model import Constraint, LinExpr, Model, ModelCheckpoint, Variable
from .solve import Solution, solve_model

__all__ = [
    "Constraint",
    "LinExpr",
    "Model",
    "ModelCheckpoint",
    "Variable",
    "Solution",
    "solve_model",
]
