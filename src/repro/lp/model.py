"""A small declarative linear-programming modeling layer.

The paper's algorithms repeatedly need linear programs: the single-source
quorum placement LP (9)-(14), the GAP relaxation (15)-(18), and the
Naor-Wool load-optimal access strategy LP.  scipy's
:func:`scipy.optimize.linprog` wants raw matrices, which makes those
formulations error-prone to write directly.  This module provides the thin
modeling language the rest of the package builds on:

>>> from repro.lp import Model
>>> m = Model(name="example")
>>> x = m.variable("x", lb=0)
>>> y = m.variable("y", lb=0)
>>> _ = m.add_constraint(x + 2 * y >= 4, name="demand")
>>> m.minimize(3 * x + y)
>>> solution = m.solve()
>>> round(solution.objective, 6)
2.0
>>> round(solution.value(y), 6)
2.0

The layer is deliberately small: continuous variables, linear expressions,
``<=``/``>=``/``==`` constraints, and a single linear objective.  It
compiles to sparse matrices so the quorum-placement LPs (which have tens of
thousands of prefix constraints) stay cheap to build and solve.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Union

from .._validation import require
from ..exceptions import ValidationError

__all__ = ["Variable", "LinExpr", "Constraint", "Model", "ModelCheckpoint"]

Number = Union[int, float]


class LinExpr:
    """An immutable-ish linear expression ``sum(coef_i * var_i) + constant``.

    Expressions support ``+``, ``-``, scalar ``*`` and ``/``, and comparison
    operators that build :class:`Constraint` objects.  Variables are referred
    to by their integer index within a model; mixing variables from different
    models is detected when the constraint or objective is added.
    """

    __slots__ = ("coefficients", "constant")

    def __init__(
        self, coefficients: Mapping[int, float] | None = None, constant: float = 0.0
    ) -> None:
        self.coefficients: dict[int, float] = dict(coefficients or {})
        self.constant = float(constant)

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def from_terms(terms: Iterable[tuple["Variable", Number]], constant: float = 0.0) -> "LinExpr":
        """Build an expression from ``(variable, coefficient)`` pairs."""
        coefficients: dict[int, float] = {}
        for var, coef in terms:
            coefficients[var.index] = coefficients.get(var.index, 0.0) + float(coef)
        return LinExpr(coefficients, constant)

    def copy(self) -> "LinExpr":
        return LinExpr(self.coefficients, self.constant)

    # -- arithmetic ------------------------------------------------------------

    def _add_inplace(self, other: "LinExpr | Variable | Number", sign: float) -> "LinExpr":
        result = self.copy()
        if isinstance(other, LinExpr):
            for index, coef in other.coefficients.items():
                result.coefficients[index] = result.coefficients.get(index, 0.0) + sign * coef
            result.constant += sign * other.constant
        elif isinstance(other, Variable):
            result.coefficients[other.index] = result.coefficients.get(other.index, 0.0) + sign
        elif isinstance(other, (int, float)):
            result.constant += sign * other
        else:
            return NotImplemented
        return result

    def __add__(self, other: "LinExpr | Variable | Number") -> "LinExpr":
        return self._add_inplace(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other: "LinExpr | Variable | Number") -> "LinExpr":
        return self._add_inplace(other, -1.0)

    def __rsub__(self, other: "LinExpr | Variable | Number") -> "LinExpr":
        return (-self)._add_inplace(other, 1.0)

    def __neg__(self) -> "LinExpr":
        return LinExpr({i: -c for i, c in self.coefficients.items()}, -self.constant)

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        return LinExpr(
            {i: c * scalar for i, c in self.coefficients.items()}, self.constant * scalar
        )

    __rmul__ = __mul__

    def __truediv__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            return NotImplemented
        if scalar == 0:
            # Mirrors Python number semantics on purpose: `expr / 0` must
            # behave like `1 / 0` for arithmetic-generic callers.
            raise ZeroDivisionError(  # repro-lint: disable=R002
                "division of linear expression by zero"
            )
        return self * (1.0 / scalar)

    # -- comparisons build constraints ------------------------------------------

    def __le__(self, other: "LinExpr | Variable | Number") -> "Constraint":
        return Constraint(self - other, "<=")

    def __ge__(self, other: "LinExpr | Variable | Number") -> "Constraint":
        return Constraint(self - other, ">=")

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        if isinstance(other, (LinExpr, Variable, int, float)):
            return Constraint(self - other, "==")
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # expressions are mutable accumulators

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coefficients.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


@dataclass(frozen=True)
class Variable:
    """A continuous decision variable belonging to a :class:`Model`.

    Instances are created via :meth:`Model.variable`; the dataclass is
    frozen so variables can be used as dictionary keys.
    """

    index: int
    name: str

    def to_expr(self) -> LinExpr:
        return LinExpr({self.index: 1.0})

    # Delegate arithmetic to LinExpr so `2 * x + y <= 3` works naturally.
    def __add__(self, other):
        return self.to_expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.to_expr() - other

    def __rsub__(self, other):
        return -self.to_expr() + other

    def __neg__(self):
        return -self.to_expr()

    def __mul__(self, scalar):
        return self.to_expr() * scalar

    __rmul__ = __mul__

    def __truediv__(self, scalar):
        return self.to_expr() / scalar

    def __le__(self, other):
        return self.to_expr() <= other

    def __ge__(self, other):
        return self.to_expr() >= other

    # NOTE: == on variables intentionally retains identity semantics from the
    # frozen dataclass so variables behave well in dicts and sets.  Build
    # equality constraints from expressions, e.g. ``x + 0 == 1`` or
    # ``x.to_expr() == 1``, or use Model.add_constraint(expr == rhs).


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) 0`` in normalized form."""

    expr: LinExpr
    sense: str
    name: str = ""

    def __post_init__(self) -> None:
        require(self.sense in ("<=", ">=", "=="), f"invalid constraint sense {self.sense!r}")


@dataclass
class _VariableRecord:
    name: str
    lb: float
    ub: float


@dataclass(frozen=True)
class ModelCheckpoint:
    """A restorable snapshot of a :class:`Model`'s build state.

    Captures the variable/constraint counts plus the objective, so a
    caller can extend a shared base model (extra variables, extra rows,
    a candidate-specific objective), solve it, and then
    :meth:`Model.rollback` to the snapshot and attach the next
    candidate.  This is what makes the SSQPP relay-candidate sweep
    incremental: the v0-independent rows are built once and survive
    every rollback.
    """

    num_variables: int
    num_constraints: int
    objective: LinExpr | None
    sense: str


@dataclass
class Model:
    """A linear program under construction.

    Parameters
    ----------
    name:
        Optional human-readable model name used in error messages.
    """

    name: str = "model"
    _variables: list[_VariableRecord] = field(default_factory=list)
    _constraints: list[Constraint] = field(default_factory=list)
    _objective: LinExpr | None = None
    _sense: str = "min"

    # -- building ---------------------------------------------------------------

    def variable(
        self, name: str = "", *, lb: float = 0.0, ub: float = math.inf
    ) -> Variable:
        """Add a continuous variable with bounds ``lb <= x <= ub``.

        The default bounds (``0 <= x``) match the non-negativity convention
        of every LP in the paper.
        """
        if lb > ub:
            raise ValidationError(
                f"variable {name!r}: lower bound {lb} exceeds upper bound {ub}"
            )
        index = len(self._variables)
        record = _VariableRecord(name or f"x{index}", float(lb), float(ub))
        self._variables.append(record)
        return Variable(index, record.name)

    def variables(self, count: int, prefix: str = "x", **bounds) -> list[Variable]:
        """Add *count* variables named ``{prefix}0 .. {prefix}{count-1}``."""
        return [self.variable(f"{prefix}{i}", **bounds) for i in range(count)]

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint built via expression comparison operators."""
        if not isinstance(constraint, Constraint):
            raise ValidationError(
                "add_constraint expects a Constraint (built from a comparison "
                f"such as `expr <= 1`), got {constraint!r}"
            )
        self._check_indices(constraint.expr)
        if name:
            constraint.name = name
        self._constraints.append(constraint)
        return constraint

    def minimize(self, objective: LinExpr | Variable) -> None:
        """Set a minimization objective."""
        self._set_objective(objective, "min")

    def maximize(self, objective: LinExpr | Variable) -> None:
        """Set a maximization objective."""
        self._set_objective(objective, "max")

    def _set_objective(self, objective: LinExpr | Variable, sense: str) -> None:
        expr = objective.to_expr() if isinstance(objective, Variable) else objective
        if not isinstance(expr, LinExpr):
            raise ValidationError(f"objective must be a linear expression, got {objective!r}")
        self._check_indices(expr)
        self._objective = expr
        self._sense = sense

    def _check_indices(self, expr: LinExpr) -> None:
        n = len(self._variables)
        for index in expr.coefficients:
            if not 0 <= index < n:
                raise ValidationError(
                    f"expression references variable index {index}, but model "
                    f"{self.name!r} has only {n} variables; variables from a "
                    "different model were probably mixed in"
                )

    # -- incremental reuse --------------------------------------------------------

    def checkpoint(self) -> ModelCheckpoint:
        """Snapshot the current build state for a later :meth:`rollback`.

        The snapshot is cheap (counts plus a copy of the objective);
        take one after building shared structure and before adding
        candidate-specific variables, constraints, or an objective.
        """
        objective = self._objective.copy() if self._objective is not None else None
        return ModelCheckpoint(
            num_variables=len(self._variables),
            num_constraints=len(self._constraints),
            objective=objective,
            sense=self._sense,
        )

    def rollback(self, mark: ModelCheckpoint) -> None:
        """Restore the model to a state captured by :meth:`checkpoint`.

        Every variable and constraint added after the checkpoint is
        discarded, and the objective is restored.  Variables created
        after the checkpoint must not be used again: any expression
        referencing them is rejected by the usual index check.
        """
        if not isinstance(mark, ModelCheckpoint):
            raise ValidationError(
                f"rollback expects a ModelCheckpoint, got {mark!r}"
            )
        if mark.num_variables > len(self._variables) or (
            mark.num_constraints > len(self._constraints)
        ):
            raise ValidationError(
                f"checkpoint ({mark.num_variables} variables, "
                f"{mark.num_constraints} constraints) is ahead of model "
                f"{self.name!r} ({len(self._variables)} variables, "
                f"{len(self._constraints)} constraints); was it taken on "
                "a different model?"
            )
        del self._variables[mark.num_variables :]
        del self._constraints[mark.num_constraints :]
        self._objective = mark.objective.copy() if mark.objective is not None else None
        self._sense = mark.sense

    # -- introspection ------------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def variable_name(self, index: int) -> str:
        return self._variables[index].name

    def bounds(self) -> list[tuple[float, float]]:
        """Bounds for every variable, in index order."""
        return [(record.lb, record.ub) for record in self._variables]

    # -- solving -----------------------------------------------------------------

    def solve(self, method: str = "highs"):
        """Solve the model; see :func:`repro.lp.solve.solve_model`."""
        from .solve import solve_model

        return solve_model(self, method=method)
