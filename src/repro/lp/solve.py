"""Solver backend for :class:`repro.lp.model.Model`.

Compiles a model to sparse matrices and delegates to scipy's HiGHS
interface.  Two methods matter for this library:

* ``"highs"`` — let HiGHS pick (usually fastest); used by default.
* ``"highs-ds"`` — dual simplex, which returns a *basic* (vertex)
  solution.  The Shmoys-Tardos style roundings in :mod:`repro.gap`
  tolerate any feasible fractional point, but vertex solutions have at
  most ``#jobs + #machines`` fractional assignments and round faster, so
  rounding-sensitive callers request this method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .._validation import cost, raises
from ..exceptions import InfeasibleError, SolverError, UnboundedError
from ..obs.metrics import counter
from ..obs.trace import span
from .model import LinExpr, Model, Variable

__all__ = ["Solution", "solve_model"]

_SUPPORTED_METHODS = ("highs", "highs-ds", "highs-ipm")

# Every LP in the library funnels through solve_model(), so these two
# counters are the authoritative solver-effort telemetry (surfaced by
# `repro profile` and the bench reports).
_LP_SOLVES = counter("lp.solve.count")
_LP_ITERATIONS = counter("lp.iterations.total")


@dataclass(frozen=True)
class Solution:
    """An optimal solution to a linear program.

    Attributes
    ----------
    objective:
        Optimal objective value, in the *model's* sense (a maximization
        model reports the maximum, not the negated internal minimum).
    values:
        Optimal value of every variable, in index order.
    status:
        Human-readable solver status (always ``"optimal"``; failures raise).
    iterations:
        Simplex/IPM iteration count reported by HiGHS, for diagnostics.
    constraint_duals:
        Dual values (shadow prices), one per constraint in the order they
        were added to the model, sign-normalized to the model's sense:
        the marginal change of the reported optimum per unit increase of
        the constraint's right-hand side.  ``None`` when the backend did
        not report duals.
    """

    objective: float
    values: np.ndarray
    status: str
    iterations: int
    constraint_duals: np.ndarray | None = None

    def dual_of(self, constraint) -> float:
        """Shadow price of a constraint added to the solved model.

        Requires the constraint object returned by
        :meth:`repro.lp.model.Model.add_constraint` and that the backend
        reported duals.
        """
        index = getattr(constraint, "_dual_index", None)
        if index is None:
            raise SolverError(
                "constraint carries no dual index; was it added to the "
                "model that produced this solution?"
            )
        if self.constraint_duals is None:
            raise SolverError("the solver reported no dual values")
        return float(self.constraint_duals[index])

    def value(self, variable: Variable) -> float:
        """The optimal value of *variable*."""
        return float(self.values[variable.index])

    def expression_value(self, expr: LinExpr) -> float:
        """Evaluate a linear expression at the optimal point."""
        return float(
            sum(coef * self.values[index] for index, coef in expr.coefficients.items())
            + expr.constant
        )


def _compile(model: Model):
    """Build the (c, A_ub, b_ub, A_eq, b_eq, bounds) tuple for linprog."""
    n = model.num_variables
    c = np.zeros(n)
    objective = model._objective
    if objective is None:
        raise SolverError(f"model {model.name!r} has no objective; call minimize()/maximize()")
    sign = 1.0 if model._sense == "min" else -1.0
    for index, coef in objective.coefficients.items():
        c[index] = sign * coef

    ub_rows: list[int] = []
    ub_cols: list[int] = []
    ub_data: list[float] = []
    b_ub: list[float] = []
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_data: list[float] = []
    b_eq: list[float] = []

    # Per added constraint: ("eq"|"ub", internal row, sign of d(rhs_internal)/d(rhs)).
    dual_map: list[tuple[str, int, float]] = []
    for position, constraint in enumerate(model._constraints):
        constraint._dual_index = position
        expr, sense = constraint.expr, constraint.sense
        if sense == "==":
            row = len(b_eq)
            for index, coef in expr.coefficients.items():
                eq_rows.append(row)
                eq_cols.append(index)
                eq_data.append(coef)
            b_eq.append(-expr.constant)
            dual_map.append(("eq", row, 1.0))
        else:
            # Normalize `expr >= 0` to `-expr <= 0`.
            flip = -1.0 if sense == ">=" else 1.0
            row = len(b_ub)
            for index, coef in expr.coefficients.items():
                ub_rows.append(row)
                ub_cols.append(index)
                ub_data.append(flip * coef)
            b_ub.append(-flip * expr.constant)
            dual_map.append(("ub", row, flip))

    a_ub = (
        sparse.csr_matrix((ub_data, (ub_rows, ub_cols)), shape=(len(b_ub), n))
        if b_ub
        else None
    )
    a_eq = (
        sparse.csr_matrix((eq_data, (eq_rows, eq_cols)), shape=(len(b_eq), n))
        if b_eq
        else None
    )
    return c, a_ub, (np.array(b_ub) if b_ub else None), a_eq, (
        np.array(b_eq) if b_eq else None
    ), model.bounds(), sign, dual_map


@cost("n**2 * q**2")
@raises("InfeasibleError", "UnboundedError", transient=("SolverError",))
def solve_model(model: Model, method: str = "highs") -> Solution:
    """Solve *model* and return its optimal :class:`Solution`.

    Raises
    ------
    InfeasibleError
        If the constraints admit no feasible point.
    UnboundedError
        If the objective is unbounded in the optimization direction.
    SolverError
        For any other solver failure (iteration limit, numerical issues)
        or if no objective was set.
    """
    if method not in _SUPPORTED_METHODS:
        raise SolverError(
            f"unsupported LP method {method!r}; expected one of {_SUPPORTED_METHODS}"
        )
    c, a_ub, b_ub, a_eq, b_eq, bounds, sign, dual_map = _compile(model)
    with span(
        "lp.solve",
        model=model.name,
        method=method,
        variables=model.num_variables,
        constraints=len(model._constraints),
    ) as sp:
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method=method,
        )
        _LP_SOLVES.inc()
        if result.status == 2:
            raise InfeasibleError(f"LP {model.name!r} is infeasible")
        if result.status == 3:
            raise UnboundedError(f"LP {model.name!r} is unbounded")
        if not result.success:
            raise SolverError(f"LP {model.name!r} failed: {result.message}")
        values = np.asarray(result.x, dtype=float)
        constant = model._objective.constant if model._objective is not None else 0.0
        objective = sign * float(result.fun) + constant
        iterations = int(getattr(result, "nit", 0) or 0)
        _LP_ITERATIONS.inc(iterations)
        sp.set(iterations=iterations)

    # Normalize HiGHS marginals to per-added-constraint shadow prices in
    # the model's sense: d(objective)/d(rhs).  The internal problem is a
    # minimization of sign * objective; a ">=" constraint flips its rhs.
    constraint_duals: np.ndarray | None = None
    ub_marginals = getattr(getattr(result, "ineqlin", None), "marginals", None)
    eq_marginals = getattr(getattr(result, "eqlin", None), "marginals", None)
    if dual_map and (ub_marginals is not None or eq_marginals is not None):
        constraint_duals = np.zeros(len(dual_map))
        for position, (kind, row, flip) in enumerate(dual_map):
            source = eq_marginals if kind == "eq" else ub_marginals
            if source is None:
                constraint_duals = None
                break
            constraint_duals[position] = sign * flip * float(source[row])

    return Solution(
        objective=objective,
        values=values,
        status="optimal",
        iterations=iterations,
        constraint_duals=constraint_duals,
    )
