"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without also
catching programming errors such as :class:`TypeError` raised by misuse
of the standard library.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "IntersectionError",
    "InfeasibleError",
    "UnboundedError",
    "SolverError",
    "CapacityError",
    "LintError",
    "ParallelSafetyError",
    "ErrorContractError",
    "DeadlineExceededError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ValidationError(ReproError, ValueError):
    """An input object violates a documented precondition.

    Also inherits :class:`ValueError` so idiomatic ``except ValueError``
    call sites continue to work.
    """


class IntersectionError(ValidationError):
    """A family of sets is not a quorum system.

    Raised when two members of the family have an empty intersection,
    violating the defining property of quorum systems.
    """

    def __init__(self, first: frozenset, second: frozenset) -> None:
        self.first = first
        self.second = second
        super().__init__(
            f"quorums {sorted(first, key=repr)} and {sorted(second, key=repr)} "
            "do not intersect"
        )


class InfeasibleError(ReproError):
    """No solution satisfies the problem's constraints.

    Raised, for example, when the total element load exceeds the total
    network capacity, or when an LP relaxation is infeasible.
    """


class UnboundedError(ReproError):
    """The optimization problem is unbounded below (for minimization)."""


class SolverError(ReproError):
    """The underlying numerical solver failed unexpectedly.

    This signals a solver-level breakdown (numerical difficulties,
    iteration limits) rather than a well-posed infeasibility, which is
    reported as :class:`InfeasibleError`.
    """


class CapacityError(InfeasibleError):
    """A placement-specific infeasibility caused by node capacities."""


class LintError(ReproError):
    """The static-analysis linter could not run (bad config or paths).

    Rule *violations* are reported as findings, not exceptions; this
    error marks misuse of the linter itself.
    """


class ParallelSafetyError(ReproError):
    """A callable failed the parallel-safety gate.

    Raised by :func:`repro.parallel.parallel_map` when the function it
    is asked to fan out is not certified parallel-safe by the lint
    tier's effect certificate (``repro lint --effects --certificate``),
    or when no certificate is available at all.  The serial fallback
    (``on_uncertified="serial"``) downgrades this to a warning.
    """


class ErrorContractError(ReproError):
    """A callable failed the error-contract gate.

    Raised by :func:`repro.resilience.retrying` when the function it is
    asked to guard has no entry in the error-contract certificate
    (``repro lint --errors --error-contract``), when no certificate is
    available at all, or when the function raises an exception the
    contract never declared — the contract was violated, so the failure
    is surfaced loudly instead of being retried blindly.
    """


class DeadlineExceededError(ReproError):
    """A deadline-guarded call exceeded its wall-clock budget.

    Raised by :func:`repro.resilience.deadline`.  The check is
    cooperative: the wrapped call is never interrupted mid-flight, the
    budget is checked between attempts and after completion.
    """
