"""Signature-compatibility shims for the keyword-only solver API.

The canonical solver signatures are keyword-only after the first two
positional parameters (``docs/api.md``).  Pre-existing call sites pass
more arguments positionally, and a few used parameter names that have
since been unified (``method`` → ``lp_method``, ``value`` →
``capacity``).  :func:`solver_api` wraps a canonically-declared
function so both legacy forms keep working — with a
:class:`FutureWarning` announcing their removal in the next major
release — while ``inspect.signature`` (and therefore the API docs and
tests) see the canonical signature through ``functools.wraps``.

The warnings graduated from :class:`DeprecationWarning` to
:class:`FutureWarning` one release later, so they now surface in user
code by default (``DeprecationWarning`` is hidden outside ``__main__``);
each message names the canonical replacement.
"""

from __future__ import annotations

import functools
import inspect
import warnings
from collections.abc import Callable, Mapping, Sequence
from typing import Any, TypeVar

__all__ = ["solver_api"]

_F = TypeVar("_F", bound=Callable[..., Any])


def solver_api(
    *,
    legacy_positional: Sequence[str] = (),
    aliases: Mapping[str, str] | None = None,
) -> Callable[[_F], _F]:
    """Accept legacy call forms for a keyword-only solver entry point.

    Parameters
    ----------
    legacy_positional:
        Names of the now-keyword-only parameters, in the order older
        code passed them positionally.  Extra positional arguments are
        mapped onto these names with a deprecation warning.
    aliases:
        Deprecated keyword name → canonical name.  A call using the old
        keyword warns and forwards under the new name.

    Both paths raise :class:`TypeError` on double-supplied parameters,
    matching normal call semantics.
    """
    alias_map = dict(aliases or {})

    def decorate(fn: _F) -> _F:
        signature = inspect.signature(fn)
        max_positional = sum(
            1
            for parameter in signature.parameters.values()
            if parameter.kind
            in (parameter.POSITIONAL_ONLY, parameter.POSITIONAL_OR_KEYWORD)
        )

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if len(args) > max_positional:
                extra = args[max_positional:]
                if len(extra) > len(legacy_positional):
                    raise TypeError(
                        f"{fn.__name__}() takes at most "
                        f"{max_positional + len(legacy_positional)} positional "
                        f"arguments but {len(args)} were given"
                    )
                names = list(legacy_positional[: len(extra)])
                keywords = ", ".join(f"{n}=..." for n in names)
                warnings.warn(
                    f"passing {', '.join(repr(n) for n in names)} to "
                    f"{fn.__name__}() positionally is deprecated and will "
                    "stop working in the next major release; pass "
                    f"{keywords} as keyword argument(s) instead "
                    "(see docs/api.md)",
                    FutureWarning,
                    stacklevel=2,
                )
                for name, value in zip(names, extra):
                    if name in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got multiple values for "
                            f"argument {name!r}"
                        )
                    kwargs[name] = value
                args = args[:max_positional]
            for old, new in alias_map.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got values for both {old!r} "
                            f"(deprecated) and {new!r}"
                        )
                    warnings.warn(
                        f"parameter {old!r} of {fn.__name__}() is deprecated "
                        "and will be removed in the next major release; "
                        f"use {new!r} (see docs/api.md)",
                        FutureWarning,
                        stacklevel=2,
                    )
                    kwargs[new] = kwargs.pop(old)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
