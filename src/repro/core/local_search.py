"""Local-search refinement of placements (ablation baseline).

The paper's algorithms come with worst-case guarantees; practitioners
often ask how much a cheap local search recovers without any LP.  This
module provides the standard move/swap neighborhood:

* **move** — relocate one element to another node with spare capacity;
* **swap** — exchange the hosts of two elements (feasible when each fits
  in the other's freed capacity).

:func:`local_search` descends until no improving neighbor exists (or an
iteration budget runs out) and works for any objective expressible as a
function of the placement, so the same code ablates both the max-delay
and total-delay objectives in ``benchmarks/bench_ablation.py``.

This is *not* part of the paper's algorithmic contribution — it exists to
measure how much of the LP machinery's value survives when you replace
it with the obvious heuristic (answer, per the bench: local search from
a random start is good but can stall above the LP+rounding solution, and
carries no guarantee).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

from .._validation import check_integer_in_range
from ..network.graph import Node
from ..quorums.base import Element
from ..quorums.strategy import AccessStrategy
from .placement import Placement, average_max_delay, average_total_delay

__all__ = ["LocalSearchResult", "local_search", "improve_max_delay", "improve_total_delay"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a local-search descent.

    Attributes
    ----------
    placement:
        The locally optimal placement.
    objective:
        Its objective value.
    initial_objective:
        The starting placement's objective, for improvement reporting.
    iterations:
        Number of improving steps taken.
    converged:
        False when the iteration budget stopped the descent early.
    """

    placement: Placement
    objective: float
    initial_objective: float
    iterations: int
    converged: bool

    @property
    def improvement(self) -> float:
        """Relative improvement over the start (0 when already optimal)."""
        if self.initial_objective <= 0:
            return 0.0
        return 1.0 - self.objective / self.initial_objective


def _remaining_capacity(
    placement: Placement, strategy: AccessStrategy
) -> dict[Node, float]:
    remaining = {
        node: placement.network.capacity(node) for node in placement.network.nodes
    }
    for element, node in placement.as_dict().items():
        remaining[node] -= strategy.load(element)
    return remaining


def local_search(
    placement: Placement,
    strategy: AccessStrategy,
    objective: Callable[[Placement], float],
    *,
    max_iterations: int = 200,
    tolerance: float = 1e-9,
) -> LocalSearchResult:
    """First-improvement descent over the move/swap neighborhood.

    Every step keeps the placement capacity-feasible: a move requires the
    target node to have enough remaining capacity, a swap requires both
    nodes to absorb the exchanged loads, so a feasible starting placement
    stays feasible throughout the descent.

    Parameters
    ----------
    placement:
        Starting point (typically a baseline or an algorithm's output).
    strategy:
        Access strategy supplying element loads.
    objective:
        Any placement-level objective to minimize.
    max_iterations:
        Cap on improving steps; each step scans the full neighborhood.
    """
    check_integer_in_range(max_iterations, "max_iterations", low=1)
    system = placement.system
    network = placement.network
    current = placement.as_dict()
    current_value = objective(placement)
    initial_value = current_value
    loads: Mapping[Element, float] = {u: strategy.load(u) for u in system.universe}

    iterations = 0
    converged = False
    while iterations < max_iterations:
        remaining = _remaining_capacity(Placement(system, network, current), strategy)
        best_candidate: dict[Element, Node] | None = None
        best_value = current_value - tolerance

        universe = list(system.universe)
        # Move neighborhood.
        for element in universe:
            origin = current[element]
            for node in network.nodes:
                if node == origin:
                    continue
                if loads[element] > remaining[node] + 1e-12:
                    continue
                candidate = dict(current)
                candidate[element] = node
                value = objective(Placement(system, network, candidate))
                if value < best_value:
                    best_value = value
                    best_candidate = candidate
        # Swap neighborhood.
        for i, first in enumerate(universe):
            for second in universe[i + 1 :]:
                a, b = current[first], current[second]
                if a == b:
                    continue
                slack_a = remaining[a] + loads[first] - loads[second]
                slack_b = remaining[b] + loads[second] - loads[first]
                if slack_a < -1e-12 or slack_b < -1e-12:
                    continue
                candidate = dict(current)
                candidate[first], candidate[second] = b, a
                value = objective(Placement(system, network, candidate))
                if value < best_value:
                    best_value = value
                    best_candidate = candidate

        if best_candidate is None:
            converged = True
            break
        current = best_candidate
        current_value = objective(Placement(system, network, current))
        iterations += 1
    else:
        converged = False

    final = Placement(system, network, current)
    return LocalSearchResult(
        placement=final,
        objective=current_value,
        initial_objective=initial_value,
        iterations=iterations,
        converged=converged,
    )


def improve_max_delay(
    placement: Placement, strategy: AccessStrategy, **kwargs
) -> LocalSearchResult:
    """Local search on the QPP objective ``Avg_v Delta_f(v)``."""
    return local_search(
        placement,
        strategy,
        lambda p: average_max_delay(p, strategy),
        **kwargs,
    )


def improve_total_delay(
    placement: Placement, strategy: AccessStrategy, **kwargs
) -> LocalSearchResult:
    """Local search on the Section 5 objective ``Avg_v Gamma_f(v)``."""
    return local_search(
        placement,
        strategy,
        lambda p: average_total_delay(p, strategy),
        **kwargs,
    )
