"""Bi-objective placement: max-delay vs total-delay scalarization.

The paper studies two delay measures separately — the max-delay
``Delta`` (Section 3) and the total delay ``Gamma`` (Section 5).  Real
deployments often care about both: ``Delta`` is the latency of a
parallel round, ``Gamma`` the message/work cost.  Because **both are
linear in the LP variables**, a convex scalarization needs no new
machinery:

    objective(lambda) = lambda * (9)   +   (1 - lambda) * Gamma-term,

where the ``Gamma`` contribution of placing element ``u`` on node ``v_t``
is ``load(u) * Avg_w d(w, v_t)`` (the Section 5 decomposition).  The
filtering step still certifies the max-delay part (it only needs the
prefix structure), and Theorem 3.11's rounding bounds the *combined*
linear cost, so every point of the sweep keeps the
``(alpha + 1) * cap`` load guarantee.

Sweeping ``lambda`` from 0 to 1 traces (an approximation of) the
Pareto frontier between the two objectives;
:func:`max_vs_total_frontier` packages the sweep and prunes dominated
points with :mod:`repro._pareto`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._validation import check_positive, check_probability, cost, raises
from .._pareto import ParetoPoint, pareto_front
from ..gap.instance import GAPInstance
from ..gap.lp import FractionalAssignment
from ..gap.rounding import round_fractional_assignment
from ..network.graph import Network, Node
from ..quorums.base import QuorumSystem
from ..quorums.strategy import AccessStrategy
from .placement import (
    Placement,
    average_total_delay,
    expected_max_delay,
    node_loads,
)
from .ssqpp import _filter_fractions, build_ssqpp_lp

__all__ = ["ScalarizedResult", "solve_scalarized_placement", "max_vs_total_frontier"]

_ZERO = 1e-12


@dataclass(frozen=True)
class ScalarizedResult:
    """One point of the max-delay/total-delay sweep.

    Attributes
    ----------
    placement:
        The rounded placement.
    weight:
        The scalarization weight ``lambda`` (1 = pure max-delay).
    max_delay:
        Realized ``Delta_f(source)``.
    total_delay:
        Realized all-clients average ``Gamma``.
    max_load_factor:
        Realized worst ``load/cap``; bounded by ``alpha + 1``.
    """

    placement: Placement
    weight: float
    max_delay: float
    total_delay: float
    max_load_factor: float


@cost("n**2 * q**2")
@raises("ValidationError", transient=("SolverError",))
def solve_scalarized_placement(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    source: Node,
    *,
    weight: float,
    alpha: float = 2.0,
) -> ScalarizedResult:
    """Minimize ``weight * Delta(source) + (1-weight) * Avg Gamma``.

    Runs the §3.3 pipeline with the scalarized linear objective: the LP
    gains the per-element total-delay cost, the filtering step is
    unchanged, and the GAP rounding uses the scalarized assignment cost
    (Theorem 3.11 bounds any linear cost).  The ``(alpha+1)*cap`` load
    guarantee holds at every weight.
    """
    weight = check_probability(weight, "weight")
    check_positive(alpha - 1.0, "alpha - 1")
    model, x_element, x_quorum, ordered_nodes, distances = build_ssqpp_lp(
        system, strategy, network, source
    )
    metric = network.metric()
    # Average distance from all clients to each ordered node.
    average_distance = [
        float(metric.distances_from(node).mean()) for node in ordered_nodes
    ]
    loads = {u: strategy.load(u) for u in system.universe}

    # Rebuild the objective as the scalarization (the model's existing
    # objective is the pure max-delay term (9)).
    objective = None
    for (t, q), variable in x_quorum.items():
        coefficient = weight * strategy.probability(q) * distances[t]
        if coefficient == 0:
            continue
        term = variable * coefficient
        objective = term if objective is None else objective + term
    for (t, u), variable in x_element.items():
        coefficient = (1.0 - weight) * loads[u] * average_distance[t]
        if coefficient == 0:
            continue
        term = variable * coefficient
        objective = term if objective is None else objective + term
    if objective is None:
        objective = next(iter(x_element.values())) * 0.0
    model.minimize(objective)
    solution = model.solve()

    universe = list(system.universe)
    n = len(ordered_nodes)
    raw = np.zeros((n, len(universe)))
    for j, u in enumerate(universe):
        for t in range(n):
            variable = x_element.get((t, u))
            if variable is not None:
                raw[t, j] = max(solution.value(variable), 0.0)
    filtered = _filter_fractions(raw, alpha)

    load_array = strategy.load_array()
    capacities = np.array([network.capacity(v) for v in ordered_nodes])
    costs = np.full((n, len(universe)), math.inf)
    gap_loads = np.full((n, len(universe)), math.inf)
    for j, u in enumerate(universe):
        for t in range(n):
            if filtered[t, j] > _ZERO:
                costs[t, j] = (
                    weight * distances[t]
                    + (1.0 - weight) * loads[u] * average_distance[t]
                )
                gap_loads[t, j] = load_array[j]
    instance = GAPInstance(
        jobs=tuple(universe),
        machines=tuple(ordered_nodes),
        costs=costs,
        loads=gap_loads,
        capacities=alpha * capacities,
    )
    fractional_cost = float((filtered * np.where(np.isfinite(costs), costs, 0.0)).sum())
    fractional = FractionalAssignment(
        instance=instance, fractions=filtered, cost=fractional_cost
    )
    rounded = round_fractional_assignment(fractional)
    placement = Placement(system, network, rounded.assignment)

    max_factor = 0.0
    for node, load in node_loads(placement, strategy).items():
        if load <= 0:
            continue
        capacity = network.capacity(node)
        max_factor = max(max_factor, load / capacity if capacity > 0 else math.inf)

    return ScalarizedResult(
        placement=placement,
        weight=weight,
        max_delay=expected_max_delay(placement, strategy, source),
        total_delay=average_total_delay(placement, strategy),
        max_load_factor=max_factor,
    )


def max_vs_total_frontier(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    source: Node,
    *,
    weights: list[float] | None = None,
    alpha: float = 2.0,
) -> list[ScalarizedResult]:
    """Sweep scalarization weights and return the Pareto-front points.

    The default sweep uses 6 weights from 0 (pure total-delay) to 1
    (pure max-delay); dominated points are pruned on the realized
    ``(max_delay, total_delay)`` coordinates.
    """
    sweep = weights if weights is not None else [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    results = [
        solve_scalarized_placement(
            system, strategy, network, source, weight=w, alpha=alpha
        )
        for w in sweep
    ]
    points = [
        ParetoPoint(delay=r.max_delay, load=r.total_delay, tag=r) for r in results
    ]
    return [point.tag for point in pareto_front(points)]
