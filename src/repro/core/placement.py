"""Placements and the paper's delay/load evaluators.

A *placement* is a map ``f : U -> V`` from the logical universe of a
quorum system onto the physical nodes of a network.  This module defines
the :class:`Placement` value type and the quantities of Section 1.2:

* max-delay access cost        ``delta_f(v, Q) = max_{u in Q} d(v, f(u))``   (1)
* expected max-delay           ``Delta_f(v) = sum_Q p(Q) delta_f(v, Q)``      (2)
* average max-delay            ``Avg_v Delta_f(v)`` (optionally rate-weighted)
* total-delay access cost      ``gamma_f(v, Q) = sum_{u in Q} d(v, f(u))``
* expected total delay         ``Gamma_f(v) = sum_Q p(Q) gamma_f(v, Q)``
* node load                    ``load_f(v) = sum_{u: f(u)=v} load(u)``

All evaluators are exact (no sampling).  The public functions are thin
wrappers over the array kernels in :mod:`repro.core._kernels`, which
evaluate every client at once against the network's cached distance
matrix.  The scalar, paper-faithful implementations are retained as the
``*_reference`` oracles; ``tests/test_kernels_equivalence.py`` proves
the two paths agree to 1e-12.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

import numpy as np

from .._validation import check_integer_in_range, require
from ..exceptions import ValidationError
from ..network.graph import Network, Node
from ..quorums.base import Element, QuorumSystem
from ..quorums.strategy import AccessStrategy
from ._kernels import (
    expected_max_delays,
    expected_total_delays,
    max_capacity_factor,
    node_load_vector,
    quorum_member_matrix,
)

if TYPE_CHECKING:
    from ..network.lazymetric import LandmarkOracle, MetricView

#: Rows per streamed kernel call when a placement is evaluated against a
#: metric without a ``matrix`` attribute (e.g. ``LazyMetric``).  Chosen
#: so a block of a 10^5-node metric stays around 400 MB of transient
#: float64 — never the full ``n x n`` matrix.
_EVAL_BLOCK_ROWS = 512

__all__ = [
    "Placement",
    "max_delay",
    "expected_max_delay",
    "expected_max_delay_reference",
    "average_max_delay",
    "average_max_delay_bounds",
    "per_client_expected_max_delay",
    "average_max_delay_reference",
    "average_max_delay_via_sources",
    "total_delay_cost",
    "expected_total_delay",
    "expected_total_delay_reference",
    "average_total_delay",
    "average_total_delay_reference",
    "node_loads",
    "node_loads_reference",
    "capacity_violation_factor",
    "capacity_violation_factor_reference",
    "is_capacity_respecting",
]


class Placement:
    """An immutable map from universe elements to network nodes.

    Parameters
    ----------
    system:
        The quorum system whose universe is being placed.
    network:
        The target network; every image node must belong to it.
    mapping:
        ``{element: node}`` covering the entire universe.  The map need
        not be injective — co-locating elements is exactly how placements
        trade delay for load.

    Examples
    --------
    >>> from repro.quorums import majority
    >>> from repro.network import path_network
    >>> qs = majority(3)
    >>> net = path_network(4)
    >>> f = Placement(qs, net, {0: 0, 1: 0, 2: 1})
    >>> f[2]
    1
    """

    __slots__ = ("_system", "_network", "_mapping", "_node_indices")

    def __init__(
        self,
        system: QuorumSystem,
        network: Network,
        mapping: Mapping[Element, Node],
    ) -> None:
        require(isinstance(system, QuorumSystem), "system must be a QuorumSystem")
        require(isinstance(network, Network), "network must be a Network")
        missing = [u for u in system.universe if u not in mapping]
        if missing:
            raise ValidationError(
                f"placement is missing universe elements {missing[:5]!r}"
            )
        cleaned: dict[Element, Node] = {}
        for element in system.universe:
            node = mapping[element]
            if not network.has_node(node):
                raise ValidationError(
                    f"placement sends {element!r} to unknown node {node!r}"
                )
            cleaned[element] = node
        self._system = system
        self._network = network
        self._mapping = cleaned
        # Node index of f(u) for each u, aligned with system.universe order.
        self._node_indices = np.array(
            [network.node_index(cleaned[u]) for u in system.universe], dtype=int
        )

    # -- accessors -----------------------------------------------------------------

    @property
    def system(self) -> QuorumSystem:
        return self._system

    @property
    def network(self) -> Network:
        return self._network

    def __getitem__(self, element: Element) -> Node:
        try:
            return self._mapping[element]
        except KeyError:
            raise ValidationError(f"{element!r} is not in the universe") from None

    def as_dict(self) -> dict[Element, Node]:
        return dict(self._mapping)

    def image_node_indices(self) -> np.ndarray:
        """Node index of ``f(u)`` per universe element, in universe order."""
        return self._node_indices

    def quorum_node_indices(self, quorum_index: int) -> np.ndarray:
        """Indices of the (distinct) nodes hosting quorum *quorum_index*."""
        quorum = self._system.quorums[quorum_index]
        indices = {self._network.node_index(self._mapping[u]) for u in quorum}
        return np.fromiter(indices, dtype=int, count=len(indices))

    def __repr__(self) -> str:
        distinct = len(set(self._mapping.values()))
        return (
            f"Placement({self._system.name!r} -> {self._network.name!r}, "
            f"{self._system.universe_size} elements on {distinct} nodes)"
        )


def _client_weights(network: Network, rates: Mapping[Node, float] | None) -> np.ndarray:
    """Normalized client weights: uniform, or proportional to access rates.

    The paper's §6 remarks that all results survive non-uniform client
    access rates; operationally that means averaging client delays with
    weights proportional to the rates.
    """
    n = network.size
    if rates is None:
        return np.full(n, 1.0 / n)
    weights = np.zeros(n)
    for node, rate in rates.items():
        value = float(rate)
        if value < 0:
            raise ValidationError(f"access rate of {node!r} must be non-negative")
        weights[network.node_index(node)] = value
    total = weights.sum()
    if total <= 0:
        raise ValidationError("at least one client access rate must be positive")
    return weights / total


# -- max-delay quantities ------------------------------------------------------------


def _support_arrays(
    placement: Placement, strategy: AccessStrategy
) -> tuple[np.ndarray, np.ndarray]:
    """Padded member rows + probabilities for the strategy's support, the
    inputs :func:`repro.core._kernels.expected_max_delays` consumes.

    The support slice of a validated strategy still sums to one, because
    every off-support probability is exactly zero.

    contract: return[0]: shape (s, L), dtype int
    contract: return[1]: shape (s,), dtype float, simplex
    """
    support = strategy.support()
    members = quorum_member_matrix(placement.system, support)
    probabilities = strategy.probabilities[np.asarray(support, dtype=np.intp)]
    return members, probabilities


def max_delay(placement: Placement, client: Node, quorum_index: int) -> float:
    """``delta_f(v, Q)``: distance from *client* to the farthest member of
    the placed quorum (equation (1))."""
    check_integer_in_range(
        quorum_index, "quorum_index", low=0, high=len(placement.system) - 1
    )
    metric = placement.network.metric()
    row = metric.distances_from(client)
    return float(row[placement.quorum_node_indices(quorum_index)].max())


def expected_max_delay(
    placement: Placement,
    strategy: AccessStrategy,
    client: Node,
    *,
    metric: "MetricView | None" = None,
) -> float:
    """``Delta_f(v)``: expected max-delay for *client* under *strategy*
    (equation (2)).  Dispatches to the array kernel on the client's
    distance row.

    Any :class:`~repro.network.lazymetric.MetricView` may be supplied as
    *metric* (defaulting to the network's cached dense metric); a
    :class:`~repro.network.lazymetric.LazyMetric` pulls exactly one
    distance row instead of forcing the ``n x n`` build.
    """
    _check_strategy(placement, strategy)
    if metric is None:
        metric = placement.network.metric()
    row = metric.distances_from(client)[np.newaxis, :]
    members, probabilities = _support_arrays(placement, strategy)
    return float(
        expected_max_delays(
            row, placement.image_node_indices(), members, probabilities
        )[0]
    )


def expected_max_delay_reference(
    placement: Placement,
    strategy: AccessStrategy,
    client: Node,
    *,
    metric: "MetricView | None" = None,
) -> float:
    """Scalar oracle for :func:`expected_max_delay`: the paper-literal
    loop over supported quorums and their members, one ``d(v, f(u))``
    lookup at a time.  Kept as the equivalence/bench baseline."""
    _check_strategy(placement, strategy)
    distance = (
        placement.network.distance if metric is None else metric.distance
    )
    total = 0.0
    for index in strategy.support():
        worst = 0.0
        for u in placement.system.quorums[index]:
            worst = max(worst, distance(client, placement[u]))
        total += strategy.probability(index) * worst
    return total


def _per_client_expected_max_delay(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    metric: "MetricView | None" = None,
) -> np.ndarray:
    """``Delta_f(v)`` for every client ``v``.

    A metric exposing ``matrix`` (the dense :class:`Metric`) is handed
    to the kernel whole, exactly as before.  Any other
    :class:`~repro.network.lazymetric.MetricView` is streamed through
    the kernel in row blocks of ``_EVAL_BLOCK_ROWS`` clients, so peak
    memory stays proportional to the block — the per-client values are
    identical because the kernel treats clients independently.
    """
    _check_strategy(placement, strategy)
    if metric is None:
        metric = placement.network.metric()
    members, probabilities = _support_arrays(placement, strategy)
    image = placement.image_node_indices()
    matrix = getattr(metric, "matrix", None)
    if matrix is not None:
        return expected_max_delays(matrix, image, members, probabilities)
    n = metric.size
    per_client = np.empty(n, dtype=float)
    for start in range(0, n, _EVAL_BLOCK_ROWS):
        stop = min(start + _EVAL_BLOCK_ROWS, n)
        per_client[start:stop] = expected_max_delays(
            metric.row_block(start, stop), image, members, probabilities
        )
    return per_client


def per_client_expected_max_delay(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    metric: "MetricView | None" = None,
) -> np.ndarray:
    """The full ``Delta_f(v)`` vector, one entry per client index.

    This is the vectorized evaluator behind :func:`average_max_delay`,
    exposed because the vector itself is reusable: it depends only on
    the placement and strategy, *not* on the client access rates, so a
    consumer holding it can re-weigh the objective under any demand
    distribution with a single dot product.  The serving layer
    (:mod:`repro.serve`) caches exactly this vector per published
    snapshot — a delay query becomes one array lookup and the drift
    bound one dot product.  Callers must treat the returned array as
    read-only.
    """
    return _per_client_expected_max_delay(placement, strategy, metric=metric)


def average_max_delay(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    rates: Mapping[Node, float] | None = None,
    metric: "MetricView | None" = None,
) -> float:
    """``Avg_v Delta_f(v)`` — the objective of the Quorum Placement
    Problem (Problem 1.1), optionally weighted by client access rates."""
    per_client = _per_client_expected_max_delay(placement, strategy, metric=metric)
    weights = _client_weights(placement.network, rates)
    return float(per_client @ weights)


def average_max_delay_via_sources(
    placement: Placement,
    strategy: AccessStrategy,
    metric: "MetricView",
    *,
    rates: Mapping[Node, float] | None = None,
) -> float:
    """:func:`average_max_delay` using ``O(|image|)`` metric rows.

    Exploits metric symmetry: ``d(v, f(u)) = d(f(u), v)``, so the
    distance *columns* of the image nodes are the image nodes' *rows* —
    for a lazy metric that means a handful of row pulls instead of all
    ``n``.  The price is bitwise identity: computed shortest-path
    matrices are symmetric only to ~1e-9 (summation order differs along
    reversed paths), so the result can differ from
    :func:`average_max_delay` in the last ulp.  The large-scale QPP
    sweep uses this consistently for every candidate, so its *relative*
    comparisons are unaffected.
    """
    _check_strategy(placement, strategy)
    members, probabilities = _support_arrays(placement, strategy)
    image = placement.image_node_indices()
    unique, inverse = np.unique(image, return_inverse=True)
    nodes = placement.network.nodes
    columns = np.stack(
        [metric.distances_from(nodes[int(i)]) for i in unique], axis=1
    )
    per_client = expected_max_delays(
        columns, inverse.astype(np.intp), members, probabilities
    )
    weights = _client_weights(placement.network, rates)
    return float(per_client @ weights)


def average_max_delay_bounds(
    placement: Placement,
    strategy: AccessStrategy,
    oracle: "LandmarkOracle",
    *,
    rates: Mapping[Node, float] | None = None,
) -> tuple[float, float]:
    """Certified ``[lower, upper]`` bracket of :func:`average_max_delay`.

    Substitutes the oracle's landmark bounds for the exact distance
    columns of the placement's image nodes: every per-client expected
    max-delay is sandwiched because the kernel is monotone in each
    distance entry.  Costs ``O(k n |image|)`` oracle work and **zero**
    exact distance rows — this is what lets the large-scale candidate
    sweep discard hopeless relay sources before pulling real rows.
    """
    _check_strategy(placement, strategy)
    members, probabilities = _support_arrays(placement, strategy)
    image = placement.image_node_indices()
    unique, inverse = np.unique(image, return_inverse=True)
    lower_columns, upper_columns = oracle.bounds_columns(unique)
    remapped = inverse.astype(np.intp)
    per_lower = expected_max_delays(lower_columns, remapped, members, probabilities)
    per_upper = expected_max_delays(upper_columns, remapped, members, probabilities)
    weights = _client_weights(placement.network, rates)
    return float(per_lower @ weights), float(per_upper @ weights)


def average_max_delay_reference(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    rates: Mapping[Node, float] | None = None,
    metric: "MetricView | None" = None,
) -> float:
    """Scalar oracle for :func:`average_max_delay`: per-client loop over
    :func:`expected_max_delay_reference`."""
    _check_strategy(placement, strategy)
    weights = _client_weights(placement.network, rates)
    total = 0.0
    for i, client in enumerate(placement.network.nodes):
        weight = float(weights[i])
        if weight <= 0.0:
            continue
        total += weight * expected_max_delay_reference(
            placement, strategy, client, metric=metric
        )
    return total


# -- total-delay quantities -------------------------------------------------------------


def total_delay_cost(placement: Placement, client: Node, quorum_index: int) -> float:
    """``gamma_f(v, Q)``: sum of distances from *client* to every placed
    member of the quorum (Section 5)."""
    check_integer_in_range(
        quorum_index, "quorum_index", low=0, high=len(placement.system) - 1
    )
    metric = placement.network.metric()
    row = metric.distances_from(client)
    quorum = placement.system.quorums[quorum_index]
    indices = placement.image_node_indices()
    return float(
        sum(row[indices[placement.system.element_index(u)]] for u in quorum)
    )


def expected_total_delay(
    placement: Placement,
    strategy: AccessStrategy,
    client: Node,
    *,
    metric: "MetricView | None" = None,
) -> float:
    """``Gamma_f(v) = sum_Q p(Q) gamma_f(v, Q)``.

    Computed through the identity ``Gamma_f(v) = sum_u load(u) d(v, f(u))``
    — each element contributes its distance weighted by its load.
    """
    _check_strategy(placement, strategy)
    if metric is None:
        metric = placement.network.metric()
    row = metric.distances_from(client)[np.newaxis, :]
    return float(
        expected_total_delays(
            row, placement.image_node_indices(), strategy.load_array()
        )[0]
    )


def expected_total_delay_reference(
    placement: Placement,
    strategy: AccessStrategy,
    client: Node,
    *,
    metric: "MetricView | None" = None,
) -> float:
    """Scalar oracle for :func:`expected_total_delay`: the paper-literal
    double loop ``sum_Q p(Q) sum_{u in Q} d(v, f(u))``."""
    _check_strategy(placement, strategy)
    distance = (
        placement.network.distance if metric is None else metric.distance
    )
    total = 0.0
    for index in strategy.support():
        cost = 0.0
        for u in placement.system.quorums[index]:
            cost += distance(client, placement[u])
        total += strategy.probability(index) * cost
    return total


def average_total_delay(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    rates: Mapping[Node, float] | None = None,
    metric: "MetricView | None" = None,
) -> float:
    """``Avg_v Gamma_f(v)`` — the objective of Section 5 (Theorem 1.4).

    Streams row blocks when *metric* has no dense ``matrix`` (see
    :func:`_per_client_expected_max_delay` for the dispatch contract).
    """
    _check_strategy(placement, strategy)
    if metric is None:
        metric = placement.network.metric()
    weights = _client_weights(placement.network, rates)
    image = placement.image_node_indices()
    loads = strategy.load_array()
    matrix = getattr(metric, "matrix", None)
    if matrix is not None:
        per_client = expected_total_delays(matrix, image, loads)
        return float(per_client @ weights)
    n = metric.size
    total = 0.0
    for start in range(0, n, _EVAL_BLOCK_ROWS):
        stop = min(start + _EVAL_BLOCK_ROWS, n)
        block_values = expected_total_delays(
            metric.row_block(start, stop), image, loads
        )
        total += float(block_values @ weights[start:stop])
    return total


def average_total_delay_reference(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    rates: Mapping[Node, float] | None = None,
    metric: "MetricView | None" = None,
) -> float:
    """Scalar oracle for :func:`average_total_delay`: per-client loop over
    :func:`expected_total_delay_reference`."""
    _check_strategy(placement, strategy)
    weights = _client_weights(placement.network, rates)
    total = 0.0
    for i, client in enumerate(placement.network.nodes):
        weight = float(weights[i])
        if weight <= 0.0:
            continue
        total += weight * expected_total_delay_reference(
            placement, strategy, client, metric=metric
        )
    return total


# -- loads and capacities ----------------------------------------------------------------


def _capacity_array(network: Network) -> np.ndarray:
    """Capacities in node-index order."""
    return np.array([network.capacity(node) for node in network.nodes], dtype=float)


def node_loads(placement: Placement, strategy: AccessStrategy) -> dict[Node, float]:
    """``load_f(v)`` for every node ``v`` (zero where nothing is placed)."""
    _check_strategy(placement, strategy)
    vector = node_load_vector(
        placement.image_node_indices(),
        strategy.load_array(),
        placement.network.size,
    )
    return {node: float(vector[i]) for i, node in enumerate(placement.network.nodes)}


def node_loads_reference(
    placement: Placement, strategy: AccessStrategy
) -> dict[Node, float]:
    """Scalar oracle for :func:`node_loads`: one dictionary update per
    placed element."""
    _check_strategy(placement, strategy)
    loads = {node: 0.0 for node in placement.network.nodes}
    for element, node in placement.as_dict().items():
        loads[node] += strategy.load(element)
    return loads


def capacity_violation_factor(placement: Placement, strategy: AccessStrategy) -> float:
    """The largest ``load_f(v) / cap(v)`` over nodes with positive load.

    Returns 0.0 for an empty placement; ``inf`` if a zero-capacity node
    received load.  A value of at most 1 means the placement is feasible;
    Theorem 1.2 guarantees at most ``alpha + 1``.
    """
    _check_strategy(placement, strategy)
    vector = node_load_vector(
        placement.image_node_indices(),
        strategy.load_array(),
        placement.network.size,
    )
    return max_capacity_factor(vector, _capacity_array(placement.network))


def capacity_violation_factor_reference(
    placement: Placement, strategy: AccessStrategy
) -> float:
    """Scalar oracle for :func:`capacity_violation_factor`."""
    factor = 0.0
    for node, load in node_loads_reference(placement, strategy).items():
        if load <= 0:
            continue
        capacity = placement.network.capacity(node)
        if capacity == 0:
            return float("inf")
        factor = max(factor, load / capacity)
    return factor


def is_capacity_respecting(
    placement: Placement, strategy: AccessStrategy, *, tolerance: float = 1e-9
) -> bool:
    """Whether ``load_f(v) <= cap(v)`` holds everywhere (within tolerance)."""
    return capacity_violation_factor(placement, strategy) <= 1.0 + tolerance


def _check_strategy(placement: Placement, strategy: AccessStrategy) -> None:
    if strategy.system != placement.system:
        raise ValidationError(
            "strategy and placement refer to different quorum systems"
        )


def make_placement(
    system: QuorumSystem, network: Network, nodes: Sequence[Node]
) -> Placement:
    """Place ``system.universe[i]`` on ``nodes[i]`` — a convenience for
    tests and layout algorithms that think in universe order."""
    universe = system.universe
    if len(nodes) != len(universe):
        raise ValidationError(
            f"need exactly {len(universe)} nodes, got {len(nodes)}"
        )
    return Placement(system, network, dict(zip(universe, nodes)))
