"""Public home of the unified solver result API.

Every solver entry point in this package returns a frozen subclass of
:class:`SolveResult` (the contract is enforced by lint rule R301; the
canonical signatures are documented in ``docs/api.md``).  The
implementation lives in the low-layer :mod:`repro._results` module so
lower layers like :mod:`repro.gap` can share it; this module is the
import path user code should use::

    from repro.core.results import SolveResult, Provenance
"""

from __future__ import annotations

from .._results import Provenance, SolveResult

__all__ = ["Provenance", "SolveResult"]
