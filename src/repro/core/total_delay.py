"""The total-delay placement problem (Section 5, Theorems 1.4 / 5.1).

Under the total-delay access cost ``gamma_f(v, Q) = sum_{u in Q}
d(v, f(u))``, the average objective decomposes per element:

    Avg_v Gamma_f(v) = sum_u load(u) * Avg_v d(v, f(u)),

so placing element ``u`` on node ``w`` contributes the *fixed* cost
``load(u) * Avg_v d(v, w)`` regardless of the other elements.  That is
exactly a Generalized Assignment Problem: jobs = elements with load
``load(u)``, machines = nodes with budget ``cap(v)``, assignment cost as
above.  Solving the GAP LP and rounding (Theorem 3.11) yields Theorem
5.1: average total delay **no worse than the true optimum** among
capacity-respecting placements, with loads at most ``2 cap(v)``.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from .._compat import solver_api
from .._results import Provenance, SolveResult
from .._validation import check_scale, cost, raises, require
from ..gap.instance import GAPInstance
from ..gap.solver import GAPSolution, solve_gap
from ..network.graph import Network, Node
from ..obs.metrics import telemetry_scope
from ..obs.trace import span
from ..quorums.base import QuorumSystem
from ..quorums.strategy import AccessStrategy
from .placement import (
    _EVAL_BLOCK_ROWS,
    Placement,
    _client_weights,
    average_total_delay,
    node_loads,
)

__all__ = ["TotalDelayResult", "solve_total_delay"]

_ZERO = 1e-12


# paper: §5 at 10^3-10^5 nodes
@cost("n**2", scale="large")
def _average_distance_streamed(view: object, weights: np.ndarray) -> np.ndarray:
    """``weights @ D`` accumulated over lazy row blocks.

    Matches ``weights @ metric.matrix`` up to floating-point summation
    order (the dense dot reduces all ``n`` terms at once; this
    accumulates per block), which is why the large path's optimum can
    differ from the dense path's in the last ulp — never more.
    """
    n = view.size  # type: ignore[attr-defined]
    average = np.zeros(n, dtype=float)
    for start in range(0, n, _EVAL_BLOCK_ROWS):
        stop = min(start + _EVAL_BLOCK_ROWS, n)
        block = view.row_block(start, stop)  # type: ignore[attr-defined]
        average += weights[start:stop] @ block
    return average


@dataclass(frozen=True)
class TotalDelayResult(SolveResult):
    """Output of :func:`solve_total_delay` (a
    :class:`~repro._results.SolveResult`).

    ``objective`` is the realized average total delay and
    ``load_violation_factor`` the realized worst ``load_f(v)/cap(v)``;
    the pre-unification names ``delay``/``max_load_factor`` still
    resolve but emit a :class:`FutureWarning` (removal scheduled for the
    next major release).

    Theorem 5.1 guarantees ``objective <= optimum`` (the LP bound
    ``lp_value`` certifies it: ``objective <= lp_value <= OPT``) and
    ``load_f(v) <= 2 cap(v)`` on every node.
    """

    lp_value: float
    load_factor_bound: float

    _legacy_aliases: ClassVar[Mapping[str, str]] = {
        "delay": "objective",
        "max_load_factor": "load_violation_factor",
    }

    @property
    def within_guarantees(self) -> bool:
        return (
            self.objective <= self.lp_value + 1e-6
            and self.load_violation_factor <= self.load_factor_bound + 1e-6
        )


# paper: Thm 1.4, §5
@solver_api(legacy_positional=("network",))
@cost("n**2 * q**2")
@raises("InfeasibleError", "ValidationError", transient=("SolverError",))
def solve_total_delay(
    system: QuorumSystem,
    strategy: AccessStrategy,
    *,
    network: Network,
    rates: Mapping[Node, float] | None = None,
    lp_method: str = "highs-ds",
    scale: str | None = None,
) -> TotalDelayResult:
    """Place *system* minimizing the average total delay (Theorem 5.1).

    Supports the §6 extension of rate-weighted client averages through
    *rates*.  Raises :class:`repro.exceptions.InfeasibleError` when no
    capacity-respecting placement exists even fractionally.

    ``scale="large"`` computes the per-node average client distance by
    streaming the network's lazy metric in row blocks instead of
    materializing the dense matrix; the objective matches the dense path
    up to floating-point summation order.
    """
    require(
        strategy.system == system,
        "strategy does not match the quorum system",
    )
    check_scale(scale)
    with telemetry_scope() as telemetry, span(
        "total_delay.solve", nodes=network.size
    ):
        weights = _client_weights(network, rates)
        # Avg (weighted) distance from all clients to each node w.
        view: object | None
        if scale == "large":
            view = network.lazy_metric()
            average_distance = _average_distance_streamed(view, weights)
        else:
            view = None
            average_distance = weights @ network.metric().matrix

        universe = list(system.universe)
        loads = np.array([strategy.load(u) for u in universe])
        nodes = list(network.nodes)
        capacities = np.array([network.capacity(v) for v in nodes])

        costs = np.full((len(nodes), len(universe)), math.inf)
        gap_loads = np.full((len(nodes), len(universe)), math.inf)
        for i in range(len(nodes)):
            for j in range(len(universe)):
                # Pairs with load above capacity are forbidden, mirroring the
                # paper's constraint (13); the optimum never uses them either,
                # so the LP bound still certifies optimality.
                if loads[j] <= capacities[i] + _ZERO:
                    costs[i, j] = loads[j] * average_distance[i]
                    gap_loads[i, j] = loads[j]
        instance = GAPInstance(
            jobs=tuple(universe),
            machines=tuple(nodes),
            costs=costs,
            loads=gap_loads,
            capacities=capacities,
        )
        gap_solution: GAPSolution = solve_gap(instance, lp_method=lp_method)

        placement = Placement(system, network, gap_solution.placement)
        delay = average_total_delay(placement, strategy, rates=rates, metric=view)

        max_factor = 0.0
        for node, load in node_loads(placement, strategy).items():
            if load <= 0:
                continue
            capacity = network.capacity(node)
            max_factor = max(
                max_factor, load / capacity if capacity > 0 else float("inf")
            )

    return TotalDelayResult(
        placement=placement,
        objective=delay,
        load_violation_factor=max_factor,
        provenance=Provenance.of("total-delay.gap", "Thm 1.4", lp_method=lp_method),
        lp_value=gap_solution.lp_value,
        load_factor_bound=2.0,
        telemetry=telemetry.snapshot,
    )
