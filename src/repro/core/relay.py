"""The relay-via-v0 structural lemma (Lemma 3.1).

For any placement ``f`` there is a node ``v0`` — the minimizer of
``Delta_f`` — such that routing every access through ``v0`` multiplies the
average max-delay by at most 5:

    Avg_v [ sum_Q p(Q) (d(v, v0) + delta_f(v0, Q)) ]  <=  5 Avg_v Delta_f(v).

The left-hand side simplifies to ``Avg_v d(v, v0) + Delta_f(v0)``
(equation (8)), which is what :func:`relay_delay` computes.  The lemma is
what reduces the Quorum Placement Problem to its single-source variant
(Theorem 3.3); :func:`relay_analysis` measures the actual factor so the
benchmarks can show how loose the worst-case 5 is in practice.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..network.graph import Node
from ..quorums.strategy import AccessStrategy
from .placement import (
    Placement,
    _check_strategy,
    _client_weights,
    _per_client_expected_max_delay,
    average_max_delay,
)

__all__ = ["RelayAnalysis", "best_relay_node", "relay_delay", "relay_analysis"]

#: The worst-case relay factor proven by Lemma 3.1.
RELAY_FACTOR_BOUND = 5.0


@dataclass(frozen=True)
class RelayAnalysis:
    """Measured relay-via-v0 quality for one placement.

    Attributes
    ----------
    v0:
        The relay node (argmin of ``Delta_f``).
    direct_delay:
        ``Avg_v Delta_f(v)`` with shortest-path routing.
    relayed_delay:
        ``Avg_v d(v, v0) + Delta_f(v0)`` with every access detouring
        through ``v0``.
    factor:
        ``relayed_delay / direct_delay``; Lemma 3.1 proves ``<= 5``.
        Reported as 1.0 when the direct delay is zero (then the relayed
        delay is provably zero too: ``v0`` can be any node hosting the
        whole placement).
    """

    v0: Node
    direct_delay: float
    relayed_delay: float
    factor: float

    @property
    def within_bound(self) -> bool:
        """Whether the measured factor respects the proven bound of 5."""
        return self.factor <= RELAY_FACTOR_BOUND + 1e-9


def best_relay_node(
    placement: Placement,
    strategy: AccessStrategy,
) -> Node:
    """The node ``v0 = argmin_v Delta_f(v)`` used by Lemma 3.1.

    Computable in polynomial time by evaluating ``Delta_f`` at every node
    (as the paper notes after equation (5)); ties break toward the
    smallest node index for determinism.
    """
    _check_strategy(placement, strategy)
    per_client = _per_client_expected_max_delay(placement, strategy)
    return placement.network.nodes[int(np.argmin(per_client))]


def relay_delay(
    placement: Placement,
    strategy: AccessStrategy,
    v0: Node,
    *,
    rates: Mapping[Node, float] | None = None,
) -> float:
    """Average delay of the "relay-via-v0" strategy (equation (8)).

    ``Avg_v d(v, v0) + Delta_f(v0)``, with the client average optionally
    weighted by access rates (the §6 extension).
    """
    _check_strategy(placement, strategy)
    metric = placement.network.metric()
    weights = _client_weights(placement.network, rates)
    to_v0 = float(weights @ metric.distances_from(v0))
    per_client = _per_client_expected_max_delay(placement, strategy)
    return to_v0 + float(per_client[placement.network.node_index(v0)])


# paper: Lemma 3.1, §3
def relay_analysis(
    placement: Placement,
    strategy: AccessStrategy,
    *,
    rates: Mapping[Node, float] | None = None,
) -> RelayAnalysis:
    """Measure the relay factor of Lemma 3.1 for a concrete placement."""
    v0 = best_relay_node(placement, strategy)
    direct = average_max_delay(placement, strategy, rates=rates)
    relayed = relay_delay(placement, strategy, v0, rates=rates)
    factor = relayed / direct if direct > 0 else 1.0
    return RelayAnalysis(v0=v0, direct_delay=direct, relayed_delay=relayed, factor=factor)
