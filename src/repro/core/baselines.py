"""Baseline placements the paper argues against (or that bracket the
algorithms from below/above in benchmarks).

* :func:`single_node_placement` — Lin's delay-optimal but load-oblivious
  solution from the related-work discussion: collapse everything onto the
  network 1-median.  Delay is excellent; the load on that node equals
  the *entire* access traffic.
* :func:`random_placement` — a random capacity-respecting placement
  (first-fit over a random order); the "no optimization" control.
* :func:`greedy_placement` — heavy-elements-first greedy packing onto the
  closest-to-median nodes; a natural heuristic practitioners would try
  before solving LPs.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import CapacityError
from ..network.graph import Network, Node
from ..quorums.base import QuorumSystem
from ..quorums.strategy import AccessStrategy
from .placement import Placement

__all__ = ["single_node_placement", "random_placement", "greedy_placement"]


def single_node_placement(  # repro-lint: disable=R001 (Placement ctor validates)
    system: QuorumSystem, network: Network, *, node: Node | None = None
) -> Placement:
    """Everything on one node (Lin's load-oblivious solution).

    Defaults to the network 1-median (the node minimizing the summed
    distance to all clients), which is delay-optimal for this shape of
    placement.  Ignores capacities by design — that is its advertised
    flaw.
    """
    target = node if node is not None else network.metric().median()
    network.node_index(target)
    return Placement(system, network, {u: target for u in system.universe})


def random_placement(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    *,
    rng: np.random.Generator,
    attempts: int = 200,
) -> Placement:
    """A uniformly random capacity-respecting placement.

    Shuffles elements and nodes and first-fits; retries up to *attempts*
    times before concluding the instance is too tight for naive packing.

    Raises
    ------
    CapacityError
        If no attempt produced a feasible packing (the instance may still
        be feasible for smarter algorithms).
    """
    universe = list(system.universe)
    nodes = list(network.nodes)
    for _ in range(attempts):
        order = list(rng.permutation(len(universe)))
        node_order = list(rng.permutation(len(nodes)))
        remaining = {v: network.capacity(v) for v in nodes}
        mapping = {}
        feasible = True
        for index in order:
            element = universe[index]
            load = strategy.load(element)
            placed = False
            for node_index in node_order:
                node = nodes[node_index]
                if load <= remaining[node] + 1e-12:
                    mapping[element] = node
                    remaining[node] -= load
                    placed = True
                    break
            if not placed:
                feasible = False
                break
        if feasible:
            return Placement(system, network, mapping)
    raise CapacityError(
        f"random first-fit failed to pack the system within {attempts} attempts"
    )


def greedy_placement(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    *,
    center: Node | None = None,
) -> Placement:
    """Greedy packing: heaviest elements onto the closest feasible nodes.

    Nodes are visited in increasing distance from *center* (default: the
    1-median); each element (heaviest first) goes to the nearest node
    with enough remaining capacity.

    Raises
    ------
    CapacityError
        When greedy packing fails (which can happen on feasible
        instances — greedy is a baseline, not an algorithm with
        guarantees).
    """
    metric = network.metric()
    anchor = center if center is not None else metric.median()
    node_order = metric.nodes_by_distance(anchor)
    remaining = {v: network.capacity(v) for v in node_order}
    mapping = {}
    for element in sorted(system.universe, key=lambda u: -strategy.load(u)):
        load = strategy.load(element)
        for node in node_order:
            if load <= remaining[node] + 1e-12:
                mapping[element] = node
                remaining[node] -= load
                break
        else:
            raise CapacityError(
                f"greedy packing stuck on element {element!r} (load {load:.4f})"
            )
    return Placement(system, network, mapping)
