"""Capacity sensitivity analysis via LP duality.

The single-source LP (9)-(14) prices its constraints: the dual value of
the capacity row ``cap[t]`` is ``d Z* / d cap(v_t)`` — how much the
delay lower bound would drop per unit of extra capacity at node ``v_t``.
Operators read this as a *provisioning signal*: the most negative shadow
prices mark the nodes where adding capacity buys the most delay.

This is standard LP post-analysis, not a paper algorithm; it is exposed
because the LP is already being solved and the duals are free.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import SolverError
from ..network.graph import Network, Node
from ..quorums.base import QuorumSystem
from ..quorums.strategy import AccessStrategy
from .ssqpp import build_ssqpp_lp

__all__ = ["CapacitySensitivity", "capacity_sensitivity"]


@dataclass(frozen=True)
class CapacitySensitivity:
    """Shadow prices of node capacities in the single-source LP.

    Attributes
    ----------
    lp_value:
        The LP optimum ``Z*`` at the current capacities.
    shadow_prices:
        ``{node: d Z* / d cap(node)}``; non-positive for a minimization
        (more capacity can only reduce the bound).  Nodes whose capacity
        constraint was omitted (uncapacitated) are absent.
    """

    lp_value: float
    shadow_prices: dict[Node, float]

    def bottlenecks(self, count: int = 3) -> list[tuple[Node, float]]:
        """The *count* nodes whose extra capacity would help most
        (most negative shadow price first; zero-priced nodes omitted)."""
        priced = [
            (node, price)
            for node, price in self.shadow_prices.items()
            if price < -1e-12
        ]
        priced.sort(key=lambda item: item[1])
        return priced[:count]


def capacity_sensitivity(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    source: Node,
    *,
    lp_method: str = "highs",
) -> CapacitySensitivity:
    """Solve the single-source LP and price every capacity constraint."""
    model, _, _, ordered_nodes, _ = build_ssqpp_lp(
        system, strategy, network, source
    )
    solution = model.solve(method=lp_method)
    if solution.constraint_duals is None:
        raise SolverError("the LP backend reported no dual values")

    prices: dict[Node, float] = {}
    for constraint in model._constraints:
        name = constraint.name
        if not name.startswith("cap["):
            continue
        t = int(name[4:-1])
        prices[ordered_nodes[t]] = solution.dual_of(constraint)
    return CapacitySensitivity(
        lp_value=float(solution.objective), shadow_prices=prices
    )
