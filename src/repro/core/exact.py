"""Exhaustive optimal solvers for small placement instances.

The paper compares against the (NP-hard) true optimum; these solvers
compute it by branch-and-bound over all capacity-respecting placements.
They exist so tests and benchmarks can report *true* approximation
ratios on small instances.  All are exponential in the universe size and
guard against oversized inputs.

Pruning: elements are assigned in decreasing-load order; partial
assignments track node loads, and a branch is cut as soon as either the
capacity is violated or a (cheaply computed) partial cost already meets
the best known cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._compat import solver_api
from .._validation import cost, raises, require
from ..exceptions import InfeasibleError, ValidationError
from ..network.graph import Network, Node
from ..obs.trace import span
from ..quorums.base import Element, QuorumSystem
from ..quorums.strategy import AccessStrategy
from .placement import (
    Placement,
    average_max_delay,
    average_total_delay,
    expected_max_delay,
)

__all__ = [
    "ExactPlacement",
    "solve_ssqpp_exact",
    "solve_qpp_exact",
    "solve_total_delay_exact",
]

_MAX_STATES = 40_000_000


@dataclass(frozen=True)
class ExactPlacement:
    """An optimal placement with its objective value."""

    placement: Placement
    objective: float


def _search_space_guard(
    system: QuorumSystem, strategy: AccessStrategy, network: Network
) -> None:
    """Refuse hopeless instances before recursing.

    The naive bound is ``n^|U|``, but when every node can hold at most one
    element (each element's load exceeds half of every capacity) the
    capacity pruning reduces the search to injective maps, whose count
    ``n (n-1) ... (n - |U| + 1)`` is what actually gets explored.
    """
    n = network.size
    loads = [strategy.load(u) for u in system.universe]
    max_capacity = max(network.capacity(v) for v in network.nodes)
    one_per_node = min(loads) * 2 > max_capacity if loads else False
    if one_per_node:
        states = 1.0
        for i in range(system.universe_size):
            states *= max(n - i, 0)
    else:
        states = float(n) ** system.universe_size
    if states > _MAX_STATES:
        raise ValidationError(
            f"exhaustive search over ~{states:.3g} placements refused; "
            "shrink the instance (guard is "
            f"{_MAX_STATES} states)"
        )


def _enumerate_optimal(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    objective: Callable[[Placement], float],
) -> ExactPlacement:
    """Branch-and-bound over capacity-respecting placements.

    The objective is treated as a black box evaluated at the leaves; the
    bound function is monotone pruning on capacities only.  This keeps
    the solver correct for *any* delay objective at the cost of
    evaluating full placements — acceptable at the guarded sizes.
    """
    _search_space_guard(system, strategy, network)
    universe = sorted(
        system.universe, key=lambda u: -strategy.load(u)
    )  # heavy elements first => earlier capacity cuts
    nodes = list(network.nodes)
    capacities = np.array([network.capacity(v) for v in nodes])
    loads = np.array([strategy.load(u) for u in universe])

    # Quick infeasibility screens.
    if loads.sum() > capacities.sum() + 1e-9:
        raise InfeasibleError(
            "total element load exceeds total network capacity"
        )

    best_cost = float("inf")
    best_mapping: dict[Element, Node] | None = None
    node_loads = np.zeros(len(nodes))
    assignment: list[int] = []

    def recurse(index: int) -> None:
        nonlocal best_cost, best_mapping
        if index == len(universe):
            mapping = {
                universe[i]: nodes[assignment[i]] for i in range(len(universe))
            }
            placement = Placement(system, network, mapping)
            cost = objective(placement)
            if cost < best_cost - 1e-12:
                best_cost = cost
                best_mapping = mapping
            return
        load = loads[index]
        for node_index in range(len(nodes)):
            if node_loads[node_index] + load > capacities[node_index] + 1e-9:
                continue
            node_loads[node_index] += load
            assignment.append(node_index)
            recurse(index + 1)
            assignment.pop()
            node_loads[node_index] -= load

    with span("exact.search", elements=len(universe), nodes=len(nodes)):
        recurse(0)
    if best_mapping is None:
        raise InfeasibleError("no capacity-respecting placement exists")
    return ExactPlacement(
        placement=Placement(system, network, best_mapping), objective=best_cost
    )


@solver_api(legacy_positional=("network", "source"))
@cost("exp(n) * q")
@raises("InfeasibleError", "ValidationError")
def solve_ssqpp_exact(
    system: QuorumSystem,
    strategy: AccessStrategy,
    *,
    network: Network,
    source: Node,
) -> ExactPlacement:
    """The true optimum of Problem 3.2 (single-source, max-delay)."""
    network.node_index(source)
    return _enumerate_optimal(
        system,
        strategy,
        network,
        lambda placement: expected_max_delay(placement, strategy, source),
    )


@solver_api(legacy_positional=("network",))
@cost("exp(n) * q")
@raises("InfeasibleError", "ValidationError")
def solve_qpp_exact(
    system: QuorumSystem,
    strategy: AccessStrategy,
    *,
    network: Network,
    rates: dict[Node, float] | None = None,
) -> ExactPlacement:
    """The true optimum of Problem 1.1 (all clients, average max-delay)."""
    return _enumerate_optimal(
        system,
        strategy,
        network,
        lambda placement: average_max_delay(placement, strategy, rates=rates),
    )


@solver_api(legacy_positional=("network",))
@cost("exp(n) * q")
@raises("InfeasibleError", "ValidationError")
def solve_total_delay_exact(
    system: QuorumSystem,
    strategy: AccessStrategy,
    *,
    network: Network,
    rates: dict[Node, float] | None = None,
) -> ExactPlacement:
    """The true optimum of the Section 5 problem (average total delay)."""
    return _enumerate_optimal(
        system,
        strategy,
        network,
        lambda placement: average_total_delay(placement, strategy, rates=rates),
    )
