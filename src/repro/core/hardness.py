"""The NP-hardness reduction of Theorem 3.6.

The Single-Source Quorum Placement Problem is NP-hard by reduction from
``1|prec|sum w_j C_j`` in Woeginger special form (Theorem 3.5(b)): every
job has either ``T=1, w=0`` (*unit-time*) or ``T=0, w=1`` (*unit-weight*)
and precedences run unit-time -> unit-weight.

Construction (following the proof verbatim):

* one universe element ``e_j`` per unit-time job, plus an anchor ``e0``;
* a *type-1* quorum per unit-weight job ``J``: ``{e0} union {e_j : J_j
  precedes J}``, accessed with probability ``eps/m``;
* a *type-2* quorum ``{u, e0}`` per element ``u != e0``, accessed with
  probability ``(1-eps)/(n-m)``;
* the network is a unit-length path ``v0 - v1 - ... - v_{n-m}``;
* ``cap(v0) = 1`` (so only ``e0`` fits there),
  ``cap(v_j) = 2(1-eps)/(n-m) - eps`` otherwise — large enough for any
  single element, too small for two or for ``e0``.

With ``eps`` small enough (we take ``eps = 1/(3(n-m)+1)``, which
satisfies the proof's requirement ``eps < (1-eps)/(n-m)`` with the slack
the capacity argument needs), feasible placements are exactly the
bijections from ``U \\ {e0}`` to ``v_1..v_{n-m}``, and

    Delta_f(v0) = (eps/m) * cost(schedule of f)
                  + ((1-eps)/(n-m)) * sum_{i=1}^{n-m} i,

so placement delay and schedule cost are minimized together.

Two departures from the paper's prose, both harmless:

* distinct jobs can yield *identical* type-1 quorums (same predecessor
  set); we merge duplicates and sum their probabilities, which leaves
  ``Delta_f`` unchanged;
* a type-1 quorum with exactly one predecessor coincides with a type-2
  quorum; merged likewise.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ValidationError
from ..network.generators import path_network
from ..network.graph import Network, Node
from ..quorums.base import QuorumSystem
from ..quorums.strategy import AccessStrategy
from ..scheduling.precedence import Job, SchedulingInstance
from .placement import Placement, expected_max_delay

__all__ = ["HardnessReduction", "reduce_scheduling_to_ssqpp"]

#: Anchor element shared by all quorums in the reduction.
ANCHOR = "e0"


@dataclass(frozen=True)
class HardnessReduction:
    """A scheduling instance transformed into a single-source placement
    instance, with the conversions used in the proof of Theorem 3.6."""

    scheduling: SchedulingInstance
    system: QuorumSystem
    strategy: AccessStrategy
    network: Network
    source: Node
    epsilon: float
    #: element label for each unit-time job
    element_of_job: dict[Job, str]

    # -- the affine delay/cost correspondence ----------------------------------------

    @property
    def num_unit_weight(self) -> int:
        return len(self.scheduling.unit_weight_jobs())

    @property
    def num_unit_time(self) -> int:
        return len(self.scheduling.unit_time_jobs())

    def delay_of_schedule_cost(self, cost: float) -> float:
        """Map a schedule cost to the delay of its corresponding placement."""
        m = self.num_unit_weight
        q = self.num_unit_time  # the proof's n - m
        constant = (1.0 - self.epsilon) / q * (q * (q + 1) / 2.0)
        return self.epsilon / m * cost + constant

    def schedule_cost_of_delay(self, delay: float) -> float:
        """Inverse of :meth:`delay_of_schedule_cost`."""
        m = self.num_unit_weight
        q = self.num_unit_time
        constant = (1.0 - self.epsilon) / q * (q * (q + 1) / 2.0)
        return (delay - constant) * m / self.epsilon

    # -- conversions -----------------------------------------------------------------

    def placement_to_schedule(self, placement: Placement) -> tuple[Job, ...]:
        """The schedule ``pi_f`` of the proof: the unit-time job whose
        element sits on ``v_t`` runs in slot ``t``; unit-weight jobs run
        as early as their predecessors allow."""
        position: dict[Job, int] = {}
        used: set[int] = set()
        for job, element in self.element_of_job.items():
            node = placement[element]
            t = self.network.node_index(node)
            if t == 0 or t in used:
                raise ValidationError(
                    "placement is not a feasible bijection onto the path"
                )
            used.add(t)
            position[job] = t
        order: list[Job] = []
        scheduled: set[Job] = set()
        unit_weight = self.scheduling.unit_weight_jobs()

        def flush_ready() -> None:
            for job in unit_weight:
                if job in scheduled:
                    continue
                if set(self.scheduling.predecessors(job)) <= scheduled:
                    order.append(job)
                    scheduled.add(job)

        flush_ready()
        for job in sorted(position, key=lambda j: position[j]):
            order.append(job)
            scheduled.add(job)
            flush_ready()
        return tuple(order)

    def schedule_to_placement(self, order: tuple[Job, ...]) -> Placement:
        """The placement corresponding to a feasible schedule: the
        ``t``-th unit-time job to run hosts its element on ``v_t``."""
        if not self.scheduling.is_feasible_order(order):
            raise ValidationError("order is not a feasible linear extension")
        mapping: dict[str, Node] = {ANCHOR: self.network.nodes[0]}
        slot = 0
        for job in order:
            if job in self.element_of_job:
                slot += 1
                mapping[self.element_of_job[job]] = self.network.nodes[slot]
        return Placement(self.system, self.network, mapping)

    def placement_delay(self, placement: Placement) -> float:
        """``Delta_f(v0)`` of a placement under the reduction's strategy."""
        return expected_max_delay(placement, self.strategy, self.source)


# paper: Thm 3.6, §3
def reduce_scheduling_to_ssqpp(instance: SchedulingInstance) -> HardnessReduction:
    """Build the Theorem 3.6 placement instance for *instance*.

    Raises
    ------
    ValidationError
        If *instance* is not in Woeginger special form.
    """
    if not instance.is_woeginger_form():
        raise ValidationError(
            "the reduction requires an instance in Woeginger special form "
            "(Theorem 3.5(b)); see SchedulingInstance.is_woeginger_form"
        )
    unit_time = instance.unit_time_jobs()
    unit_weight = instance.unit_weight_jobs()
    m = len(unit_weight)
    q = len(unit_time)  # the proof's n - m

    element_of_job = {job: f"e{i + 1}" for i, job in enumerate(unit_time)}
    universe = [ANCHOR, *element_of_job.values()]

    epsilon = 1.0 / (3 * q + 1)

    weighted: dict[frozenset, float] = {}

    def add_quorum(quorum: frozenset, probability: float) -> None:
        weighted[quorum] = weighted.get(quorum, 0.0) + probability

    for job in unit_weight:  # type-1 quorums
        members = {ANCHOR}
        members.update(
            element_of_job[pred] for pred in instance.predecessors(job)
        )
        add_quorum(frozenset(members), epsilon / m)
    for element in element_of_job.values():  # type-2 quorums
        add_quorum(frozenset({ANCHOR, element}), (1.0 - epsilon) / q)

    quorums = list(weighted)
    system = QuorumSystem(quorums, universe=universe, name="hardness", check=False)
    # Align weights with the system's quorum order.
    weights = [weighted[quorum] for quorum in system.quorums]
    strategy = AccessStrategy.from_weights(system, weights)

    capacity_other = 2.0 * (1.0 - epsilon) / q - epsilon
    capacities = {0: 1.0}
    capacities.update({t: capacity_other for t in range(1, q + 1)})
    network = path_network(q + 1).with_capacities(capacities)

    return HardnessReduction(
        scheduling=instance,
        system=system,
        strategy=strategy,
        network=network,
        source=0,
        epsilon=epsilon,
        element_of_job=element_of_job,
    )
