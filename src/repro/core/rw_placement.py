"""Placement for read/write quorum systems.

The single-source algorithm of §3.3 never uses the intersection
property — the LP, the filtering and the GAP rounding are all oblivious
to why the family matters — so it applies verbatim to the *mixed*
read/write workload: quorums are the union of the read and write
families, weighted by the workload's read fraction.

What does **not** carry over is the Theorem 3.3 reduction from the
all-clients problem: Lemma 3.1 samples two quorums independently and
uses their intersection, which fails for a pair of reads.  The
all-clients solver here therefore sweeps candidate sources like
:func:`repro.core.qpp.solve_qpp` and keeps the bicriteria *load*
guarantee, but honestly reports no proven delay factor (the certified
LP-based lower bound per source is still valid and is returned).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from .._compat import solver_api
from .._validation import check_probability, check_scale, cost, raises
from ..network.graph import Network, Node
from ..network.lazymetric import LandmarkOracle
from ..quorums.readwrite import ReadWriteQuorumSystem
from ..quorums.strategy import AccessStrategy
from .placement import Placement, average_max_delay
from .ssqpp import SSQPPResult, solve_ssqpp

__all__ = ["RWPlacementResult", "solve_rw_ssqpp", "solve_rw_placement"]


@dataclass(frozen=True)
class RWPlacementResult:
    """A placement for a mixed read/write workload.

    Attributes
    ----------
    placement:
        The chosen placement of the combined universe.
    strategy:
        The mixed-workload strategy the placement was optimized for.
    average_delay:
        Realized all-clients average max-delay of the mixed workload.
    load_factor_bound:
        ``alpha + 1`` — the §3.3 load guarantee, which survives intact.
    lp_lower_bound:
        ``min over sources of (avg distance to source + Z*) / 5`` —
        reported for symmetry with :class:`repro.core.qpp.QPPResult`;
        valid as a lower bound only when the combined family pairwise
        intersects (e.g. a write-only workload), else informational.
    source:
        The winning candidate source.
    """

    placement: Placement
    strategy: AccessStrategy
    average_delay: float
    load_factor_bound: float
    lp_lower_bound: float
    source: Node


@solver_api(legacy_positional=("source",))
@cost("n**2 * q")
@raises("ValidationError", transient=("SolverError",))
def solve_rw_ssqpp(
    rw_system: ReadWriteQuorumSystem,
    network: Network,
    *,
    source: Node,
    read_fraction: float,
    alpha: float = 2.0,
    metric: object | None = None,
    scale: str | None = None,
) -> SSQPPResult:
    """Single-source placement of a read/write workload (Theorem 3.7
    applies unchanged: its guarantees never use intersection).

    ``metric=`` and ``scale=`` thread straight to
    :func:`~repro.core.ssqpp.solve_ssqpp` (the shared ``scale=`` gate,
    ``docs/api.md``): ``scale="large"`` routes distances through the
    network's lazy metric instead of a dense all-pairs build.
    """
    read_fraction = check_probability(read_fraction, "read_fraction")
    check_scale(scale)
    system, strategy = rw_system.workload_weights(read_fraction)
    return solve_ssqpp(
        system,
        strategy,
        network=network,
        source=source,
        alpha=alpha,
        metric=metric,
        scale=scale,
    )


@cost("n**2 * q * c")
@raises("ValidationError", transient=("SolverError",))
def solve_rw_placement(
    rw_system: ReadWriteQuorumSystem,
    network: Network,
    *,
    read_fraction: float,
    alpha: float = 2.0,
    candidate_sources: Sequence[Node] | None = None,
    scale: str | None = None,
    landmarks: int = 16,
) -> RWPlacementResult:
    """All-clients placement of a read/write workload.

    Sweeps candidate sources with the single-source solver and keeps the
    best realized average delay.  The load bound ``(alpha+1)·cap`` is
    guaranteed; the delay carries no proven factor (see module docs).

    ``scale="large"`` (the shared ``scale=`` gate, ``docs/api.md``)
    routes every distance access through the network's lazy metric and,
    when ``candidate_sources`` is not given, restricts the sweep to a
    farthest-point landmark set of size *landmarks* instead of every
    node — the same default the large-scale QPP sweep uses.
    """
    read_fraction = check_probability(read_fraction, "read_fraction")
    check_scale(scale)
    system, strategy = rw_system.workload_weights(read_fraction)
    if scale == "large":
        metric = network.lazy_metric()
        if candidate_sources is None:
            oracle = LandmarkOracle.build(metric, landmarks)
            candidate_sources = oracle.landmarks
    else:
        metric = network.metric()
    candidates = (
        list(candidate_sources) if candidate_sources is not None else list(network.nodes)
    )

    best_result: SSQPPResult | None = None
    best_delay = float("inf")
    best_source: Node | None = None
    lower_bound = float("inf")
    for source in candidates:
        result = solve_ssqpp(
            system,
            strategy,
            network=network,
            source=source,
            alpha=alpha,
            metric=metric if scale == "large" else None,
        )
        to_source = float(metric.distances_from(source).mean())
        lower_bound = min(lower_bound, (to_source + result.lp_value) / 5.0)
        delay = average_max_delay(
            result.placement, strategy, metric=metric if scale == "large" else None
        )
        if delay < best_delay:
            best_delay = delay
            best_result = result
            best_source = source

    assert best_result is not None and best_source is not None
    return RWPlacementResult(
        placement=best_result.placement,
        strategy=strategy,
        average_delay=best_delay,
        load_factor_bound=alpha + 1.0,
        lp_lower_bound=lower_bound,
        source=best_source,
    )
