"""The partial quorum deployment problem (Gilbert & Malewicz, §2).

The related-work section describes the problem Gilbert and Malewicz
study independently: with ``|Q| = |V| = |U|``, find a *bijection*
``f : U -> V`` placing the elements and a *bijection* ``q : V -> Q``
assigning each client its own distinct quorum, minimizing the average
total delay ``Avg_v gamma_f(v, q(v))``.  The paper notes its own Section
5 results generalize this scenario (arbitrary sizes, load constraints,
probabilistic access); this module implements the restricted bijective
problem itself so the two can be compared.

Two solvers:

* :func:`solve_partial_deployment_exact` — exhaustive over both
  bijections (tiny instances only), the ground truth.
* :func:`solve_partial_deployment` — alternating optimization.  Each
  half-problem is a *linear assignment problem*:

  - with ``f`` fixed, choosing ``q`` assigns clients to quorums with
    cost ``gamma_f(v, Q)``;
  - with ``q`` fixed, the objective re-groups per element as
    ``sum_u sum_{v : u in q(v)} d(v, f(u))``, so choosing ``f`` assigns
    elements to nodes with cost ``c(u, w) = sum_{v : u in q(v)} d(v, w)``.

  Both are solved exactly with the Hungarian algorithm; alternation is
  monotone non-increasing and stops at a (joint) local optimum.  This is
  a heuristic — Gilbert & Malewicz give a polynomial exact algorithm for
  their setting; the exact solver here provides the reference on small
  instances, and the tests measure the alternation's gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

import numpy as np
from scipy.optimize import linear_sum_assignment

from .._validation import check_integer_in_range, check_scale, cost, raises, require
from ..exceptions import ValidationError
from ..network.graph import Network, Node
from ..quorums.base import Element, QuorumSystem
from .placement import Placement

__all__ = [
    "PartialDeployment",
    "solve_partial_deployment",
    "solve_partial_deployment_exact",
]

_MAX_EXACT_SIZE = 5


@dataclass(frozen=True)
class PartialDeployment:
    """A solved partial deployment.

    Attributes
    ----------
    placement:
        The bijection ``f`` wrapped as a :class:`Placement`.
    quorum_of_client:
        The bijection ``q``: each client's assigned quorum index.
    average_delay:
        ``Avg_v gamma_f(v, q(v))``.
    iterations:
        Alternating rounds performed (0 for the exact solver).
    """

    placement: Placement
    quorum_of_client: dict[Node, int]
    average_delay: float
    iterations: int


def _check_shape(system: QuorumSystem, network: Network) -> None:
    require(
        len(system) == network.size == system.universe_size,
        "partial deployment requires |Q| = |V| = |U| "
        f"(got {len(system)} quorums, {network.size} nodes, "
        f"{system.universe_size} elements)",
    )


def _gamma_matrix(
    system: QuorumSystem,
    network: Network,
    element_to_node: list[int],
    metric: object,
) -> np.ndarray:
    """``gamma[v_index, quorum_index]`` for a fixed element placement.

    Works against any :class:`~repro.network.lazymetric.MetricView`: a
    dense metric is sliced by columns as before, while a lazy view uses
    metric symmetry (``d(v, h) = d(h, v)``) to sum the *rows* of the
    ``O(q)`` host nodes — never materializing all ``n`` rows.
    """
    matrix = getattr(metric, "matrix", None)
    n = network.size
    nodes = network.nodes
    gamma = np.zeros((n, len(system)))
    element_index = {u: i for i, u in enumerate(system.universe)}
    for j, quorum in enumerate(system.quorums):
        hosts = [element_to_node[element_index[u]] for u in quorum]
        if matrix is not None:
            gamma[:, j] = matrix[:, hosts].sum(axis=1)
        else:
            gamma[:, j] = np.sum(
                [metric.distances_from(nodes[h]) for h in hosts], axis=0
            )
    return gamma


def _deployment_cost(
    system: QuorumSystem,
    network: Network,
    element_to_node: list[int],
    client_to_quorum: list[int],
    metric: object,
) -> float:
    gamma = _gamma_matrix(system, network, element_to_node, metric)
    return float(np.mean([gamma[v, client_to_quorum[v]] for v in range(network.size)]))


@cost("n * q**2")
@raises("ValidationError")
def solve_partial_deployment(
    system: QuorumSystem,
    network: Network,
    *,
    max_rounds: int = 20,
    metric: object | None = None,
    scale: str | None = None,
) -> PartialDeployment:
    """Alternating Hungarian optimization of ``(f, q)``.

    Starts from the identity placement and alternates exact assignment
    solves until neither bijection improves (or *max_rounds*).

    ``scale="large"`` (the shared ``scale=`` gate, ``docs/api.md``)
    routes all distance access through the network's lazy metric —
    every cost matrix is assembled from ``O(q)`` symmetric row pulls
    per quorum instead of the dense ``(n, n)`` build.  An explicit
    ``metric=`` (any :class:`~repro.network.lazymetric.MetricView`)
    takes precedence.
    """
    _check_shape(system, network)
    check_integer_in_range(max_rounds, "max_rounds", low=1)
    check_scale(scale)
    n = network.size
    if metric is None:
        metric = network.lazy_metric() if scale == "large" else network.metric()
    matrix = getattr(metric, "matrix", None)
    universe = list(system.universe)
    element_index = {u: i for i, u in enumerate(universe)}

    element_to_node = list(range(n))  # f: universe order -> node index
    client_to_quorum = list(range(n))  # q: node index -> quorum index
    best = _deployment_cost(
        system, network, element_to_node, client_to_quorum, metric
    )

    iterations = 0
    for _ in range(max_rounds):
        improved = False

        # Step 1: optimal q for fixed f (clients x quorums assignment).
        gamma = _gamma_matrix(system, network, element_to_node, metric)
        rows, columns = linear_sum_assignment(gamma)
        candidate_q = [0] * n
        for v, j in zip(rows, columns):
            candidate_q[int(v)] = int(j)
        cost_q = _deployment_cost(
            system, network, element_to_node, candidate_q, metric
        )
        if cost_q < best - 1e-12:
            client_to_quorum = candidate_q
            best = cost_q
            improved = True

        # Step 2: optimal f for fixed q (elements x nodes assignment).
        # cost(u, w) = sum over clients v whose quorum contains u of d(v, w).
        demand = np.zeros((len(universe), n))
        for v in range(n):
            row = (
                matrix[v, :]
                if matrix is not None
                else metric.distances_from(network.nodes[v])
            )
            for u in system.quorums[client_to_quorum[v]]:
                demand[element_index[u], :] += row
        rows, columns = linear_sum_assignment(demand)
        candidate_f = [0] * len(universe)
        for i, w in zip(rows, columns):
            candidate_f[int(i)] = int(w)
        cost_f = _deployment_cost(
            system, network, candidate_f, client_to_quorum, metric
        )
        if cost_f < best - 1e-12:
            element_to_node = candidate_f
            best = cost_f
            improved = True

        iterations += 1
        if not improved:
            break

    mapping = {
        universe[i]: network.nodes[element_to_node[i]] for i in range(len(universe))
    }
    quorum_of_client = {
        network.nodes[v]: client_to_quorum[v] for v in range(n)
    }
    return PartialDeployment(
        placement=Placement(system, network, mapping),
        quorum_of_client=quorum_of_client,
        average_delay=best,
        iterations=iterations,
    )


@cost("exp(n) * q**2")
@raises("ValidationError")
def solve_partial_deployment_exact(
    system: QuorumSystem, network: Network
) -> PartialDeployment:
    """Exhaustive optimum over both bijections (``n <= 5``)."""
    _check_shape(system, network)
    n = network.size
    if n > _MAX_EXACT_SIZE:
        raise ValidationError(
            f"exact partial deployment supports n <= {_MAX_EXACT_SIZE} (got {n})"
        )
    universe = list(system.universe)
    dense = network.metric()
    best_cost = np.inf
    best_f: tuple[int, ...] | None = None
    best_q: tuple[int, ...] | None = None
    for f_perm in permutations(range(n)):
        gamma = _gamma_matrix(system, network, list(f_perm), dense)
        # For a fixed f, the best q is itself an assignment problem —
        # solve it exactly instead of enumerating all q permutations.
        rows, columns = linear_sum_assignment(gamma)
        cost = float(gamma[rows, columns].mean())
        if cost < best_cost - 1e-15:
            best_cost = cost
            best_f = f_perm
            q = [0] * n
            for v, j in zip(rows, columns):
                q[int(v)] = int(j)
            best_q = tuple(q)
    assert best_f is not None and best_q is not None
    mapping = {universe[i]: network.nodes[best_f[i]] for i in range(n)}
    return PartialDeployment(
        placement=Placement(system, network, mapping),
        quorum_of_client={network.nodes[v]: best_q[v] for v in range(n)},
        average_delay=best_cost,
        iterations=0,
    )
