"""Optimal single-source placement of the Grid quorum system (§4.1 and
Appendix B of the paper).

Setting: the Grid system on ``k^2`` elements under the uniform strategy
(load-optimal for the Grid), a source ``v0``, and node capacities.  After
the capacity preprocessing below, the problem reduces to choosing which
``k^2`` *slots* (node copies) host the matrix and in what arrangement.

The paper's concentric strategy: let ``tau_1 >= ... >= tau_{k^2}`` be the
chosen slot distances in *decreasing* order.  Put ``tau_1`` at matrix
position (0,0); having filled the top-left ``l x l`` square with the
largest ``l^2`` values, put the next ``l`` values down column ``l``
(rows ``0..l-1``) and the following ``l+1`` values across row ``l``
(columns ``0..l``).  Theorem B.1 proves this arrangement minimizes the
sum over quorums of the maximum member distance — i.e. it is an optimal
solution of the Single-Source QPP for the Grid.

Capacity preprocessing (from §4.1): a node with ``cap(v) >= load`` can
host ``floor(cap(v)/load)`` elements, so it contributes that many slots
at distance ``d(v0, v)``; nodes below the per-element load contribute
none.  Choosing the ``k^2`` closest slots is optimal because the
objective is monotone in each ``tau_i`` (swapping any chosen slot for a
farther one cannot decrease any quorum's max).
"""

from __future__ import annotations

import math

from collections.abc import Mapping
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from .._compat import solver_api
from .._results import Provenance, SolveResult
from .._validation import check_integer_in_range, check_positive, cost, raises
from ..exceptions import CapacityError, ValidationError
from ..network.graph import Network, Node
from ..obs.trace import span
from ..quorums.grid import grid
from ..quorums.strategy import AccessStrategy
from .placement import Placement, expected_max_delay, node_loads

__all__ = [
    "concentric_positions",
    "concentric_matrix",
    "grid_matrix_delay",
    "GridLayoutResult",
    "optimal_grid_placement",
    "nearest_slots",
]


def concentric_positions(k: int) -> list[tuple[int, int]]:
    """Matrix positions in the concentric fill order of §4.1.

    ``positions[r]`` is where the ``(r+1)``-th largest distance goes.

    >>> concentric_positions(2)
    [(0, 0), (0, 1), (1, 0), (1, 1)]
    """
    check_integer_in_range(k, "k", low=1)
    positions: list[tuple[int, int]] = [(0, 0)]
    for l in range(1, k):
        positions.extend((row, l) for row in range(l))  # column l, top to bottom
        positions.extend((l, column) for column in range(l + 1))  # row l, left to right
    return positions


def concentric_matrix(values: list[float]) -> np.ndarray:
    """Arrange ``k^2`` values in the concentric layout.

    Values are sorted in decreasing order internally, so callers can pass
    distances in any order.  Returns the ``k x k`` matrix ``M`` whose
    entry ``M[i, j]`` is the distance placed at matrix cell ``(i, j)``.
    """
    k = int(round(len(values) ** 0.5))
    if k * k != len(values):
        raise ValidationError(f"need a square count of values, got {len(values)}")
    ordered = sorted(values, reverse=True)
    matrix = np.zeros((k, k))
    for value, (row, column) in zip(ordered, concentric_positions(k)):
        matrix[row, column] = value
    return matrix


def grid_matrix_delay(matrix: np.ndarray) -> float:
    """Average max-delay of a distance matrix under the uniform strategy.

    ``(1/k^2) * sum_{i,j} max(row i union column j)`` — the §4.1
    rephrasing of ``Delta_f(v0)`` for the Grid.
    """
    array = np.asarray(matrix, dtype=float)
    k = array.shape[0]
    if array.shape != (k, k):
        raise ValidationError("matrix must be square")
    row_max = array.max(axis=1)
    column_max = array.max(axis=0)
    total = 0.0
    for i in range(k):
        for j in range(k):
            total += max(row_max[i], column_max[j])
    return total / (k * k)


def nearest_slots(
    network: Network, source: Node, element_load: float, count: int
) -> list[Node]:
    """The *count* closest capacity slots to *source*.

    Node ``v`` contributes ``floor(cap(v) / element_load)`` slots at
    distance ``d(source, v)`` (the §4.1 suppress/duplicate preprocessing,
    equivalent to greedy packing of equal loads).

    Raises
    ------
    CapacityError
        When the network has fewer than *count* slots in total.
    """
    check_positive(element_load, "element_load")
    metric = network.metric()
    slots: list[tuple[float, int, Node]] = []
    for node in metric.nodes_by_distance(source):
        capacity = network.capacity(node)
        if math.isfinite(capacity):
            copies = int(capacity // element_load)
        else:
            copies = count  # an uncapacitated node can host everything
        distance = metric.distance(source, node)
        for copy in range(copies):
            slots.append((distance, copy, node))
    if len(slots) < count:
        raise CapacityError(
            f"network supplies only {len(slots)} capacity slots for load "
            f"{element_load:.4f}; {count} are needed"
        )
    slots.sort(key=lambda item: (item[0], network.node_index(item[2]), item[1]))
    return [node for _, _, node in slots[:count]]


@dataclass(frozen=True)
class GridLayoutResult(SolveResult):
    """An optimal Grid placement (a :class:`~repro._results.SolveResult`).

    ``objective`` equals :func:`grid_matrix_delay` of the arranged
    distance matrix, which Theorem B.1 certifies as the minimum over all
    capacity-respecting placements; the pre-unification name ``delay``
    still resolves but emits a :class:`FutureWarning` (removal scheduled
    for the next major release).
    """

    strategy: AccessStrategy
    matrix: np.ndarray
    slots: list[Node]

    _legacy_aliases: ClassVar[Mapping[str, str]] = {"delay": "objective"}


def _realized_load_factor(
    placement: Placement, strategy: AccessStrategy, network: Network
) -> float:
    """Realized worst ``load_f(v)/cap(v)`` of an integral placement."""
    worst = 0.0
    for node, load in node_loads(placement, strategy).items():
        if load <= 0:
            continue
        capacity = network.capacity(node)
        worst = max(worst, load / capacity if capacity > 0 else float("inf"))
    return worst


# paper: Thm 1.3, Thm B.1, §4
@solver_api(legacy_positional=("k",))
@cost("n * q + n * log(n)")
@raises("CapacityError", "ValidationError")
def optimal_grid_placement(network: Network, source: Node, *, k: int) -> GridLayoutResult:
    """Place ``grid(k)`` optimally for source *source* (Theorem B.1).

    The per-element load under the uniform strategy is
    ``(2k - 1)/k^2``; the ``k^2`` nearest capacity slots are arranged
    concentrically.  The result's placement respects every node capacity
    exactly (no violation), matching Theorem 1.3's requirements.
    """
    check_integer_in_range(k, "k", low=1)
    with span("grid.layout", k=k, source=source):
        system = grid(k)
        strategy = AccessStrategy.uniform(system)
        element_load = strategy.load(system.universe[0])
        slots = nearest_slots(network, source, element_load, k * k)

        metric = network.metric()
        distances = [metric.distance(source, node) for node in slots]
        # Pair each matrix cell with a slot: sort slots by decreasing distance
        # and walk the concentric position order.
        order = sorted(range(len(slots)), key=lambda i: -distances[i])
        mapping = {}
        matrix = np.zeros((k, k))
        for rank, (row, column) in enumerate(concentric_positions(k)):
            slot_index = order[rank]
            mapping[(row, column)] = slots[slot_index]
            matrix[row, column] = distances[slot_index]

        placement = Placement(system, network, mapping)
        delay = expected_max_delay(placement, strategy, source)
    return GridLayoutResult(
        placement=placement,
        objective=delay,
        load_violation_factor=_realized_load_factor(placement, strategy, network),
        provenance=Provenance.of("grid.concentric", "Thm B.1", k=k),
        strategy=strategy,
        matrix=matrix,
        slots=slots,
    )
