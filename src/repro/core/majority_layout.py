"""Single-source placement of Majority/threshold systems (§4.2).

For the generalized Majority system — all ``t``-subsets of an
``n``-element universe, ``2t > n`` — under the uniform strategy, §4.2
observes that the average delay from the source depends only on the
*multiset of distances* of the slots hosting the elements, not on which
element sits where.  Sorting the chosen slot distances in decreasing
order ``tau_1 >= tau_2 >= ...``, equation (19) gives the delay exactly:

    Delta_f(v0) = (1 / C(n, t)) * sum_{i=1}^{n-t+1} tau_i * C(n-i, t-1)

(There are ``C(n-1, t-1)`` quorums whose farthest member is ``tau_1``,
``C(n-2, t-1)`` whose farthest is ``tau_2`` but not ``tau_1``, and so on.)

Consequently the optimal placement simply occupies the ``n`` closest
capacity slots — any assignment of elements to those slots is optimal,
and :func:`optimal_majority_placement` returns one while
:func:`majority_delay_formula` computes (19) directly.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from math import comb
from typing import ClassVar

from .._compat import solver_api
from .._results import Provenance, SolveResult
from .._validation import check_integer_in_range, cost, raises
from ..exceptions import ValidationError
from ..network.graph import Network, Node
from ..obs.trace import span
from ..quorums.majority import threshold
from ..quorums.strategy import AccessStrategy
from .grid_layout import _realized_load_factor, nearest_slots
from .placement import Placement, expected_max_delay

__all__ = [
    "majority_delay_formula",
    "MajorityLayoutResult",
    "optimal_majority_placement",
]


# paper: eq. (19), §4.2
def majority_delay_formula(n: int, t: int, distances: list[float]) -> float:
    """Equation (19): the exact average delay of any placement of the
    ``t``-of-``n`` threshold system whose slots sit at *distances*.

    Parameters
    ----------
    n, t:
        Universe size and quorum size; requires ``2t > n``.
    distances:
        The ``n`` slot distances from the source, in any order.

    Examples
    --------
    >>> majority_delay_formula(3, 2, [0.0, 1.0, 2.0])
    1.666666666666666...
    """
    check_integer_in_range(n, "n", low=1)
    check_integer_in_range(t, "t", low=1, high=n)
    if 2 * t <= n:
        raise ValidationError(f"threshold system needs 2t > n, got n={n}, t={t}")
    if len(distances) != n:
        raise ValidationError(f"need exactly {n} distances, got {len(distances)}")
    taus = sorted((float(d) for d in distances), reverse=True)
    total = 0.0
    for i in range(1, n - t + 2):  # i = 1 .. n - t + 1
        total += taus[i - 1] * comb(n - i, t - 1)
    return total / comb(n, t)


@dataclass(frozen=True)
class MajorityLayoutResult(SolveResult):
    """An optimal Majority placement (a
    :class:`~repro._results.SolveResult`).

    ``objective`` is the realized ``Delta_f(v0)``; ``formula_delay`` is
    the closed-form (19) evaluated on the chosen slot distances.  The
    two agree to numerical precision — the test suite asserts it.  The
    pre-unification name ``delay`` still resolves but emits a
    :class:`FutureWarning` (removal scheduled for the next major
    release).
    """

    strategy: AccessStrategy
    formula_delay: float
    slots: list[Node]

    _legacy_aliases: ClassVar[Mapping[str, str]] = {"delay": "objective"}


# paper: Thm 1.3, §4
@solver_api(legacy_positional=("n", "t"))
@cost("n * q + n * log(n)")
@raises("CapacityError", "ValidationError")
def optimal_majority_placement(
    network: Network, source: Node, *, n: int, t: int | None = None
) -> MajorityLayoutResult:
    """Optimally place the ``t``-of-``n`` threshold system for one source.

    ``t`` defaults to the simple majority ``floor(n/2) + 1``.  Uses the
    §4.1-style capacity preprocessing (a node hosts
    ``floor(cap(v)/load)`` elements at its distance) and occupies the
    ``n`` nearest slots; equation (19) makes any element-to-slot
    assignment equally good, and taking the pointwise-smallest distance
    multiset minimizes the formula since its coefficients are
    non-negative.
    """
    check_integer_in_range(n, "n", low=1)
    quorum_size = t if t is not None else n // 2 + 1
    with span("majority.layout", n=n, t=quorum_size, source=source):
        system = threshold(n, quorum_size)
        strategy = AccessStrategy.uniform(system)
        element_load = strategy.load(system.universe[0])
        slots = nearest_slots(network, source, element_load, n)

        mapping = {
            element: slots[index] for index, element in enumerate(system.universe)
        }
        placement = Placement(system, network, mapping)
        metric = network.metric()
        distances = [metric.distance(source, node) for node in slots]
        delay = expected_max_delay(placement, strategy, source)
        formula = majority_delay_formula(n, quorum_size, distances)
    return MajorityLayoutResult(
        placement=placement,
        objective=delay,
        load_violation_factor=_realized_load_factor(placement, strategy, network),
        provenance=Provenance.of("majority.nearest-slots", "eq. (19)", n=n, t=quorum_size),
        strategy=strategy,
        formula_delay=formula,
        slots=slots,
    )
