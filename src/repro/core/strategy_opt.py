"""Optimizing the access strategy *after* placement.

The paper treats the access strategy ``p`` as an input "chosen from the
existing literature to achieve good load-balancing".  Once a placement
``f`` is fixed, however, there is a second natural knob: re-weighting the
strategy to prefer the quorums that happen to have landed close to the
clients, subject to a load budget.  That is a linear program:

    minimize   sum_Q p(Q) * delta_f(v0, Q)          (single source), or
               sum_Q p(Q) * Avg_v delta_f(v, Q)     (all clients)
    subject to sum_Q p(Q) = 1
               load_p(u) <= L   for every element u
               p >= 0

With ``L = 1`` the LP is unconstrained by load and collapses onto the
single closest quorum (the degenerate hot-spot the paper warns about);
with ``L`` equal to the system load it can only re-balance among
load-optimal strategies.  Sweeping ``L`` traces the delay/load Pareto
frontier for a fixed placement.

:func:`alternating_optimization` composes this with the placement
algorithms: alternately re-place for the current strategy and re-weight
for the current placement.  Each step is non-increasing in delay; the
function is an *experimental extension* (not a paper algorithm) used by
the extension benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import check_integer_in_range, check_probability
from ..exceptions import ValidationError
from ..lp import Model
from ..network.graph import Node
from ..quorums.strategy import AccessStrategy
from .placement import Placement, average_max_delay, max_delay
from .ssqpp import solve_ssqpp

__all__ = [
    "DelayOptimalStrategy",
    "delay_optimal_strategy",
    "strategy_delay_frontier",
    "alternating_optimization",
]


@dataclass(frozen=True)
class DelayOptimalStrategy:
    """A strategy minimizing expected delay under a load budget.

    Attributes
    ----------
    strategy:
        The optimizing strategy.
    delay:
        Its expected delay for the requested client scope.
    load_budget:
        The per-element load cap ``L`` that was enforced.
    max_load:
        The realized maximum element load (``<= load_budget``).
    """

    strategy: AccessStrategy
    delay: float
    load_budget: float
    max_load: float


def _quorum_delay_coefficients(
    placement: Placement, source: Node | None
) -> np.ndarray:
    """Per-quorum delay coefficient: ``delta_f(v0, Q)`` or the average
    over all clients."""
    system = placement.system
    if source is not None:
        return np.array(
            [max_delay(placement, source, q) for q in range(len(system))]
        )
    matrix = placement.network.metric().matrix
    coefficients = np.empty(len(system))
    for q in range(len(system)):
        nodes = placement.quorum_node_indices(q)
        coefficients[q] = float(matrix[:, nodes].max(axis=1).mean())
    return coefficients


def delay_optimal_strategy(
    placement: Placement,
    *,
    load_budget: float,
    source: Node | None = None,
) -> DelayOptimalStrategy:
    """Minimize expected (max-)delay over strategies with load ≤ budget.

    Parameters
    ----------
    placement:
        The fixed placement whose quorum distances define the objective.
    load_budget:
        Per-element load cap ``L`` in ``(0, 1]``.  Must be at least the
        system load of the quorum system or the LP is infeasible.
    source:
        Optimize ``Delta(source)`` when given, else the all-clients
        average ``Avg_v Delta(v)``.
    """
    budget = check_probability(load_budget, "load_budget")
    if budget <= 0:
        raise ValidationError("load_budget must be positive")
    system = placement.system
    coefficients = _quorum_delay_coefficients(placement, source)

    model = Model(name="delay-optimal-strategy")
    p = model.variables(len(system), prefix="p", ub=1.0)
    total = p[0].to_expr()
    for variable in p[1:]:
        total = total + variable
    model.add_constraint(total == 1, name="distribution")
    for element in system.universe:
        indices = system.quorums_containing(element)
        if not indices:
            continue
        load_expr = p[indices[0]].to_expr()
        for index in indices[1:]:
            load_expr = load_expr + p[index]
        model.add_constraint(load_expr <= budget, name=f"load[{element!r}]")
    objective = p[0] * float(coefficients[0])
    for q in range(1, len(system)):
        objective = objective + p[q] * float(coefficients[q])
    model.minimize(objective)
    solution = model.solve()

    weights = [max(solution.value(variable), 0.0) for variable in p]
    strategy = AccessStrategy.from_weights(system, weights)
    return DelayOptimalStrategy(
        strategy=strategy,
        delay=float(solution.objective),
        load_budget=budget,
        max_load=strategy.max_load(),
    )


def strategy_delay_frontier(
    placement: Placement,
    budgets: list[float],
    *,
    source: Node | None = None,
) -> list[DelayOptimalStrategy]:
    """The delay/load Pareto frontier of a fixed placement.

    Solves :func:`delay_optimal_strategy` for each budget; infeasible
    budgets (below the system load) are skipped.
    """
    from ..exceptions import InfeasibleError

    frontier = []
    for budget in budgets:
        try:
            frontier.append(
                delay_optimal_strategy(placement, load_budget=budget, source=source)
            )
        except InfeasibleError:
            continue
    return frontier


def alternating_optimization(
    placement: Placement,
    strategy: AccessStrategy,
    source: Node,
    *,
    load_budget: float,
    rounds: int = 3,
    alpha: float = 2.0,
) -> tuple[Placement, AccessStrategy, float]:
    """Alternately re-place (Theorem 3.7) and re-weight (strategy LP).

    Returns the final ``(placement, strategy, single-source delay)``.
    Every accepted step is non-increasing in ``Delta_f(v0)``; a step that
    fails to improve stops the loop early.
    """
    check_integer_in_range(rounds, "rounds", low=1)
    network = placement.network
    system = placement.system
    current_placement = placement
    current_strategy = strategy
    from .placement import expected_max_delay

    best = expected_max_delay(current_placement, current_strategy, source)
    for _ in range(rounds):
        improved = False
        # Re-weight the strategy for the current placement.
        reweighted = delay_optimal_strategy(
            current_placement, load_budget=load_budget, source=source
        )
        if reweighted.delay < best - 1e-12:
            current_strategy = reweighted.strategy
            best = reweighted.delay
            improved = True
        # Re-place for the current strategy.
        replaced = solve_ssqpp(
            system, current_strategy, network=network, source=source, alpha=alpha
        )
        if replaced.delay < best - 1e-12:
            current_placement = replaced.placement
            best = replaced.delay
            improved = True
        if not improved:
            break
    return current_placement, current_strategy, best
