"""Vectorized array kernels behind the delay/load evaluators.

The public evaluators in :mod:`repro.core.placement` are thin wrappers
around these kernels: every quantity of Section 1.2 is expressed as a
handful of dense ``numpy`` operations over the cached all-pairs distance
matrix, with the scalar paper-faithful loops retained in ``placement``
as ``*_reference`` oracles.  The equivalence test layer
(``tests/test_kernels_equivalence.py``) proves kernel and oracle agree
to 1e-12 across random instances, including ``inf`` (disconnected) and
zero-rate edge cases.

Every kernel works on plain arrays — distance matrix, image node
indices, padded quorum member rows — so the same code serves
placements, candidate sweeps, and benchmarks without rebuilding
``Placement`` objects.  See ``docs/performance.md`` for the design and
memory notes.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np
from numpy.typing import NDArray

from .._validation import contract, cost, require
from ..quorums.base import QuorumSystem

__all__ = [
    "quorum_member_matrix",
    "expected_max_delays",
    "expected_total_delays",
    "node_load_vector",
    "capacity_factors",
    "max_capacity_factor",
]

#: Cap on the ``clients x quorums x members`` intermediate of
#: :func:`expected_max_delays`; larger workloads are processed in quorum
#: chunks so memory stays bounded (see docs/performance.md).
_MAX_BLOCK_ELEMENTS = 1 << 22


@contract(returns={"shape": ("s", "L"), "dtype": "int"})
@cost("n * q")
def quorum_member_matrix(
    system: QuorumSystem, quorum_indices: Sequence[int]
) -> NDArray[np.intp]:
    """Padded element-index rows for the selected quorums.

    Row ``i`` lists the universe indices of the members of quorum
    ``quorum_indices[i]``, padded on the right with the row's first
    member so every row has equal width — padding repeats a real member,
    which leaves max-reductions unchanged.

    Returns an integer array of shape ``(len(quorum_indices), L_max)``.
    """
    require(isinstance(system, QuorumSystem), "system must be a QuorumSystem")
    indices = [int(q) for q in quorum_indices]
    require(len(indices) > 0, "at least one quorum index is required")
    rows: list[list[int]] = []
    for q in indices:
        require(0 <= q < len(system), f"quorum index {q} out of range [0, {len(system)})")
        rows.append(sorted(system.element_index(u) for u in system.quorums[q]))
    width = max(len(row) for row in rows)
    members = np.empty((len(rows), width), dtype=np.intp)
    for i, row in enumerate(rows):
        members[i, : len(row)] = row
        members[i, len(row) :] = row[0]
    return members


@contract(
    shapes={
        "matrix": ("c", "n"),
        "image_indices": ("U",),
        "members": ("s", "L"),
        "probabilities": ("s",),
    },
    dtypes={
        "matrix": "float",
        "image_indices": "int",
        "members": "int",
        "probabilities": "float",
    },
    simplex=("probabilities",),
    returns={"shape": ("c",), "dtype": "float"},
)
@cost("n * q")
def expected_max_delays(
    matrix: NDArray[np.float64],
    image_indices: NDArray[np.intp],
    members: NDArray[np.intp],
    probabilities: NDArray[np.float64],
) -> NDArray[np.float64]:
    """``Delta_f(v)`` for every client ``v`` (equation (2)), batched.

    Parameters
    ----------
    matrix:
        ``(c, n)`` distance rows, one per evaluated client, columns in
        node-index order — the full all-pairs matrix for every client,
        or any row slice of it (``inf`` marks unreachable pairs and
        propagates through the max-reduction).
    image_indices:
        ``(U,)`` node index of ``f(u)`` per universe element.
    members:
        ``(s, L)`` padded member rows from :func:`quorum_member_matrix`,
        one row per supported quorum.
    probabilities:
        ``(s,)`` strictly positive access probabilities aligned with the
        member rows (the strategy's support).
    """
    require(np.ndim(matrix) == 2, "matrix must be 2-d (clients x nodes)")
    matrix = np.asarray(matrix, dtype=float)
    image_indices = np.asarray(image_indices, dtype=np.intp)
    members = np.asarray(members, dtype=np.intp)
    probabilities = np.asarray(probabilities, dtype=float)
    require(members.ndim == 2, "members must be a 2-d index array")
    require(probabilities.shape == (members.shape[0],),
            "need one probability per member row")
    n = matrix.shape[0]
    # d(v, f(u)) for every client v and universe element u.
    placed = matrix[:, image_indices]
    result = np.zeros(n)
    chunk = max(1, _MAX_BLOCK_ELEMENTS // max(1, n * members.shape[1]))
    for start in range(0, members.shape[0], chunk):
        block = members[start : start + chunk]
        # (n, b, L) -> max over members -> (n, b) -> probability-weighted sum.
        delta = placed[:, block].max(axis=2)
        result += delta @ probabilities[start : start + chunk]
    return result


@contract(
    shapes={"matrix": ("c", "n"), "image_indices": ("U",), "loads": ("U",)},
    dtypes={"matrix": "float", "image_indices": "int", "loads": "float"},
    nonnegative=("loads",),
    returns={"shape": ("c",), "dtype": "float"},
)
@cost("n * q")
def expected_total_delays(
    matrix: NDArray[np.float64],
    image_indices: NDArray[np.intp],
    loads: NDArray[np.float64],
) -> NDArray[np.float64]:
    """``Gamma_f(v)`` for every client ``v`` via the identity
    ``Gamma_f(v) = sum_u load(u) d(v, f(u))`` (Section 5).

    *matrix* follows the :func:`expected_max_delays` convention: one
    distance row per evaluated client, columns in node-index order.
    """
    require(np.ndim(matrix) == 2, "matrix must be 2-d (clients x nodes)")
    matrix = np.asarray(matrix, dtype=float)
    image_indices = np.asarray(image_indices, dtype=np.intp)
    loads = np.asarray(loads, dtype=float)
    require(loads.shape == image_indices.shape,
            "need one load per placed universe element")
    return matrix[:, image_indices] @ loads


@contract(
    shapes={"image_indices": ("U",), "loads": ("U",)},
    dtypes={"image_indices": "int", "loads": "float"},
    nonnegative=("loads",),
    returns={"shape": ("n",), "dtype": "float", "nonnegative": True},
)
@cost("n * q")
def node_load_vector(
    image_indices: NDArray[np.intp], loads: NDArray[np.float64], size: int
) -> NDArray[np.float64]:
    """``load_f(v)`` per node index: element loads scattered onto their
    image nodes (zero where nothing is placed)."""
    require(np.ndim(image_indices) == 1, "image_indices must be 1-d")
    image_indices = np.asarray(image_indices, dtype=np.intp)
    loads = np.asarray(loads, dtype=float)
    require(loads.shape == image_indices.shape,
            "need one load per placed universe element")
    require(size >= 1, "size must be at least 1")
    if image_indices.size:
        require(int(image_indices.min()) >= 0 and int(image_indices.max()) < size,
                "image node indices out of range")
    return np.bincount(image_indices, weights=loads, minlength=size)


@contract(
    shapes={"load_vector": ("n",), "capacities": ("n",)},
    dtypes={"load_vector": "float", "capacities": "float"},
    nonnegative=("load_vector",),
    returns={"shape": ("n",), "dtype": "float", "nonnegative": True},
)
@cost("n * q")
def capacity_factors(
    load_vector: NDArray[np.float64], capacities: NDArray[np.float64]
) -> NDArray[np.float64]:
    """Per-node ``load_f(v) / cap(v)``: zero for unloaded nodes, ``inf``
    when a zero-capacity node carries positive load."""
    require(np.ndim(load_vector) == 1, "load_vector must be 1-d")
    load_vector = np.asarray(load_vector, dtype=float)
    capacities = np.asarray(capacities, dtype=float)
    require(load_vector.shape == capacities.shape,
            "need one capacity per node load")
    loaded = load_vector > 0
    factors = np.zeros_like(load_vector)
    with np.errstate(divide="ignore"):
        factors[loaded] = load_vector[loaded] / capacities[loaded]
    return factors


@contract(
    shapes={"load_vector": ("n",), "capacities": ("n",)},
    dtypes={"load_vector": "float", "capacities": "float"},
    nonnegative=("load_vector",),
)
@cost("n * q")
def max_capacity_factor(
    load_vector: NDArray[np.float64], capacities: NDArray[np.float64]
) -> float:
    """The largest ``load_f(v)/cap(v)`` over loaded nodes (0.0 when no
    node carries load) — the quantity Theorem 1.2 bounds by ``alpha+1``."""
    factors = capacity_factors(load_vector, capacities)
    return float(factors.max()) if factors.size else 0.0
