"""The Quorum Placement Problem (Problem 1.1) via the single-source
reduction (Theorem 3.3), giving the paper's main result, Theorem 1.2.

Algorithm
---------
Lemma 3.1 guarantees some node ``v0`` for which the "relay-via-v0"
strategy costs at most 5x the optimum; Theorem 3.3 turns any
``beta``-approximate single-source solution at that ``v0`` into a
``5 beta``-approximation for QPP.  Since ``v0`` is unknown, the paper
prescribes running the single-source algorithm from *every* node and
keeping the best placement — which is what :func:`solve_qpp` does
(optionally over a restricted candidate set for speed).

The returned result also carries a *certified lower bound* on the QPP
optimum: by the proof of Theorem 3.3, for the (unknown) right relay node

    Avg_v d(v, v0) + Z*(v0) <= Avg_v d(v, v0) + Delta_{f*}(v0) <= 5 OPT,

so ``min over candidates of (Avg_v d(v, v0) + Z*(v0)) / 5 <= OPT``.  The
benchmarks use it to report honest measured-vs-optimal ratios when
exhaustive search is out of reach.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Any, ClassVar

import numpy as np

from .._compat import solver_api
from .._results import Provenance, SolveResult
from .._validation import (
    check_integer_in_range,
    check_positive,
    check_scale,
    cost,
    effects,
    raises,
    require,
)
from ..network.graph import Network, Node
from ..network.lazymetric import LandmarkOracle
from ..obs.metrics import counter, telemetry_scope
from ..obs.trace import span
from ..parallel import parallel_map
from ..resilience import fault_point
from ..quorums.base import QuorumSystem
from ..quorums.strategy import AccessStrategy
from .placement import (
    Placement,
    _client_weights,
    average_max_delay,
    average_max_delay_bounds,
    average_max_delay_via_sources,
)
from .ssqpp import SSQPPLPFactory, SSQPPResult, solve_ssqpp

__all__ = ["QPPResult", "solve_qpp", "average_strategy", "warm_candidates"]


@dataclass(frozen=True)
class QPPResult(SolveResult):
    """Output of :func:`solve_qpp` (a :class:`~repro._results.SolveResult`).

    ``objective`` is the realized QPP objective ``Avg_v Delta_f(v)`` and
    ``load_violation_factor`` the realized worst ``load_f(v)/cap(v)``;
    the pre-unification name ``average_delay`` still resolves but emits
    a :class:`FutureWarning` (removal scheduled for the next major
    release).

    Attributes
    ----------
    source:
        The relay candidate whose single-source solution won.
    alpha:
        The load/delay trade-off parameter forwarded to the single-source
        solver.
    approximation_factor:
        The proven factor ``5 * alpha / (alpha - 1)`` of Theorem 1.2.
    load_factor_bound:
        The proven load bound ``alpha + 1`` (Theorem 1.2).
    optimum_lower_bound:
        A certified lower bound on the optimal capacity-respecting
        average delay (see module docstring).
    per_source:
        The single-source result obtained from every candidate source,
        keyed by source node (useful for diagnostics and ablations).
    """

    source: Node
    alpha: float
    approximation_factor: float
    load_factor_bound: float
    optimum_lower_bound: float
    per_source: dict[Node, SSQPPResult]

    _legacy_aliases: ClassVar[Mapping[str, str]] = {"average_delay": "objective"}

    @property
    def certified_ratio(self) -> float:
        """``objective / optimum_lower_bound`` — an upper bound on the
        realized approximation ratio (infinite when the bound is zero
        while the delay is positive)."""
        if self.optimum_lower_bound > 0:
            return self.objective / self.optimum_lower_bound
        return 0.0 if self.objective == 0 else float("inf")


# paper: Thm 3.3
@effects("reads-global", "writes-metrics")
def _qpp_candidate_worker(
    source: Node,
    *,
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    alpha: float,
    lp_method: str,
    formulation: str,
) -> SSQPPResult:
    """Solve one relay candidate in isolation (the process-pool worker).

    Unlike the serial sweep, each worker builds its own LP factory: the
    shared-factory optimization assumes sequential attach/release on one
    mutable LP base, which processes cannot share.  The factory's
    checkpoint/rollback contract makes a fresh base bitwise-equivalent
    to a rolled-back shared one, so the sweep's results do not depend on
    which path ran (test-asserted).  Declared effects cover callees the
    static analysis cannot see through method calls (the LP solve
    counters, the network metric cache).
    """
    return solve_ssqpp(
        system,
        strategy,
        network=network,
        source=source,
        alpha=alpha,
        lp_method=lp_method,
        formulation=formulation,
    )


# paper: Thm 1.2, Thm 3.3, §3
@solver_api(legacy_positional=("network",))
@cost("n**2 * q * c")
@raises("ParallelSafetyError", "ValidationError", transient=("SolverError",))
def solve_qpp(
    system: QuorumSystem,
    strategy: AccessStrategy,
    *,
    network: Network,
    alpha: float = 2.0,
    candidate_sources: Sequence[Node] | None = None,
    rates: Mapping[Node, float] | None = None,
    lp_method: str = "highs",
    formulation: str = "prefix",
    parallel: str | None = None,
    certificate: Mapping[str, Any] | str | Path | None = None,
    max_workers: int | None = None,
    scale: str | None = None,
    landmarks: int = 16,
    horizon: int | str | None = "auto",
    prune: bool = True,
) -> QPPResult:
    """Solve the Quorum Placement Problem (Theorem 1.2).

    Runs :func:`repro.core.ssqpp.solve_ssqpp` from every candidate source
    and returns the placement with the smallest realized average
    max-delay.  The placement satisfies
    ``load_f(v) <= (alpha + 1) cap(v)`` and
    ``Avg_v Delta_f(v) <= 5 alpha/(alpha-1) * OPT``.

    Parameters
    ----------
    candidate_sources:
        Restrict the relay-candidate sweep (default: all nodes).  The
        Theorem 1.2 guarantee formally needs all nodes; a restricted sweep
        retains the load bound and the certified lower bound but may lose
        the delay guarantee.
    rates:
        Optional per-client access rates (§6 extension); both the
        objective and the lower bound become rate-weighted averages.
    parallel:
        ``"process"`` fans the candidate sweep out across a process pool
        via :func:`repro.parallel.parallel_map`, gated on the
        parallel-safety *certificate*; ``None`` (default) sweeps
        serially with a shared LP factory.  Results are identical either
        way — only the telemetry attribution differs (child-process
        counter increments stay in the children).
    certificate:
        Parallel-safety certificate for the pooled sweep: a parsed
        document, a path to one, or ``None`` to consult
        ``$REPRO_PARALLEL_CERTIFICATE``.  Generate with ``repro lint
        --effects --certificate out.json``.  Without a valid certificate
        covering the worker, ``parallel="process"`` refuses
        (:class:`~repro.exceptions.ParallelSafetyError`).
    max_workers:
        Pool size for ``parallel="process"`` (default: executor choice).
    scale:
        ``None`` or ``"dense"`` (equivalent) run the classic sweep over
        the dense cached metric.  ``"large"`` switches to the lazy-metric
        sweep: distances come from :meth:`Network.lazy_metric` (rows on
        demand, never an ``n x n`` matrix), candidates default to a
        farthest-point landmark set, each single-source LP is restricted
        to a capacity-adaptive prefix of nodes near the source, and
        oracle bounds prune the exact evaluation of hopeless candidates.
    landmarks:
        Landmark count for the ``scale="large"`` oracle (and the default
        candidate set).  Ignored otherwise.
    horizon:
        ``scale="large"`` placement-domain control: ``"auto"`` sizes a
        capacity-adaptive prefix per candidate, an integer fixes the
        prefix length, ``None`` keeps the full domain (exact but slow).
        Restricting the domain voids the certified lower bound — the
        result then reports ``optimum_lower_bound = 0.0``.
    prune:
        In ``scale="large"``, skip exact evaluation of a candidate whose
        oracle *lower* bound already matches or exceeds the incumbent.
        Never changes the returned placement, objective, or source
        (test-asserted); set ``False`` to force every exact evaluation.
    """
    check_positive(alpha - 1.0, "alpha - 1")
    require(
        parallel in (None, "process"),
        f"parallel must be None or 'process', got {parallel!r}",
    )
    check_scale(scale)
    require(
        horizon is None or horizon == "auto"
        or (isinstance(horizon, int) and not isinstance(horizon, bool) and horizon >= 1),
        f"horizon must be None, 'auto' or a positive int, got {horizon!r}",
    )
    if scale == "large":
        require(
            parallel is None,
            "scale='large' sweeps serially over the shared lazy metric; "
            "parallel='process' is not supported",
        )
        return _solve_qpp_large(
            system,
            strategy,
            network=network,
            alpha=alpha,
            candidate_sources=candidate_sources,
            rates=rates,
            lp_method=lp_method,
            formulation=formulation,
            landmarks=landmarks,
            horizon=horizon,
            prune=prune,
        )
    candidates = list(candidate_sources) if candidate_sources is not None else list(network.nodes)
    require(len(candidates) > 0, "at least one candidate source is required")
    # Dedupe while preserving order: repeated candidates would waste
    # solves and make per_source diagnostics ambiguous.
    candidates = list(dict.fromkeys(candidates))
    for node in candidates:
        network.node_index(node)

    metric = network.metric()
    weights = _client_weights(network, rates)

    best: SSQPPResult | None = None
    best_delay = float("inf")
    best_source: Node | None = None
    lower_bound = float("inf")
    per_source: dict[Node, SSQPPResult] = {}

    with telemetry_scope() as telemetry, span(
        "qpp.sweep", candidates=len(candidates), alpha=alpha
    ):
        if parallel == "process":
            worker = partial(
                _qpp_candidate_worker,
                system=system,
                strategy=strategy,
                network=network,
                alpha=alpha,
                lp_method=lp_method,
                formulation=formulation,
            )
            results = parallel_map(
                worker,
                candidates,
                certificate=certificate,
                max_workers=max_workers,
            )
        else:
            # One shared LP base (variables, assignment and capacity
            # rows) for the whole sweep; each solve_ssqpp call attaches
            # only the source-dependent structure and rolls it back
            # afterwards.
            factory = SSQPPLPFactory(
                system, strategy, network, formulation=formulation
            )
            results = []
            for source in candidates:
                with span("qpp.candidate", source=source):
                    fault_point("qpp.candidate")
                    results.append(
                        solve_ssqpp(
                            system,
                            strategy,
                            network=network,
                            source=source,
                            alpha=alpha,
                            lp_method=lp_method,
                            formulation=formulation,
                            factory=factory,
                        )
                    )
        # Selection is shared between both sweep modes and iterates in
        # candidate order, so serial and pooled runs reduce the same
        # per-candidate results with the same float arithmetic.
        for source, result in zip(candidates, results):
            per_source[source] = result
            to_source = float(weights @ metric.distances_from(source))
            lower_bound = min(lower_bound, (to_source + result.lp_value) / 5.0)
            realized = average_max_delay(result.placement, strategy, rates=rates)
            if realized < best_delay:
                best_delay = realized
                best = result
                best_source = source

    assert best is not None and best_source is not None
    return QPPResult(
        placement=best.placement,
        objective=best_delay,
        load_violation_factor=best.max_load_factor,
        provenance=Provenance.of(
            "qpp.relay-sweep", "Thm 1.2", alpha=alpha, formulation=formulation
        ),
        source=best_source,
        alpha=alpha,
        approximation_factor=5.0 * alpha / (alpha - 1.0),
        load_factor_bound=alpha + 1.0,
        optimum_lower_bound=lower_bound,
        per_source=per_source,
        telemetry=telemetry.snapshot,
    )


#: Minimum prefix length of the ``horizon="auto"`` placement domain.
_HORIZON_FLOOR = 32

#: ``horizon="auto"`` grows the prefix until its cumulative capacity
#: reaches this multiple of ``(alpha + 1) * total_load`` — generous
#: headroom over the Theorem 1.2 load bound, so the restricted LP is
#: never starved for capacity.
_HORIZON_CAPACITY_FACTOR = 4.0


def _capacity_prefix_domain(
    network: Network,
    ordered: Sequence[Node],
    *,
    alpha: float,
    total_load: float,
    max_load: float,
    horizon: int | str | None,
) -> list[Node] | None:
    """The restricted placement domain for one candidate source.

    *ordered* is every node sorted by distance from the source.  Returns
    ``None`` for ``horizon=None`` (unrestricted); otherwise a prefix —
    fixed-length for an integer horizon, capacity-adaptive for
    ``"auto"`` — patched, if necessary, with the nearest node able to
    host the heaviest element so the restricted LP stays feasible
    whenever the unrestricted one is.
    """
    if horizon is None:
        return None
    n = len(ordered)
    if isinstance(horizon, int):
        cut = min(horizon, n)
    else:
        cut = min(_HORIZON_FLOOR, n)
        target = _HORIZON_CAPACITY_FACTOR * (alpha + 1.0) * total_load
        cumulative = sum(network.capacity(node) for node in ordered[:cut])
        while cut < n and cumulative < target:
            cumulative += network.capacity(ordered[cut])
            cut += 1
    domain = list(ordered[:cut])
    if not any(network.capacity(node) + 1e-12 >= max_load for node in domain):
        for node in ordered[cut:]:
            if network.capacity(node) + 1e-12 >= max_load:
                domain.append(node)
                break
    return domain


# paper: Thm 1.2, Thm 3.3, §3
@cost("n**2 * q * c", scale="large")
@effects("reads-global", "writes-metrics")
def _solve_qpp_large(
    system: QuorumSystem,
    strategy: AccessStrategy,
    *,
    network: Network,
    alpha: float,
    candidate_sources: Sequence[Node] | None,
    rates: Mapping[Node, float] | None,
    lp_method: str,
    formulation: str,
    landmarks: int,
    horizon: int | str | None,
    prune: bool,
) -> QPPResult:
    """The ``scale="large"`` sweep behind :func:`solve_qpp`.

    Identical selection semantics to the dense sweep — candidates in
    order, strict ``<`` updates — but every distance flows through the
    network's shared :class:`~repro.network.lazymetric.LazyMetric`, so
    no ``n x n`` matrix is ever materialized.  Exact candidate values
    come from :func:`average_max_delay_via_sources` (``O(|image|)`` row
    pulls; matches the dense evaluator up to metric-symmetry ulp).
    Three scale levers:

    1. **Candidates** default to a greedy farthest-point landmark set
       (``landmarks`` of them) instead of all ``n`` nodes.
    2. **Horizon** restricts each candidate's LP to nodes near the
       source (see :func:`_capacity_prefix_domain`).  Restriction voids
       the Theorem 3.3 certificate: the restricted LP optimum
       upper-bounds the true ``Z*``, so the result reports
       ``optimum_lower_bound = 0.0`` whenever any domain was restricted.
    3. **Pruning** skips the exact streamed evaluation of a candidate
       whose oracle lower bound already reaches the incumbent — sound
       because the exact value can only be larger, so the strict ``<``
       selection could not have switched to it anyway.
    """
    view = network.lazy_metric()
    k = max(1, min(int(landmarks), network.size))
    oracle = LandmarkOracle.build(view, k)
    if candidate_sources is not None:
        candidates = list(dict.fromkeys(candidate_sources))
    else:
        candidates = list(oracle.landmarks)
    require(len(candidates) > 0, "at least one candidate source is required")
    for node in candidates:
        network.node_index(node)
    weights = _client_weights(network, rates)
    loads = strategy.load_array()
    total_load = float(loads.sum())
    max_load = float(loads.max()) if loads.size else 0.0

    pruned = counter("qpp.prune.skipped")
    evaluated = counter("qpp.prune.evaluated")

    best: SSQPPResult | None = None
    best_delay = float("inf")
    best_source: Node | None = None
    lower_bound = float("inf")
    restricted = False
    per_source: dict[Node, SSQPPResult] = {}

    with telemetry_scope() as telemetry, span(
        "qpp.sweep.large",
        candidates=len(candidates),
        alpha=alpha,
        landmarks=k,
    ):
        for source in candidates:
            ordered = view.nodes_by_distance(source)
            domain = _capacity_prefix_domain(
                network,
                ordered,
                alpha=alpha,
                total_load=total_load,
                max_load=max_load,
                horizon=horizon,
            )
            with span(
                "qpp.candidate",
                source=source,
                domain=network.size if domain is None else len(domain),
            ):
                fault_point("qpp.candidate")
                result = solve_ssqpp(
                    system,
                    strategy,
                    network=network,
                    source=source,
                    alpha=alpha,
                    lp_method=lp_method,
                    formulation=formulation,
                    metric=view,
                    placement_nodes=domain,
                )
            per_source[source] = result
            if domain is None:
                to_source = float(weights @ view.distances_from(source))
                lower_bound = min(lower_bound, (to_source + result.lp_value) / 5.0)
            else:
                restricted = True
            if prune and best is not None:
                bound_low, _ = average_max_delay_bounds(
                    result.placement, strategy, oracle, rates=rates
                )
                if bound_low >= best_delay:
                    pruned.inc()
                    continue
            evaluated.inc()
            realized = average_max_delay_via_sources(
                result.placement, strategy, view, rates=rates
            )
            if realized < best_delay:
                best_delay = realized
                best = result
                best_source = source

    assert best is not None and best_source is not None
    if restricted or lower_bound == float("inf"):
        lower_bound = 0.0
    return QPPResult(
        placement=best.placement,
        objective=best_delay,
        load_violation_factor=best.max_load_factor,
        provenance=Provenance.of(
            "qpp.relay-sweep-large",
            "Thm 1.2",
            alpha=alpha,
            formulation=formulation,
            landmarks=k,
            horizon=horizon,
        ),
        source=best_source,
        alpha=alpha,
        approximation_factor=5.0 * alpha / (alpha - 1.0),
        load_factor_bound=alpha + 1.0,
        optimum_lower_bound=lower_bound,
        per_source=per_source,
        telemetry=telemetry.snapshot,
    )


def warm_candidates(previous: QPPResult, *, limit: int = 8) -> list[Node]:
    """Candidate sources for an incremental re-solve, best-first.

    The relay-sweep structure is what makes QPP re-solves incremental:
    when the access distribution drifts, the best relay node rarely
    jumps far, so re-running :func:`solve_qpp` over the most promising
    relays of the *previous* solve (its winner first, then the other
    swept candidates ordered by their single-source delay at the relay)
    recovers near-identical quality at a fraction of the sweep cost.
    The serving layer (:mod:`repro.serve`) passes the returned list as
    ``candidate_sources=`` on drift-triggered re-solves.

    Note the usual restricted-sweep caveat (see ``candidate_sources``
    above): the Theorem 1.2 guarantee is relative to the best candidate
    *in the list*, so a warm re-solve trades the exhaustive-sweep bound
    for speed.
    """
    check_integer_in_range(limit, "limit", low=1)
    require(
        len(previous.per_source) > 0,
        "previous result carries no per-source diagnostics to warm from",
    )
    ranked = sorted(
        previous.per_source,
        key=lambda node: (node != previous.source, previous.per_source[node].delay),
    )
    return ranked[:limit]


def average_strategy(
    per_client: Mapping[Node, AccessStrategy],
    network: Network,
    *,
    rates: Mapping[Node, float] | None = None,
) -> AccessStrategy:
    """The §6 reduction for per-client access strategies.

    When each client ``v`` uses its own strategy ``p_v``, assigning every
    client the (rate-weighted) average strategy preserves the average
    delay analysis of Lemma 3.1; the placement algorithms can then run
    unchanged on the averaged strategy.
    """
    missing = [v for v in network.nodes if v not in per_client]
    require(not missing, f"missing strategies for clients {missing[:5]!r}")
    weights = _client_weights(network, rates)
    strategies = [per_client[v] for v in network.nodes]
    return AccessStrategy.mixture(strategies, list(np.asarray(weights)))
