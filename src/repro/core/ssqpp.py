"""The Single-Source Quorum Placement Problem (Problem 3.2) and the
LP-rounding algorithm of Section 3.3 (Theorems 3.7 and 3.12).

Given a quorum system ``Q`` with access strategy ``p0``, a network with a
distinguished source ``v0``, and per-node capacities, find a placement
minimizing ``Delta_f(v0)`` subject to ``load_f(v) <= cap(v)``.  The
problem is NP-hard (Theorem 3.6, see :mod:`repro.core.hardness`); the
algorithm here is the paper's bicriteria approximation:

1. **LP.**  Solve the relaxation (9)-(14): variables ``x_tu`` ("element
   ``u`` sits on the ``t``-th closest node to ``v0``") and ``x_tQ``
   ("quorum ``Q`` is fully contained in the ``t`` closest nodes"), with
   assignment, capacity and prefix-consistency constraints.
2. **Filtering** (Claim 3.8 / Lemma 3.9, generalized to ``alpha``).
   Scale each element's fractional assignment by ``alpha`` and truncate
   the cumulative mass at 1 — "moving mass toward the source" — so that
   any node still fractionally carrying ``u`` satisfies
   ``d_t <= alpha/(alpha-1) * D_Q`` for every quorum ``Q`` containing
   ``u``.
3. **GAP rounding** (Theorem 3.11).  Interpret the filtered solution as
   a fractional Generalized Assignment: jobs = elements, machines =
   nodes, load = ``load(u)``, cost = ``d_t``, machine budget
   ``alpha * cap(v_t)``.  Shmoys-Tardos rounding yields an integral
   placement with cost (delay) at most the fractional cost and load at
   most ``alpha*cap + max-allowed-load <= (alpha+1) * cap``.

The result object reports both the realized quantities and the proven
bounds, so callers (and benchmarks) can check Theorem 3.7 mechanically:
``Delta_f(v0) <= alpha/(alpha-1) * Z*`` and
``load_f(v) <= (alpha+1) * cap(v)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .._compat import solver_api
from .._validation import check_positive, check_scale, cost, raises, require
from ..exceptions import InfeasibleError, ValidationError
from ..obs.trace import span
from ..gap.instance import GAPInstance
from ..gap.lp import FractionalAssignment
from ..gap.rounding import round_fractional_assignment
from ..lp import Model
from ..network.graph import Network, Node
from ..quorums.base import Element, QuorumSystem
from ..quorums.strategy import AccessStrategy
from .placement import Placement, expected_max_delay, node_loads

__all__ = ["SSQPPResult", "SSQPPLPFactory", "solve_ssqpp", "build_ssqpp_lp"]

_ZERO = 1e-12


@dataclass(frozen=True)
class SSQPPResult:
    """Output of :func:`solve_ssqpp`.

    Attributes
    ----------
    placement:
        The integral placement ``f``.
    delay:
        The realized objective ``Delta_f(v0)``.
    lp_value:
        ``Z*``, the LP optimum — a lower bound on the delay of every
        capacity-respecting placement.
    alpha:
        The trade-off parameter used.
    delay_bound:
        The proven guarantee ``alpha/(alpha-1) * Z*``; always
        ``delay <= delay_bound`` (up to numerical tolerance).
    load_factor_bound:
        ``alpha + 1``: the proven per-node capacity violation cap.
    max_load_factor:
        The realized worst ``load_f(v)/cap(v)``.
    source:
        The source node ``v0``.
    """

    placement: Placement
    delay: float
    lp_value: float
    alpha: float
    delay_bound: float
    load_factor_bound: float
    max_load_factor: float
    source: Node

    @property
    def within_guarantees(self) -> bool:
        """Whether both Theorem 3.7 bounds hold for the realized solution."""
        return (
            self.delay <= self.delay_bound + 1e-6
            and self.max_load_factor <= self.load_factor_bound + 1e-6
        )


def _supported_quorums(strategy: AccessStrategy) -> list[int]:
    return list(strategy.support())


class SSQPPLPFactory:
    """Shared LP scaffolding for the relaxation (9)-(14).

    The LP splits into a part that does not depend on the source ``v0``
    — the assignment variables ("element ``u`` sits on node ``v``"), the
    placement rows (10), and the capacity rows (12)/(13) — and a part
    that does: the quorum-completion variables over the distance
    ordering, the prefix-consistency rows (14), and the objective (9).
    The factory builds the v0-independent base exactly once; each call
    to :meth:`attach` adds only the delay-dependent structure for one
    candidate source on top of a :class:`repro.lp.ModelCheckpoint`, and
    :meth:`release` rolls the model back so the next candidate reuses
    the base.  This turns :func:`repro.core.qpp.solve_qpp`'s sweep from
    a quadratic rebuild into an incremental re-fill.

    One factory serves one ``(system, strategy, network, formulation)``
    combination; at most one source can be attached at a time.

    Two large-scale knobs widen the constructor without changing any
    default behaviour:

    * ``metric`` — any :class:`~repro.network.lazymetric.MetricView`
      (e.g. a :class:`~repro.network.lazymetric.LazyMetric`) to use for
      the distance ordering instead of forcing the dense cached build.
    * ``placement_nodes`` — restrict the placement domain (and the LP's
      variables, capacity rows and distance ranks) to a subset of the
      network.  The LP then solves the *restricted* problem: its optimum
      upper-bounds the unrestricted ``Z*``, so certified lower bounds
      derived from it are void — callers must not propagate them.
    """

    def __init__(
        self,
        system: QuorumSystem,
        strategy: AccessStrategy,
        network: Network,
        *,
        formulation: str = "prefix",
        metric: "object | None" = None,
        placement_nodes: "list[Node] | tuple[Node, ...] | None" = None,
    ) -> None:
        if formulation not in ("prefix", "cumulative"):
            raise ValidationError(
                f"unknown formulation {formulation!r}; use 'prefix' or 'cumulative'"
            )
        require(strategy.system == system, "strategy does not match the quorum system")
        self._system = system
        self._strategy = strategy
        self._network = network
        self._formulation = formulation
        self._explicit_metric = metric
        self._metric = metric if metric is not None else network.metric()
        if placement_nodes is None:
            self._domain: tuple[Node, ...] | None = None
            domain_nodes: tuple[Node, ...] = network.nodes
        else:
            self._domain = tuple(placement_nodes)
            if not self._domain:
                raise ValidationError("placement_nodes must not be empty")
            if len(set(self._domain)) != len(self._domain):
                raise ValidationError("placement_nodes contains duplicates")
            for node in self._domain:
                network.node_index(node)
            domain_nodes = self._domain
        self._support = _supported_quorums(strategy)
        universe = system.universe
        self._loads = {u: strategy.load(u) for u in universe}

        capacities = {node: network.capacity(node) for node in domain_nodes}
        for u in universe:
            if self._loads[u] > _ZERO and not any(
                self._loads[u] <= cap + _ZERO for cap in capacities.values()
            ):
                raise InfeasibleError(
                    f"element {u!r} has load {self._loads[u]:.4f} exceeding "
                    "every node capacity"
                )

        model = Model(name="ssqpp-lp")
        # Assignment variables keyed by *node* (not by distance rank), so
        # they are shared by every candidate source.  Pairs with
        # load(u) > cap(v) are fixed to zero by constraint (13), i.e.
        # simply omitted.
        self._x_by_node: dict[tuple[Node, Element], object] = {}
        element_vars: dict[Element, list] = {u: [] for u in universe}
        for node in domain_nodes:
            cap = capacities[node]
            for u in universe:
                if self._loads[u] <= cap + _ZERO:
                    variable = model.variable(f"x[{node!r},{u!r}]", lb=0.0, ub=1.0)
                    self._x_by_node[(node, u)] = variable
                    element_vars[u].append(variable)

        # (10): every element placed exactly once.
        for u in universe:
            terms = element_vars[u]
            if not terms:
                raise InfeasibleError(f"element {u!r} fits on no node")
            expr = terms[0].to_expr()
            for variable in terms[1:]:
                expr = expr + variable
            model.add_constraint(expr == 1, name=f"place[{u!r}]")

        # (12): fractional load within capacity (vacuous for uncapacitated
        # nodes, so those constraints are omitted).
        for node in domain_nodes:
            if not math.isfinite(capacities[node]):
                continue
            terms = [
                (self._x_by_node[(node, u)], self._loads[u])
                for u in universe
                if (node, u) in self._x_by_node and self._loads[u] > 0
            ]
            if not terms:
                continue
            expr = terms[0][0] * terms[0][1]
            for variable, coefficient in terms[1:]:
                expr = expr + variable * coefficient
            model.add_constraint(expr <= capacities[node], name=f"cap[{node!r}]")

        self._model = model
        self._base = model.checkpoint()
        self._attached = False

    # -- accessors -----------------------------------------------------------------

    @property
    def system(self) -> QuorumSystem:
        return self._system

    @property
    def strategy(self) -> AccessStrategy:
        return self._strategy

    @property
    def network(self) -> Network:
        return self._network

    @property
    def formulation(self) -> str:
        return self._formulation

    @property
    def model(self) -> Model:
        """The underlying (shared) model; solve only while attached."""
        return self._model

    @property
    def placement_nodes(self) -> tuple[Node, ...] | None:
        """The restricted placement domain, or ``None`` for the whole network."""
        return self._domain

    def matches(
        self,
        system: QuorumSystem,
        strategy: AccessStrategy,
        network: Network,
        formulation: str,
        metric: "object | None" = None,
        placement_nodes: "list[Node] | tuple[Node, ...] | None" = None,
    ) -> bool:
        """Whether this factory was built for exactly these inputs."""
        domain = tuple(placement_nodes) if placement_nodes is not None else None
        return (
            self._system == system
            and self._strategy is strategy
            and self._network is network
            and self._formulation == formulation
            and self._explicit_metric is metric
            and self._domain == domain
        )

    # -- per-candidate structure -----------------------------------------------------

    def attach(self, source: Node):
        """Add the delay-dependent structure for *source* on top of the base.

        Returns ``(model, x_element, x_quorum, ordered_nodes, distances)``
        in :func:`build_ssqpp_lp`'s format: ``x_element[(t, u)]`` maps the
        §3.3 rank ``t`` (``ordered_nodes[t]`` is the ``t``-th closest node
        to the source) back to the shared node-keyed variable.  Call
        :meth:`release` before attaching the next candidate.
        """
        require(
            not self._attached,
            "factory already has an attached source; call release() first",
        )
        self._network.node_index(source)
        system, strategy, model = self._system, self._strategy, self._model
        support = self._support
        if self._domain is None:
            ordered_nodes = self._metric.nodes_by_distance(source)
            distances = [
                self._metric.distance(source, node) for node in ordered_nodes
            ]
        else:
            # Rank only the restricted domain by distance from the source,
            # tie-broken by node index exactly like nodes_by_distance.
            row = self._metric.distances_from(source)
            all_nodes = self._network.nodes
            indices = np.fromiter(
                (self._network.node_index(node) for node in self._domain),
                dtype=np.intp,
                count=len(self._domain),
            )
            order = indices[np.lexsort((indices, row[indices]))]
            ordered_nodes = [all_nodes[int(i)] for i in order]
            distances = [float(row[int(i)]) for i in order]
        n = len(ordered_nodes)
        x_element: dict[tuple[int, Element], object] = {
            (t, u): self._x_by_node[(node, u)]
            for t, node in enumerate(ordered_nodes)
            for u in system.universe
            if (node, u) in self._x_by_node
        }
        self._attached = True

        x_quorum: dict[tuple[int, int], object] = {}
        for t in range(n):
            for q in support:
                x_quorum[(t, q)] = model.variable(f"xQ[{t},{q}]", lb=0.0, ub=1.0)

        # (11): every supported quorum completed at exactly one prefix length.
        for q in support:
            expr = x_quorum[(0, q)].to_expr()
            for t in range(1, n):
                expr = expr + x_quorum[(t, q)]
            model.add_constraint(expr == 1, name=f"complete[{q}]")

        # (14): prefix consistency — a quorum cannot finish before its members.
        if self._formulation == "prefix":
            for q in support:
                # Universe order, not set order: frozenset iteration
                # order varies with insertion history (and across pickle
                # round-trips), and the LP row order it would induce
                # perturbs solver pivoting at the last ulp — breaking
                # serial/parallel result identity.
                quorum = sorted(system.quorums[q], key=system.element_index)
                for u in quorum:
                    quorum_prefix = None
                    element_prefix = None
                    for t in range(n):
                        quorum_prefix = (
                            x_quorum[(t, q)].to_expr()
                            if quorum_prefix is None
                            else quorum_prefix + x_quorum[(t, q)]
                        )
                        if (t, u) in x_element:
                            element_prefix = (
                                x_element[(t, u)].to_expr()
                                if element_prefix is None
                                else element_prefix + x_element[(t, u)]
                            )
                        if element_prefix is None:
                            # No placement of u at distance <= d_t: quorum q
                            # cannot complete within the first t+1 nodes either.
                            model.add_constraint(
                                quorum_prefix <= 0, name=f"prefix[{q},{u!r},{t}]"
                            )
                        else:
                            model.add_constraint(
                                quorum_prefix - element_prefix <= 0,
                                name=f"prefix[{q},{u!r},{t}]",
                            )
        else:
            # Cumulative variables: cum_t = cum_{t-1} + x_t, one chain per
            # element and per supported quorum; (14) becomes 2-term rows.
            # The chains follow the distance ranks, so they are rebuilt per
            # candidate (only the node-keyed base is rank-free).
            element_cumulative: dict[Element, list] = {}
            for u in system.universe:
                chain = []
                previous = None
                for t in range(n):
                    cum = model.variable(f"cum[{t},{u!r}]", lb=0.0, ub=1.0)
                    terms = cum.to_expr()
                    if previous is not None:
                        terms = terms - previous
                    if (t, u) in x_element:
                        terms = terms - x_element[(t, u)]
                    model.add_constraint(terms == 0, name=f"chain[{t},{u!r}]")
                    chain.append(cum)
                    previous = cum
                element_cumulative[u] = chain
            for q in support:
                previous = None
                chain_q = []
                for t in range(n):
                    cum = model.variable(f"cumQ[{t},{q}]", lb=0.0, ub=1.0)
                    terms = cum.to_expr() - x_quorum[(t, q)]
                    if previous is not None:
                        terms = terms - previous
                    model.add_constraint(terms == 0, name=f"chainQ[{t},{q}]")
                    chain_q.append(cum)
                    previous = cum
                # Universe order for the same determinism reason as the
                # prefix formulation above.
                for u in sorted(system.quorums[q], key=system.element_index):
                    for t in range(n):
                        model.add_constraint(
                            chain_q[t] - element_cumulative[u][t] <= 0,
                            name=f"prefix[{q},{u!r},{t}]",
                        )

        # (9): expected max-delay objective.
        objective = None
        for q in support:
            probability = strategy.probability(q)
            for t in range(n):
                if distances[t] == 0:
                    continue
                term = x_quorum[(t, q)] * (probability * distances[t])
                objective = term if objective is None else objective + term
        if objective is None:
            # Degenerate but legal: every supported quorum can sit at distance 0.
            objective = next(iter(x_element.values())) * 0.0
        model.minimize(objective)
        return model, x_element, x_quorum, ordered_nodes, distances

    def release(self) -> None:
        """Drop the candidate-specific structure, restoring the shared base.

        Idempotent: releasing with nothing attached is a no-op.
        """
        if self._attached:
            self._model.rollback(self._base)
            self._attached = False


def build_ssqpp_lp(
    system: QuorumSystem,
    strategy: AccessStrategy,
    network: Network,
    source: Node,
    *,
    formulation: str = "prefix",
):
    """Build the LP relaxation (9)-(14) for one source.

    Returns ``(model, x_element, x_quorum, ordered_nodes, distances)``
    where ``x_element[(t, u)]`` and ``x_quorum[(t, q)]`` map to model
    variables, ``ordered_nodes`` is ``v_0, v_1, ...`` sorted by distance
    from the source (the renaming at the start of §3.3), and
    ``distances[t] = d(v0, v_t)``.

    Variables fixed to zero by constraint (13) — pairs with
    ``load(u) > cap(v_t)`` — are simply omitted.  Quorum variables are
    created only for quorums in the strategy's support: zero-probability
    quorums contribute nothing to the objective and need no containment
    bookkeeping.

    ``formulation`` selects how the prefix constraints (14) are encoded:

    * ``"prefix"`` — the paper's literal form: one inequality per
      ``(quorum, member, t)`` whose left/right sides are explicit prefix
      sums.  ``O(n)`` terms per constraint, ``O(n^2)`` nonzeros per
      (quorum, member) pair.
    * ``"cumulative"`` — auxiliary running-sum variables
      ``C_t = C_{t-1} + x_t`` per element and per quorum, making every
      (14) inequality a 2-term comparison.  Same optimum, far fewer
      nonzeros on large instances; equivalence is covered by tests.

    This is the one-shot convenience over :class:`SSQPPLPFactory`: the
    returned model stays attached to *source* and may be freely extended
    by the caller.  Candidate sweeps should hold a factory instead and
    attach/release per source.
    """
    require(isinstance(network, Network), "network must be a Network")
    factory = SSQPPLPFactory(system, strategy, network, formulation=formulation)
    return factory.attach(source)


def _filter_fractions(
    raw: np.ndarray, alpha: float
) -> np.ndarray:
    """The filtering step, generalized from the paper's alpha = 2.

    ``raw`` has shape (n_positions, n_items), columns summing to 1.
    Column by column, set ``x~_t = min(alpha * x_t, remaining mass to 1)``
    scanning positions in increasing-``t`` order, zeroing everything after
    the cumulative total reaches 1.
    """
    n, items = raw.shape
    filtered = np.zeros_like(raw)
    for j in range(items):
        cumulative = 0.0
        for t in range(n):
            if cumulative >= 1.0 - _ZERO:
                break
            scaled = alpha * raw[t, j]
            take = min(scaled, 1.0 - cumulative)
            if take > _ZERO:
                filtered[t, j] = take
                cumulative += take
        # Guard against columns that fail to reach 1 due to solver noise.
        total = filtered[:, j].sum()
        if total < 1.0 - 1e-6:
            raise ValidationError(
                "filtering failed to accumulate unit mass; LP solution is "
                f"malformed (column {j}, total {total:.8f})"
            )
        filtered[:, j] /= total
    return filtered


# paper: Thm 3.7, Thm 3.12, §3.3
@solver_api(legacy_positional=("network", "source"))
@cost("n**2 * q")
@raises("ValidationError", transient=("SolverError",))
def solve_ssqpp(
    system: QuorumSystem,
    strategy: AccessStrategy,
    *,
    network: Network,
    source: Node,
    alpha: float = 2.0,
    lp_method: str = "highs",
    formulation: str = "prefix",
    factory: SSQPPLPFactory | None = None,
    metric: "object | None" = None,
    placement_nodes: "list[Node] | tuple[Node, ...] | None" = None,
    scale: str | None = None,
) -> SSQPPResult:
    """Solve the Single-Source Quorum Placement Problem approximately.

    Implements Theorem 3.7: the returned placement has

    * ``Delta_f(v0) <= alpha/(alpha-1) * Z* <= alpha/(alpha-1) * OPT``,
    * ``load_f(v) <= (alpha + 1) * cap(v)`` for every node.

    ``alpha = 2`` recovers Theorem 3.12 (delay within twice the LP bound,
    load within three times capacity).

    Pass a pre-built :class:`SSQPPLPFactory` (for the same system,
    strategy, network and formulation) to reuse the v0-independent LP
    base across calls — the candidate sweep in
    :func:`repro.core.qpp.solve_qpp` does this.  The factory is released
    (rolled back to its base) before returning.

    ``metric`` and ``placement_nodes`` thread straight to
    :class:`SSQPPLPFactory`: a lazy metric avoids the dense all-pairs
    build, and a restricted domain shrinks the LP for large networks.
    With ``placement_nodes`` set, ``lp_value`` bounds only the
    *restricted* problem — it is **not** a lower bound on the
    unrestricted optimum.

    ``scale="large"`` is shorthand for ``metric=network.lazy_metric()``
    (the shared ``scale=`` gate, ``docs/api.md``): distances stream
    through the lazy row cache instead of a dense all-pairs build.  An
    explicit ``metric=`` (or a pre-built ``factory=``, which owns its
    metric) takes precedence.

    Raises
    ------
    InfeasibleError
        When no capacity-respecting placement exists even fractionally.
    """
    check_positive(alpha - 1.0, "alpha - 1")
    check_scale(scale)
    network.node_index(source)
    if scale == "large" and metric is None and factory is None:
        metric = network.lazy_metric()

    if factory is None:
        factory = SSQPPLPFactory(
            system,
            strategy,
            network,
            formulation=formulation,
            metric=metric,
            placement_nodes=placement_nodes,
        )
    else:
        require(
            isinstance(factory, SSQPPLPFactory)
            and factory.matches(
                system, strategy, network, formulation, metric, placement_nodes
            ),
            "factory was built for different inputs",
        )
    with span(
        "ssqpp.solve", source=source, alpha=alpha, formulation=formulation
    ):
        try:
            model, x_element, x_quorum, ordered_nodes, distances = factory.attach(
                source
            )
            with span("ssqpp.lp"):
                solution = model.solve(method=lp_method)
            lp_value = float(solution.objective)

            universe = list(system.universe)
            n = len(ordered_nodes)
            raw = np.zeros((n, len(universe)))
            for j, u in enumerate(universe):
                for t in range(n):
                    variable = x_element.get((t, u))
                    if variable is not None:
                        raw[t, j] = max(solution.value(variable), 0.0)
        finally:
            factory.release()
        with span("ssqpp.filter"):
            filtered = _filter_fractions(raw, alpha)

        loads = strategy.load_array()
        capacities = np.array([network.capacity(node) for node in ordered_nodes])
        # GAP view: machines are nodes in distance order, jobs are elements.
        costs = np.full((n, len(universe)), math.inf)
        gap_loads = np.full((n, len(universe)), math.inf)
        for j in range(len(universe)):
            for t in range(n):
                if filtered[t, j] > _ZERO:
                    costs[t, j] = distances[t]
                    gap_loads[t, j] = loads[j]
        instance = GAPInstance(
            jobs=tuple(universe),
            machines=tuple(ordered_nodes),
            costs=costs,
            loads=gap_loads,
            capacities=alpha * capacities,
        )
        fractional_cost = float(
            sum(
                filtered[t, j] * distances[t]
                for j in range(len(universe))
                for t in range(n)
                if filtered[t, j] > _ZERO
            )
        )
        fractional = FractionalAssignment(
            instance=instance, fractions=filtered, cost=fractional_cost
        )
        with span("ssqpp.round"):
            rounded = round_fractional_assignment(fractional)

        placement = Placement(system, network, rounded.assignment)
        delay = expected_max_delay(placement, strategy, source, metric=metric)

        max_factor = 0.0
        for node, load in node_loads(placement, strategy).items():
            if load <= 0:
                continue
            capacity = network.capacity(node)
            max_factor = max(
                max_factor, load / capacity if capacity > 0 else float("inf")
            )

    return SSQPPResult(
        placement=placement,
        delay=delay,
        lp_value=lp_value,
        alpha=alpha,
        delay_bound=(alpha / (alpha - 1.0)) * lp_value,
        load_factor_bound=alpha + 1.0,
        max_load_factor=max_factor,
        source=source,
    )
