"""The paper's contribution: quorum placement algorithms and evaluators.

Layout of the subpackage:

* :mod:`~repro.core.placement` — the :class:`Placement` type and the
  delay/load evaluators (equations (1), (2) and the Section 5 measure).
* :mod:`~repro.core.relay` — Lemma 3.1 (relay-via-v0).
* :mod:`~repro.core.ssqpp` — Problem 3.2 and the §3.3 LP-rounding
  algorithm (Theorems 3.7 / 3.12).
* :mod:`~repro.core.qpp` — Problem 1.1 via Theorem 3.3 (Theorem 1.2).
* :mod:`~repro.core.grid_layout` / :mod:`~repro.core.majority_layout` —
  the §4 optimal single-source layouts (Theorem 1.3 ingredients).
* :mod:`~repro.core.total_delay` — Section 5 (Theorems 1.4 / 5.1).
* :mod:`~repro.core.exact` — exhaustive optima for small instances.
* :mod:`~repro.core.baselines` — comparison placements.
* :mod:`~repro.core.hardness` — the Theorem 3.6 NP-hardness reduction.
* :mod:`~repro.core.results` — the unified :class:`SolveResult` contract
  every solver entry point returns (see ``docs/api.md``).
"""

from .baselines import greedy_placement, random_placement, single_node_placement
from .biobjective import (
    ScalarizedResult,
    max_vs_total_frontier,
    solve_scalarized_placement,
)
from .exact import (
    ExactPlacement,
    solve_qpp_exact,
    solve_ssqpp_exact,
    solve_total_delay_exact,
)
from .grid_layout import (
    GridLayoutResult,
    concentric_matrix,
    concentric_positions,
    grid_matrix_delay,
    nearest_slots,
    optimal_grid_placement,
)
from .hardness import ANCHOR, HardnessReduction, reduce_scheduling_to_ssqpp
from .local_search import (
    LocalSearchResult,
    improve_max_delay,
    improve_total_delay,
    local_search,
)
from .majority_layout import (
    MajorityLayoutResult,
    majority_delay_formula,
    optimal_majority_placement,
)
from .partial_deployment import (
    PartialDeployment,
    solve_partial_deployment,
    solve_partial_deployment_exact,
)
from .placement import (
    Placement,
    average_max_delay,
    average_max_delay_reference,
    average_total_delay,
    average_total_delay_reference,
    capacity_violation_factor,
    capacity_violation_factor_reference,
    expected_max_delay,
    expected_max_delay_reference,
    expected_total_delay,
    expected_total_delay_reference,
    is_capacity_respecting,
    make_placement,
    max_delay,
    node_loads,
    node_loads_reference,
    per_client_expected_max_delay,
    total_delay_cost,
)
from .qpp import QPPResult, average_strategy, solve_qpp, warm_candidates
from .results import Provenance, SolveResult
from .rw_placement import RWPlacementResult, solve_rw_placement, solve_rw_ssqpp
from .relay import (
    RELAY_FACTOR_BOUND,
    RelayAnalysis,
    best_relay_node,
    relay_analysis,
    relay_delay,
)
from .sensitivity import CapacitySensitivity, capacity_sensitivity
from .ssqpp import SSQPPLPFactory, SSQPPResult, build_ssqpp_lp, solve_ssqpp
from .strategy_opt import (
    DelayOptimalStrategy,
    alternating_optimization,
    delay_optimal_strategy,
    strategy_delay_frontier,
)
from .total_delay import TotalDelayResult, solve_total_delay

__all__ = [
    "ANCHOR",
    "CapacitySensitivity",
    "DelayOptimalStrategy",
    "ExactPlacement",
    "GridLayoutResult",
    "HardnessReduction",
    "LocalSearchResult",
    "MajorityLayoutResult",
    "PartialDeployment",
    "Placement",
    "Provenance",
    "QPPResult",
    "RWPlacementResult",
    "RELAY_FACTOR_BOUND",
    "RelayAnalysis",
    "SSQPPLPFactory",
    "SSQPPResult",
    "ScalarizedResult",
    "SolveResult",
    "TotalDelayResult",
    "alternating_optimization",
    "average_max_delay",
    "average_max_delay_reference",
    "average_strategy",
    "average_total_delay",
    "average_total_delay_reference",
    "best_relay_node",
    "build_ssqpp_lp",
    "capacity_sensitivity",
    "capacity_violation_factor",
    "capacity_violation_factor_reference",
    "concentric_matrix",
    "concentric_positions",
    "delay_optimal_strategy",
    "expected_max_delay",
    "expected_max_delay_reference",
    "expected_total_delay",
    "expected_total_delay_reference",
    "greedy_placement",
    "grid_matrix_delay",
    "improve_max_delay",
    "improve_total_delay",
    "is_capacity_respecting",
    "local_search",
    "majority_delay_formula",
    "make_placement",
    "max_vs_total_frontier",
    "max_delay",
    "nearest_slots",
    "node_loads",
    "node_loads_reference",
    "optimal_grid_placement",
    "optimal_majority_placement",
    "per_client_expected_max_delay",
    "random_placement",
    "reduce_scheduling_to_ssqpp",
    "relay_analysis",
    "relay_delay",
    "single_node_placement",
    "solve_partial_deployment",
    "solve_partial_deployment_exact",
    "solve_qpp",
    "solve_qpp_exact",
    "solve_rw_placement",
    "solve_rw_ssqpp",
    "solve_scalarized_placement",
    "solve_ssqpp",
    "solve_ssqpp_exact",
    "solve_total_delay",
    "solve_total_delay_exact",
    "strategy_delay_frontier",
    "total_delay_cost",
    "warm_candidates",
]
