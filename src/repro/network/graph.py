"""The physical network model.

The paper's setting is an undirected network ``G = (V, E)`` with positive
edge lengths (inducing the shortest-path metric ``d``) and a capacity
``cap(v)`` bounding the quorum load each physical node can host.  The set
of clients issuing quorum accesses is ``V`` itself.

:class:`Network` is an immutable value type wrapping that data.  Distance
computation lives in :mod:`repro.network.metric`; random and structured
topologies in :mod:`repro.network.generators`.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Iterable, Mapping
from typing import Callable, NamedTuple, Union

from .._validation import check_positive, require
from ..exceptions import ValidationError
from ..obs.metrics import counter
from ..obs.trace import span

__all__ = [
    "Network",
    "Node",
    "MetricCacheInfo",
    "metric_cache_info",
    "metric_cache_clear",
]

Node = Hashable

#: Process-wide build/hit totals across every :class:`Network` instance,
#: kept in the :mod:`repro.obs.metrics` default registry (the single
#: source of truth; ``repro profile`` and the bench telemetry read the
#: same counters).  Instance counters answer "did *this* network
#: rebuild?"; the aggregates answer "did *anything* rebuild?" — which is
#: what cross-cutting tests and benchmarks assert.  They bleed between
#: tests unless reset, so the suite's autouse fixture calls
#: :func:`metric_cache_clear` before each test (mirroring the
#: ``functools.lru_cache`` ``cache_clear`` idiom).
_BUILDS = counter("metric.cache.builds")
_HITS = counter("metric.cache.hits")
#: The lazy-metric LRU row cache reports into the same family; the
#: counters are owned by :mod:`repro.network.lazymetric` (which creates
#: the identical registry entries) — referencing them here keeps
#: :func:`metric_cache_info` / :func:`metric_cache_clear` the one-stop
#: telemetry surface for *both* metric caches.
_ROW_HITS = counter("metric.cache.row_hits")
_ROW_MISSES = counter("metric.cache.row_misses")
_ROW_EVICTIONS = counter("metric.cache.row_evictions")


def metric_cache_info() -> "MetricCacheInfo":
    """Aggregate metric-cache counters over all networks in this process.

    Reads the ``metric.cache.*`` counters of the default metrics
    registry: dense ``builds``/``hits`` plus the lazy-metric LRU row
    counters ``row_hits``/``row_misses``/``row_evictions``.
    """
    return MetricCacheInfo(
        int(_BUILDS.value),
        int(_HITS.value),
        int(_ROW_HITS.value),
        int(_ROW_MISSES.value),
        int(_ROW_EVICTIONS.value),
    )


def metric_cache_clear() -> None:
    """Reset the aggregate counters (e.g. between tests)."""
    _BUILDS.reset()
    _HITS.reset()
    _ROW_HITS.reset()
    _ROW_MISSES.reset()
    _ROW_EVICTIONS.reset()


class MetricCacheInfo(NamedTuple):
    """Counters for the per-network metric caches (see
    :meth:`Network.metric` and :meth:`Network.lazy_metric`).

    ``builds`` is how many times the dense all-pairs matrix was actually
    computed (at most 1 per network); ``hits`` counts the calls served
    from the cache.  ``row_hits``/``row_misses``/``row_evictions`` are
    the lazy-metric LRU row-cache totals (zero when only the dense path
    ran).  The trailing fields default to zero so pre-lazy call sites
    constructing ``MetricCacheInfo(builds, hits)`` keep working.
    """

    builds: int
    hits: int
    row_hits: int = 0
    row_misses: int = 0
    row_evictions: int = 0
EdgeSpec = Union[tuple, "tuple[Node, Node]", "tuple[Node, Node, float]"]


class Network:
    """An undirected, connected, capacitated network with edge lengths.

    Parameters
    ----------
    nodes:
        The node set; order is preserved and used as the canonical index
        order everywhere (distance matrices, LP variables).
    edges:
        Iterables ``(u, v)`` or ``(u, v, length)``; lengths default to 1
        and must be positive.  Parallel edges keep the shortest length;
        self-loops are rejected.
    capacities:
        Mapping from node to a non-negative capacity ``cap(v)``, or a
        single float applied to every node.  Defaults to infinity (the
        uncapacitated problem).
    name:
        Label used in reports.

    Examples
    --------
    >>> net = Network(["a", "b", "c"], [("a", "b", 2.0), ("b", "c")], capacities=1.0)
    >>> net.size
    3
    >>> net.edge_length("a", "b")
    2.0
    >>> net.capacity("c")
    1.0
    """

    __slots__ = (
        "_nodes",
        "_index",
        "_adjacency",
        "_capacities",
        "name",
        "_metric",
        "_metric_builds",
        "_metric_hits",
        "_lazy_metric",
    )

    def __init__(
        self,
        nodes: Iterable[Node],
        edges: Iterable[EdgeSpec],
        *,
        capacities: Mapping[Node, float] | float | None = None,
        name: str = "network",
    ) -> None:
        node_list = list(nodes)
        require(len(node_list) > 0, "a network must have at least one node")
        if len(set(node_list)) != len(node_list):
            raise ValidationError("duplicate nodes are not allowed")
        self._nodes: tuple[Node, ...] = tuple(node_list)
        self._index: dict[Node, int] = {v: i for i, v in enumerate(self._nodes)}

        adjacency: dict[Node, dict[Node, float]] = {v: {} for v in self._nodes}
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                length = 1.0
            elif len(edge) == 3:
                u, v, length = edge
                length = check_positive(length, f"length of edge ({u!r}, {v!r})")
            else:
                raise ValidationError(f"edge must be (u, v) or (u, v, length), got {edge!r}")
            if u not in self._index or v not in self._index:
                raise ValidationError(f"edge ({u!r}, {v!r}) references unknown node")
            if u == v:
                raise ValidationError(f"self-loop at node {u!r} is not allowed")
            current = adjacency[u].get(v, math.inf)
            if length < current:
                adjacency[u][v] = length
                adjacency[v][u] = length
        self._adjacency = adjacency

        if capacities is None:
            self._capacities = {v: math.inf for v in self._nodes}
        elif isinstance(capacities, (int, float)):
            value = float(capacities)
            require(value >= 0, "capacity must be non-negative")
            self._capacities = {v: value for v in self._nodes}
        else:
            caps: dict[Node, float] = {}
            for node in self._nodes:
                if node not in capacities:
                    raise ValidationError(f"no capacity given for node {node!r}")
                value = float(capacities[node])
                if value < 0 or math.isnan(value):
                    raise ValidationError(
                        f"capacity of node {node!r} must be non-negative, got {value!r}"
                    )
                caps[node] = value
            self._capacities = caps

        self.name = name
        self._metric = None  # lazily built dense Metric
        self._metric_builds = 0
        self._metric_hits = 0
        self._lazy_metric = None  # lazily built LazyMetric view

    # -- basic accessors --------------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        return self._nodes

    @property
    def size(self) -> int:
        return len(self._nodes)

    def node_index(self, node: Node) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise ValidationError(f"{node!r} is not a node of {self.name!r}") from None

    def has_node(self, node: Node) -> bool:
        return node in self._index

    def neighbors(self, node: Node) -> tuple[Node, ...]:
        self.node_index(node)
        return tuple(self._adjacency[node])

    def edges(self) -> list[tuple[Node, Node, float]]:
        """All edges as ``(u, v, length)`` with each edge listed once."""
        result = []
        for u in self._nodes:
            for v, length in self._adjacency[u].items():
                if self._index[u] < self._index[v]:
                    result.append((u, v, length))
        return result

    @property
    def edge_count(self) -> int:
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def edge_length(self, u: Node, v: Node) -> float:
        self.node_index(u)
        self.node_index(v)
        try:
            return self._adjacency[u][v]
        except KeyError:
            raise ValidationError(f"no edge between {u!r} and {v!r}") from None

    def capacity(self, node: Node) -> float:
        self.node_index(node)
        return self._capacities[node]

    def capacities(self) -> dict[Node, float]:
        return dict(self._capacities)

    def total_capacity(self) -> float:
        return sum(self._capacities.values())

    # -- metric ------------------------------------------------------------------------

    def metric(self):
        """The shortest-path metric, computed once and cached.

        Returns a :class:`repro.network.metric.Metric`; raises
        :class:`ValidationError` if the network is disconnected (the
        paper assumes finite distances between all client/node pairs).
        """
        if self._metric is None:
            from .metric import Metric

            with span("metric.build", network=self.name, nodes=self.size):
                self._metric = Metric.from_network(self)
            self._metric_builds += 1
            _BUILDS.inc()
        else:
            self._metric_hits += 1
            _HITS.inc()
        return self._metric

    def lazy_metric(self, *, max_cached_rows: int | None = None):
        """A shared lazy row-on-demand metric view of this network.

        Returns a :class:`repro.network.lazymetric.LazyMetric`, built on
        first use and cached on the network (like :meth:`metric`, but
        holding ``O(max_cached_rows * n)`` memory instead of the dense
        ``n x n`` matrix).  Disconnected networks are allowed — unreachable
        pairs read ``inf``.  Pass *max_cached_rows* on the first call to
        size the LRU; later calls reuse the existing view and reject a
        conflicting size.
        """
        from .lazymetric import DEFAULT_MAX_CACHED_ROWS, LazyMetric

        if self._lazy_metric is None:
            rows = DEFAULT_MAX_CACHED_ROWS if max_cached_rows is None else max_cached_rows
            with span("metric.lazy_init", network=self.name, nodes=self.size):
                self._lazy_metric = LazyMetric(self, max_cached_rows=rows)
        elif (
            max_cached_rows is not None
            and self._lazy_metric.max_cached_rows != max_cached_rows
        ):
            raise ValidationError(
                f"lazy metric already built with max_cached_rows="
                f"{self._lazy_metric.max_cached_rows}; call "
                "metric_cache_clear() before resizing"
            )
        return self._lazy_metric

    def metric_cache_info(self) -> MetricCacheInfo:
        """Counters of this network's metric caches: dense build/hit plus
        the lazy view's LRU row statistics (zero if never built)."""
        lazy = self._lazy_metric
        if lazy is None:
            return MetricCacheInfo(self._metric_builds, self._metric_hits)
        info = lazy.cache_info()
        return MetricCacheInfo(
            self._metric_builds,
            self._metric_hits,
            info.hits,
            info.misses,
            info.evictions,
        )

    def metric_cache_clear(self) -> None:
        """Drop the cached metrics and zero this network's counters.

        Mirrors ``functools.lru_cache``'s ``cache_clear``: the next
        :meth:`metric` call recomputes the dense matrix and counts as a
        fresh build, and the next :meth:`lazy_metric` call builds a fresh
        (resizable) view. The process-wide aggregates are left untouched —
        reset those with the module-level :func:`metric_cache_clear`.
        """
        self._metric = None
        self._metric_builds = 0
        self._metric_hits = 0
        self._lazy_metric = None

    def distance(self, u: Node, v: Node) -> float:
        """Shortest-path distance ``d(u, v)``."""
        return self.metric().distance(u, v)

    def is_connected(self) -> bool:
        visited = {self._nodes[0]}
        stack = [self._nodes[0]]
        while stack:
            node = stack.pop()
            for neighbor in self._adjacency[node]:
                if neighbor not in visited:
                    visited.add(neighbor)
                    stack.append(neighbor)
        return len(visited) == self.size

    # -- derivation ---------------------------------------------------------------------

    def with_capacities(
        self, capacities: Mapping[Node, float] | float | Callable[[Node], float]
    ) -> "Network":
        """A copy of this network with new capacities.

        *capacities* may be a mapping, a uniform float, or a callable
        evaluated per node.
        """
        if callable(capacities) and not isinstance(capacities, (int, float)):
            mapping = {v: float(capacities(v)) for v in self._nodes}
        else:
            mapping = capacities  # type: ignore[assignment]
        return Network(self._nodes, self.edges(), capacities=mapping, name=self.name)

    def with_name(self, name: str) -> "Network":
        return Network(self._nodes, self.edges(), capacities=self._capacities, name=name)

    # -- interop --------------------------------------------------------------------------

    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``length`` edge data
        and ``capacity`` node data (used only in tests for cross-checks)."""
        import networkx as nx

        graph = nx.Graph(name=self.name)
        for node in self._nodes:
            graph.add_node(node, capacity=self._capacities[node])
        for u, v, length in self.edges():
            graph.add_edge(u, v, length=length)
        return graph

    @classmethod
    def from_networkx(
        cls, graph, *, length_key: str = "length", capacity_key: str = "capacity"
    ) -> "Network":
        """Build a Network from a networkx graph.

        Edge lengths default to 1 when the edge attribute is missing;
        node capacities default to infinity.
        """
        nodes = list(graph.nodes())
        edges = [
            (u, v, float(data.get(length_key, 1.0))) for u, v, data in graph.edges(data=True)
        ]
        capacities = {
            node: float(graph.nodes[node].get(capacity_key, math.inf)) for node in nodes
        }
        return cls(nodes, edges, capacities=capacities, name=graph.name or "network")

    def __repr__(self) -> str:
        return (
            f"Network(name={self.name!r}, nodes={self.size}, edges={self.edge_count})"
        )
