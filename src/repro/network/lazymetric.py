"""Sparse/lazy shortest-path metrics for large networks.

The dense :class:`repro.network.metric.Metric` materializes the full
``n x n`` distance matrix up front, which is the right call for the few
hundred nodes the paper's experiments use — and a hard wall at the
10^3-10^5 nodes the ROADMAP targets.  This module provides the scaling
counterpart:

* :class:`MetricView` — the structural protocol every evaluator accepts:
  node indexing, pairwise lookups, full rows, contiguous row blocks, and
  arbitrary submatrices.  The dense ``Metric`` satisfies it natively.
* :class:`LazyMetric` — distance rows materialized on demand through the
  existing batched scipy Dijkstra, behind an LRU row cache whose
  hit/miss/evict counters live in the :mod:`repro.obs.metrics` default
  registry under the same ``metric.cache.*`` family as the dense cache.
  Rows are bitwise identical to the dense matrix rows (scipy's Dijkstra
  is per-source independent), which the property-based equivalence tests
  assert.  Unlike the dense path, disconnected networks are *allowed*:
  unreachable pairs read ``inf`` exactly as ``dijkstra_batched`` reports
  them, and callers decide whether that is an error.
* :class:`LandmarkOracle` — classical pivot bounds from ``k`` landmark
  rows: for any pair ``(u, v)`` and landmark ``l`` the triangle
  inequality gives ``|d(l,u) - d(l,v)| <= d(u,v) <= d(l,u) + d(l,v)``.
  The oracle certifies its own bounds (:meth:`LandmarkOracle.certify`)
  and lets :func:`repro.core.qpp.solve_qpp` prune candidate evaluation
  before any exact rows are pulled.

Memory: a :class:`LazyMetric` holds at most ``max_cached_rows`` rows
(``O(max_cached_rows * n)``) plus the adjacency — never ``O(n^2)``.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass
from typing import NamedTuple, Protocol, runtime_checkable

import numpy as np
from numpy.typing import NDArray

from .._validation import check_integer_in_range, cost, require
from ..exceptions import ValidationError
from ..obs.metrics import counter, gauge
from .graph import Network, Node

__all__ = [
    "MetricView",
    "LazyMetric",
    "LandmarkOracle",
    "OracleCertificate",
    "RowCacheInfo",
    "farthest_point_landmarks",
]

#: Process-wide LRU row-cache telemetry, in the same registry (and the
#: same ``metric.cache.*`` family) as the dense cache's builds/hits so
#: ``repro profile``, the bench telemetry block, and
#: :func:`repro.network.graph.metric_cache_info` read one source of
#: truth.  ``row_peak`` is a gauge: the largest number of rows any
#: single cache held at once — the bench asserts it stays far below
#: ``n`` to prove no dense materialization happened.
_ROW_HITS = counter("metric.cache.row_hits")
_ROW_MISSES = counter("metric.cache.row_misses")
_ROW_EVICTIONS = counter("metric.cache.row_evictions")
_ROW_PEAK = gauge("metric.cache.row_peak")

#: Default LRU capacity: bounds resident memory at
#: ``1024 * n * 8`` bytes (~80 MB at n = 10^4) while keeping full-sweep
#: evaluations (which stream every row once) cheap to re-run locally.
DEFAULT_MAX_CACHED_ROWS = 1024


@runtime_checkable
class MetricView(Protocol):
    """What the evaluators need from a metric — dense or lazy.

    ``Metric`` satisfies this natively with zero-copy views;
    :class:`LazyMetric` satisfies it by materializing rows on demand.
    The deliberate *omission* is a ``matrix`` property: code that needs
    the full array must ask the dense type for it explicitly, so lazy
    call sites cannot accidentally densify.
    """

    @property
    def nodes(self) -> tuple[Node, ...]: ...

    @property
    def size(self) -> int: ...

    def node_index(self, node: Node) -> int: ...

    def distance(self, u: Node, v: Node) -> float: ...

    def distances_from(self, source: Node) -> NDArray[np.float64]: ...

    def row_block(self, start: int, stop: int) -> NDArray[np.float64]: ...

    def submatrix(
        self, sources: Sequence[Node], targets: Sequence[Node] | None = None
    ) -> NDArray[np.float64]: ...

    def nodes_by_distance(self, source: Node) -> list[Node]: ...


class RowCacheInfo(NamedTuple):
    """Instance-level LRU row-cache statistics of one :class:`LazyMetric`."""

    hits: int
    misses: int
    evictions: int
    cached_rows: int
    peak_rows: int
    max_cached_rows: int


class LazyMetric:
    """Shortest-path metric with rows materialized on demand.

    Parameters
    ----------
    network:
        The network whose shortest-path metric this views.  The
        adjacency is captured once at construction; rows are computed by
        :func:`repro.network.metric.dijkstra_batched` restricted to the
        missing sources, so each row is bitwise identical to the
        corresponding dense-matrix row.
    max_cached_rows:
        LRU capacity in rows (``None`` disables eviction).  Peak resident
        memory is ``max_cached_rows * n * 8`` bytes.

    Unlike :meth:`Metric.from_network`, construction does **not** reject
    disconnected networks: unreachable pairs are ``inf``, matching the
    batched Dijkstra's convention, and sorting/usage sites decide how to
    treat them.
    """

    __slots__ = (
        "_nodes",
        "_index",
        "_adjacency",
        "_cache",
        "_max_rows",
        "_hits",
        "_misses",
        "_evictions",
        "_peak",
    )

    def __init__(
        self, network: Network, *, max_cached_rows: int | None = DEFAULT_MAX_CACHED_ROWS
    ) -> None:
        require(isinstance(network, Network), "network must be a Network")
        if max_cached_rows is not None:
            check_integer_in_range(max_cached_rows, "max_cached_rows", low=1)
        self._nodes: tuple[Node, ...] = network.nodes
        self._index: dict[Node, int] = {v: i for i, v in enumerate(self._nodes)}
        self._adjacency: dict[Node, dict[Node, float]] = {
            u: {v: network.edge_length(u, v) for v in network.neighbors(u)}
            for u in self._nodes
        }
        self._cache: OrderedDict[int, NDArray[np.float64]] = OrderedDict()
        self._max_rows = max_cached_rows
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._peak = 0

    # -- accessors ---------------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        return self._nodes

    @property
    def size(self) -> int:
        return len(self._nodes)

    @property
    def max_cached_rows(self) -> int | None:
        return self._max_rows

    def node_index(self, node: Node) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise ValidationError(f"{node!r} is not in the metric space") from None

    def cache_info(self) -> RowCacheInfo:
        """This instance's LRU statistics (process-wide aggregates live in
        :func:`repro.network.graph.metric_cache_info`)."""
        return RowCacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            cached_rows=len(self._cache),
            peak_rows=self._peak,
            max_cached_rows=self._max_rows if self._max_rows is not None else -1,
        )

    def cache_clear(self) -> None:
        """Drop every cached row and zero this instance's statistics."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._peak = 0

    # -- row materialization -------------------------------------------------------

    def _compute_rows(self, indices: Sequence[int]) -> NDArray[np.float64]:
        """Batched Dijkstra restricted to the given source indices."""
        from .metric import dijkstra_batched

        sources = [self._nodes[i] for i in indices]
        block = dijkstra_batched(self._adjacency, sources)
        if bool(np.any(block < 0)):
            raise ValidationError("computed distances must be non-negative")
        for offset, i in enumerate(indices):
            if abs(float(block[offset, i])) > 1e-12:
                raise ValidationError(
                    f"self-distance of node {self._nodes[i]!r} is not zero"
                )
        return block

    def _store(self, index: int, row: NDArray[np.float64]) -> None:
        row.setflags(write=False)
        self._cache[index] = row
        self._cache.move_to_end(index)
        if self._max_rows is not None:
            while len(self._cache) > self._max_rows:
                self._cache.popitem(last=False)
                self._evictions += 1
                _ROW_EVICTIONS.inc()
        if len(self._cache) > self._peak:
            self._peak = len(self._cache)
            if self._peak > _ROW_PEAK.value:
                _ROW_PEAK.set(float(self._peak))

    def _rows_at(self, indices: Sequence[int]) -> NDArray[np.float64]:
        """Rows for arbitrary node indices, pulling misses in one batch.

        Resolved rows are held by direct reference until the output is
        assembled: storing the misses can evict other rows of this very
        request (the whole batch may exceed ``max_cached_rows``), so the
        cache cannot be re-read after the stores.
        """
        rows: dict[int, NDArray[np.float64]] = {}
        missing: list[int] = []
        for i in dict.fromkeys(indices):
            cached = self._cache.get(i)
            if cached is not None:
                self._cache.move_to_end(i)
                rows[i] = cached
            else:
                missing.append(i)
        hits = len(indices) - len(missing)
        if hits > 0:
            self._hits += hits
            _ROW_HITS.inc(float(hits))
        if missing:
            self._misses += len(missing)
            _ROW_MISSES.inc(float(len(missing)))
            block = self._compute_rows(missing)
            for offset, i in enumerate(missing):
                rows[i] = block[offset]
                self._store(i, block[offset])
        out = np.empty((len(indices), self.size), dtype=float)
        for offset, i in enumerate(indices):
            out[offset] = rows[i]
        return out

    def _row_at(self, index: int) -> NDArray[np.float64]:
        row = self._cache.get(index)
        if row is not None:
            self._hits += 1
            _ROW_HITS.inc()
            self._cache.move_to_end(index)
            return row
        self._misses += 1
        _ROW_MISSES.inc()
        computed: NDArray[np.float64] = self._compute_rows([index])[0]
        self._store(index, computed)
        return computed

    # -- MetricView surface ----------------------------------------------------------

    def distance(self, u: Node, v: Node) -> float:
        return float(self._row_at(self.node_index(u))[self.node_index(v)])

    def distances_from(self, source: Node) -> NDArray[np.float64]:
        """Row of distances from *source*, in node order (read-only;
        ``inf`` for unreachable targets)."""
        return self._row_at(self.node_index(source))

    def row_block(self, start: int, stop: int) -> NDArray[np.float64]:
        """Rows ``start:stop`` of the (virtual) distance matrix.

        The evaluators stream the whole metric through this in bounded
        blocks; each block is a fresh ``(stop - start, n)`` array, and the
        LRU keeps at most ``max_cached_rows`` of its rows afterwards.
        """
        check_integer_in_range(start, "start", low=0, high=self.size)
        check_integer_in_range(stop, "stop", low=start, high=self.size)
        return self._rows_at(list(range(start, stop)))

    def submatrix(
        self, sources: Sequence[Node], targets: Sequence[Node] | None = None
    ) -> NDArray[np.float64]:
        """Distances from *sources* to *targets* (default: all nodes)."""
        source_indices = [self.node_index(v) for v in sources]
        rows = self._rows_at(source_indices)
        if targets is None:
            return rows
        target_indices = np.asarray(
            [self.node_index(v) for v in targets], dtype=np.intp
        )
        return rows[:, target_indices]

    def nodes_by_distance(self, source: Node) -> list[Node]:
        """All nodes sorted by increasing distance from *source*, ties by
        node index — the same deterministic §3.3 ordering the dense
        :meth:`Metric.nodes_by_distance` produces (unreachable nodes sort
        last, after every finite distance)."""
        row = self.distances_from(source)
        order = np.lexsort((np.arange(self.size), row))
        return [self._nodes[int(i)] for i in order]

    def __repr__(self) -> str:
        return (
            f"LazyMetric(nodes={self.size}, cached_rows={len(self._cache)}, "
            f"max_cached_rows={self._max_rows})"
        )


# -- landmark oracle ------------------------------------------------------------------


@cost("c * n", scale="large")
def farthest_point_landmarks(
    metric: MetricView, k: int, *, start: Node | None = None
) -> list[Node]:
    """Greedy farthest-point landmark selection over any metric view.

    The lazy counterpart of :meth:`Metric.k_centers`: it pulls exactly
    ``k`` rows (one per selected landmark) instead of needing the full
    matrix, starting from *start* (default: the first node) rather than
    the 1-median, whose computation is itself an all-pairs sum.  Ties are
    broken by node index, so selection is deterministic.
    """
    check_integer_in_range(k, "k", low=1)
    k = min(k, metric.size)
    first = start if start is not None else metric.nodes[0]
    landmarks = [first]
    distance_to_landmarks = np.array(metric.distances_from(first), dtype=float)
    while len(landmarks) < k:
        finite = np.where(np.isfinite(distance_to_landmarks), distance_to_landmarks, -1.0)
        farthest = int(np.argmax(finite))
        if finite[farthest] <= 0:
            break  # every remaining node coincides with (or cannot extend) a landmark
        node = metric.nodes[farthest]
        landmarks.append(node)
        np.minimum(
            distance_to_landmarks, metric.distances_from(node), out=distance_to_landmarks
        )
    return landmarks


@dataclass(frozen=True)
class OracleCertificate:
    """Outcome of :meth:`LandmarkOracle.certify`.

    ``violations`` counts sampled pairs where the sandwich
    ``lower <= d(u, v) <= upper`` failed beyond ``tolerance`` — the
    triangle inequality makes zero the only acceptable value, and
    :attr:`ok` says exactly that.  ``max_gap``/``mean_gap`` report the
    bound slack ``upper - lower`` over the sample: the pruning power
    (not the soundness) of the oracle.
    """

    landmarks: int
    sampled_sources: int
    pairs_checked: int
    violations: int
    max_violation: float
    max_gap: float
    mean_gap: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return self.violations == 0


class LandmarkOracle:
    """Pivot-based distance bounds from ``k`` landmark rows.

    For landmarks ``l_1..l_k`` the triangle inequality sandwiches every
    pair: ``max_i |d(l_i,u) - d(l_i,v)| <= d(u,v) <= min_i d(l_i,u) +
    d(l_i,v)``.  Bounds are exact whenever ``u`` or ``v`` *is* a
    landmark, which is why :func:`repro.core.qpp.solve_qpp` seeds its
    large-scale candidate sweep with the landmark set itself.

    Storage is ``k * n`` — the ``k`` rows pulled through the underlying
    view at construction.  Landmark rows must be finite: an oracle over a
    disconnected network would produce ``inf - inf`` artifacts, so
    construction rejects landmarks that cannot reach every node.
    """

    __slots__ = ("_metric", "_landmarks", "_rows")

    def __init__(self, metric: MetricView, landmarks: Sequence[Node]) -> None:
        landmark_list = list(dict.fromkeys(landmarks))
        require(len(landmark_list) > 0, "at least one landmark is required")
        rows = np.empty((len(landmark_list), metric.size), dtype=float)
        for i, node in enumerate(landmark_list):
            rows[i] = metric.distances_from(node)
        if not bool(np.all(np.isfinite(rows))):
            raise ValidationError(
                "landmark rows contain non-finite distances; the landmark "
                "oracle requires a connected network"
            )
        rows.setflags(write=False)
        self._metric = metric
        self._landmarks = tuple(landmark_list)
        self._rows = rows

    @classmethod
    def build(
        cls, metric: MetricView, k: int, *, start: Node | None = None
    ) -> "LandmarkOracle":
        """Oracle over ``k`` greedy farthest-point landmarks."""
        return cls(metric, farthest_point_landmarks(metric, k, start=start))

    # -- accessors ---------------------------------------------------------------

    @property
    def landmarks(self) -> tuple[Node, ...]:
        return self._landmarks

    @property
    def metric(self) -> MetricView:
        return self._metric

    # -- bounds ------------------------------------------------------------------

    def bounds(self, u: Node, v: Node) -> tuple[float, float]:
        """``(lower, upper)`` with ``lower <= d(u, v) <= upper``."""
        i = self._metric.node_index(u)
        j = self._metric.node_index(v)
        if i == j:
            return 0.0, 0.0
        to_u = self._rows[:, i]
        to_v = self._rows[:, j]
        lower = float(np.max(np.abs(to_u - to_v)))
        upper = float(np.min(to_u + to_v))
        return lower, upper

    def bounds_from(self, node: Node) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
        """``(lower, upper)`` arrays over all targets, in node order."""
        lower, upper = self.bounds_columns(np.array([self._metric.node_index(node)]))
        return lower[:, 0], upper[:, 0]

    def bounds_columns(
        self, target_indices: NDArray[np.intp]
    ) -> tuple[NDArray[np.float64], NDArray[np.float64]]:
        """Bound matrices of shape ``(n, len(target_indices))``.

        Column ``j`` bounds ``d(v, targets[j])`` for every node ``v`` —
        the shape :func:`repro.core._kernels.expected_max_delays` accepts
        as a (reduced-column) distance matrix, which is how the candidate
        sweep bounds a placement's realized objective without exact rows.
        Memory is ``O(n * len(target_indices))``; the landmark reduction
        runs one ``(n, W)`` temporary at a time.
        """
        targets = np.asarray(target_indices, dtype=np.intp)
        n = self._metric.size
        width = targets.shape[0]
        lower = np.zeros((n, width), dtype=float)
        upper = np.full((n, width), np.inf, dtype=float)
        for row in self._rows:
            to_targets = row[targets]
            np.maximum(lower, np.abs(row[:, None] - to_targets[None, :]), out=lower)
            np.minimum(upper, row[:, None] + to_targets[None, :], out=upper)
        # Self-distances are known exactly; tighten the diagonal entries.
        upper[targets, np.arange(width)] = 0.0
        return lower, upper

    # -- certification -----------------------------------------------------------

    def certify(
        self, *, sample: int = 32, tolerance: float = 1e-9
    ) -> OracleCertificate:
        """Check the sandwich against exact rows on a deterministic sample.

        Pulls ``min(sample, n)`` evenly spaced exact source rows through
        the underlying view and verifies ``lower - tol <= d <= upper +
        tol`` on every ``(sampled source, target)`` pair.  Landmark rows
        make ``k`` of the sources exact for free, so the sample is spread
        over the whole index range instead of drawn randomly — the
        report is reproducible with no RNG involved.
        """
        check_integer_in_range(sample, "sample", low=1)
        n = self._metric.size
        count = min(sample, n)
        source_indices = sorted(
            {int(i) for i in np.linspace(0, n - 1, num=count).round()}
        )
        violations = 0
        max_violation = 0.0
        max_gap = 0.0
        gap_total = 0.0
        pairs = 0
        for i in source_indices:
            exact = np.asarray(
                self._metric.distances_from(self._metric.nodes[i]), dtype=float
            )
            lower, upper = self.bounds_columns(np.array([i], dtype=np.intp))
            low = lower[:, 0]
            high = upper[:, 0]
            below = np.maximum(low - exact, 0.0)
            above = np.maximum(exact - high, 0.0)
            worst = float(np.max(np.maximum(below, above)))
            bad = int(np.count_nonzero(np.maximum(below, above) > tolerance))
            violations += bad
            max_violation = max(max_violation, worst)
            finite_gap = high - low
            max_gap = max(max_gap, float(np.max(finite_gap)))
            gap_total += float(np.sum(finite_gap))
            pairs += exact.shape[0]
        return OracleCertificate(
            landmarks=len(self._landmarks),
            sampled_sources=len(source_indices),
            pairs_checked=pairs,
            violations=violations,
            max_violation=max_violation,
            max_gap=max_gap,
            mean_gap=gap_total / pairs if pairs else 0.0,
            tolerance=tolerance,
        )

    def __repr__(self) -> str:
        return (
            f"LandmarkOracle(landmarks={len(self._landmarks)}, "
            f"nodes={self._metric.size})"
        )
