"""Topology generators.

Structured topologies (paths, cycles, stars, trees, grids), random models
commonly used for wide-area networks (Erdos-Renyi, random geometric,
Waxman), and the special instance families the paper's appendix uses
(the "broom" of Figure 1, caterpillars, the general-metric gap star).

Every generator returns a :class:`repro.network.graph.Network` with unit
capacities unless stated otherwise; capacity *policies* for experiments
live at the bottom of this module.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from .._compat import solver_api
from .._validation import check_integer_in_range, check_positive, check_probability
from ..exceptions import ValidationError
from .graph import Network, Node

__all__ = [
    "path_network",
    "cycle_network",
    "star_network",
    "complete_network",
    "grid_network",
    "balanced_tree_network",
    "erdos_renyi_network",
    "random_geometric_network",
    "waxman_network",
    "barabasi_albert_network",
    "fat_tree_network",
    "ring_of_clusters_network",
    "broom_network",
    "caterpillar_network",
    "two_cluster_network",
    "uniform_capacities",
    "proportional_capacities",
    "random_capacities",
]


def path_network(n: int, *, length: float = 1.0) -> Network:
    """A path ``v0 - v1 - ... - v_{n-1}`` with uniform edge lengths.

    The NP-hardness reduction of Theorem 3.6 embeds scheduling instances
    on exactly this topology.
    """
    check_integer_in_range(n, "n", low=1)
    check_positive(length, "length")
    edges = [(i, i + 1, length) for i in range(n - 1)]
    return Network(range(n), edges, name=f"path({n})")


def cycle_network(n: int, *, length: float = 1.0) -> Network:
    """A cycle on ``n >= 3`` nodes with uniform edge lengths."""
    check_integer_in_range(n, "n", low=3)
    check_positive(length, "length")
    edges = [(i, (i + 1) % n, length) for i in range(n)]
    return Network(range(n), edges, name=f"cycle({n})")


def star_network(n: int, *, length: float = 1.0) -> Network:
    """A star: node 0 is the hub, nodes ``1..n-1`` are leaves."""
    check_integer_in_range(n, "n", low=1)
    check_positive(length, "length")
    edges = [(0, i, length) for i in range(1, n)]
    return Network(range(n), edges, name=f"star({n})")


def complete_network(n: int, *, length: float = 1.0) -> Network:
    """The complete graph (uniform metric) on ``n`` nodes."""
    check_integer_in_range(n, "n", low=1)
    check_positive(length, "length")
    edges = [(i, j, length) for i in range(n) for j in range(i + 1, n)]
    return Network(range(n), edges, name=f"complete({n})")


def grid_network(rows: int, columns: int, *, length: float = 1.0) -> Network:
    """A 2-D lattice with 4-neighbor connectivity; nodes are ``(r, c)``."""
    check_integer_in_range(rows, "rows", low=1)
    check_integer_in_range(columns, "columns", low=1)
    check_positive(length, "length")
    nodes = [(r, c) for r in range(rows) for c in range(columns)]
    edges = []
    for r, c in nodes:
        if r + 1 < rows:
            edges.append(((r, c), (r + 1, c), length))
        if c + 1 < columns:
            edges.append(((r, c), (r, c + 1), length))
    return Network(nodes, edges, name=f"lattice({rows}x{columns})")


def balanced_tree_network(branching: int, height: int, *, length: float = 1.0) -> Network:
    """A complete ``branching``-ary tree of the given height (heap labels)."""
    check_integer_in_range(branching, "branching", low=1)
    check_integer_in_range(height, "height", low=0)
    check_positive(length, "length")
    count = sum(branching**level for level in range(height + 1))
    edges = []
    for node in range(1, count):
        parent = (node - 1) // branching
        edges.append((parent, node, length))
    return Network(range(count), edges, name=f"tree(b={branching},h={height})")


def _connect_if_needed(
    n: int, edges: list[tuple[int, int, float]], rng: np.random.Generator, length: float
) -> list[tuple[int, int, float]]:
    """Add minimum random edges to make the node set connected."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v, _ in edges:
        parent[find(u)] = find(v)
    roots = sorted({find(i) for i in range(n)})
    extra = list(edges)
    while len(roots) > 1:
        a_root, b_root = roots[0], roots[1]
        members_a = [i for i in range(n) if find(i) == a_root]
        members_b = [i for i in range(n) if find(i) == b_root]
        u = int(rng.choice(members_a))
        v = int(rng.choice(members_b))
        extra.append((u, v, length))
        parent[find(u)] = find(v)
        roots = sorted({find(i) for i in range(n)})
    return extra


def erdos_renyi_network(
    n: int,
    p: float,
    *,
    rng: np.random.Generator,
    length_range: tuple[float, float] = (1.0, 1.0),
) -> Network:
    """A connected Erdos-Renyi ``G(n, p)`` graph with random edge lengths.

    Edges not sampled by the model are added minimally (random
    spanning connections) so the result is always connected — the paper
    assumes finite distances between all pairs.
    """
    check_integer_in_range(n, "n", low=1)
    check_probability(p, "p")
    low, high = length_range
    check_positive(low, "length_range[0]")
    if high < low:
        raise ValidationError("length_range must satisfy low <= high")

    def draw_length() -> float:
        return float(rng.uniform(low, high)) if high > low else low

    edges = [
        (i, j, draw_length())
        for i, j in itertools.combinations(range(n), 2)
        if rng.random() < p
    ]
    edges = _connect_if_needed(n, edges, rng, draw_length())
    return Network(range(n), edges, name=f"er({n},{p:g})")


def random_geometric_network(
    n: int,
    radius: float,
    *,
    rng: np.random.Generator,
    scale: float = 1.0,
) -> Network:
    """Random geometric graph on the unit square; edge length = Euclidean
    distance times *scale*, connecting points within *radius*.

    This is the stand-in for "nodes spread over a wide-area network":
    lengths are real latencies in arbitrary units and honor the triangle
    inequality by construction.
    """
    check_integer_in_range(n, "n", low=1)
    check_positive(radius, "radius")
    check_positive(scale, "scale")
    points = rng.random((n, 2))
    edges: list[tuple[int, int, float]] = []
    if n <= _GEOMETRIC_PAIRWISE_CUTOFF:
        for i, j in itertools.combinations(range(n), 2):
            distance = float(np.linalg.norm(points[i] - points[j]))
            if distance <= radius:
                edges.append((i, j, max(distance, 1e-9) * scale))
    else:
        edges = _geometric_edges_blocked(points, radius, scale)
    fallback = max(radius, 0.05) * scale
    edges = _connect_if_needed(n, edges, rng, fallback)
    return Network(range(n), edges, name=f"geometric({n},r={radius:g})")


#: Above this node count the per-pair Python loop is replaced by the
#: blocked numpy sweep.  The cutoff keeps every pre-existing seeded
#: instance (tests, BENCH_3.json cases, all <= a few hundred nodes) on
#: the original code path, so their edge lists — and every checksum
#: derived from them — stay bit-for-bit identical.
_GEOMETRIC_PAIRWISE_CUTOFF = 512

#: Row-block size of the vectorized sweep: peak temporary memory is
#: ``3 * block * n * 8`` bytes (~120 MB at n = 10^5).
_GEOMETRIC_BLOCK_ROWS = 512


def _geometric_edges_blocked(
    points: np.ndarray, radius: float, scale: float
) -> list[tuple[int, int, float]]:
    """All within-radius edges, vectorized in row blocks.

    Emits pairs in the same lexicographic ``i < j`` order as the
    per-pair loop.  Only consumes *points* — no RNG — so connectivity
    patching afterwards sees the identical generator state either way.
    Lengths can differ from ``np.linalg.norm`` in the last ulp (BLAS
    dot products may fuse multiply-adds), which is why the per-pair
    loop — not this sweep — serves every instance below the cutoff.
    """
    n = points.shape[0]
    x = points[:, 0]
    y = points[:, 1]
    edges: list[tuple[int, int, float]] = []
    for start in range(0, n, _GEOMETRIC_BLOCK_ROWS):
        stop = min(start + _GEOMETRIC_BLOCK_ROWS, n)
        dx = x[start:stop, None] - x[None, :]
        dy = y[start:stop, None] - y[None, :]
        distances = np.sqrt(dx * dx + dy * dy)
        # Upper triangle only: global pair (i, j) with j > i.
        rows, cols = np.nonzero(distances <= radius)
        keep = cols > rows + start
        rows = rows[keep]
        cols = cols[keep]
        lengths = np.maximum(distances[rows, cols], 1e-9) * scale
        edges.extend(
            (int(i) + start, int(j), float(length))
            for i, j, length in zip(rows, cols, lengths)
        )
    return edges


def waxman_network(
    n: int,
    *,
    rng: np.random.Generator,
    alpha: float = 0.4,
    beta: float = 0.4,
    scale: float = 1.0,
) -> Network:
    """Waxman's classic random-internet model.

    Points are uniform on the unit square; an edge ``(i, j)`` appears with
    probability ``alpha * exp(-d_ij / (beta * L))`` where ``L`` is the
    maximum inter-point distance, with edge length equal to the Euclidean
    distance.  Connectivity is patched in like the other random models.
    """
    check_integer_in_range(n, "n", low=1)
    check_probability(alpha, "alpha")
    check_positive(beta, "beta")
    check_positive(scale, "scale")
    points = rng.random((n, 2))
    pairwise = [
        (i, j, float(np.linalg.norm(points[i] - points[j])))
        for i, j in itertools.combinations(range(n), 2)
    ]
    max_distance = max((d for _, _, d in pairwise), default=1.0) or 1.0
    edges = [
        (i, j, max(d, 1e-9) * scale)
        for i, j, d in pairwise
        if rng.random() < alpha * math.exp(-d / (beta * max_distance))
    ]
    edges = _connect_if_needed(n, edges, rng, 0.5 * max_distance * scale)
    return Network(range(n), edges, name=f"waxman({n})")


def barabasi_albert_network(
    n: int,
    attachments: int,
    *,
    rng: np.random.Generator,
    length_range: tuple[float, float] = (1.0, 1.0),
) -> Network:
    """Barabasi-Albert preferential attachment (Internet-like degrees).

    Each arriving node attaches to *attachments* existing nodes chosen
    with probability proportional to their current degree.  Always
    connected by construction.
    """
    check_integer_in_range(n, "n", low=2)
    check_integer_in_range(attachments, "attachments", low=1, high=n - 1)
    low, high = length_range
    check_positive(low, "length_range[0]")
    if high < low:
        raise ValidationError("length_range must satisfy low <= high")

    def draw_length() -> float:
        return float(rng.uniform(low, high)) if high > low else low

    edges: list[tuple[int, int, float]] = []
    # Degree-weighted sampling via the repeated-endpoints trick.
    endpoints: list[int] = []
    start = attachments + 1
    for i in range(start):
        for j in range(i + 1, start):
            edges.append((i, j, draw_length()))
            endpoints.extend((i, j))
    for node in range(start, n):
        targets: set[int] = set()
        while len(targets) < attachments:
            targets.add(int(endpoints[int(rng.integers(len(endpoints)))]))
        for target in targets:
            edges.append((node, target, draw_length()))
            endpoints.extend((node, target))
    return Network(range(n), edges, name=f"ba({n},m={attachments})")


def fat_tree_network(pods: int, *, core_length: float = 4.0, pod_length: float = 1.0) -> Network:
    """A simplified datacenter fat tree: one core switch, *pods* pod
    switches, and ``pods`` hosts per pod.

    Host-to-host latency is 2 hops inside a pod and 2 pod links + 2 core
    links across pods — the canonical hierarchy placements must respect.
    """
    check_integer_in_range(pods, "pods", low=1)
    check_positive(core_length, "core_length")
    check_positive(pod_length, "pod_length")
    nodes: list[Node] = ["core"]
    edges: list[tuple[Node, Node, float]] = []
    for pod in range(pods):
        switch = ("pod", pod)
        nodes.append(switch)
        edges.append(("core", switch, core_length))
        for host in range(pods):
            leaf = ("host", pod, host)
            nodes.append(leaf)
            edges.append((switch, leaf, pod_length))
    return Network(nodes, edges, name=f"fat_tree({pods})")


def ring_of_clusters_network(
    clusters: int,
    cluster_size: int,
    *,
    local_length: float = 1.0,
    ring_length: float = 10.0,
) -> Network:
    """Complete clusters whose gateways form a ring (regional WAN motif)."""
    check_integer_in_range(clusters, "clusters", low=3)
    check_integer_in_range(cluster_size, "cluster_size", low=1)
    check_positive(local_length, "local_length")
    check_positive(ring_length, "ring_length")
    nodes: list[Node] = []
    edges: list[tuple[Node, Node, float]] = []
    for c in range(clusters):
        members = [(c, i) for i in range(cluster_size)]
        nodes.extend(members)
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                edges.append((members[i], members[j], local_length))
    for c in range(clusters):
        edges.append(((c, 0), ((c + 1) % clusters, 0), ring_length))
    return Network(
        nodes, edges, name=f"ring_of_clusters({clusters}x{cluster_size})"
    )


def broom_network(k: int) -> Network:
    """The Figure 1 instance: ``k^2`` nodes showing the sqrt(n) LP gap.

    Node 0 is ``v0``.  A unit-length path ``v0 - p1 - ... - pk`` supplies
    one node at each distance ``1..k``, and ``k^2 - k - 1`` extra leaves
    hang off ``v0`` at distance 1.  The resulting distance multiset from
    ``v0`` is ``{0} + {1 x (k^2 - k)} + {2, 3, .., k}``, exactly as in
    Appendix A.
    """
    check_integer_in_range(k, "k", low=2)
    n = k * k
    # Nodes: 0 = v0; 1..k = path nodes p1..pk; k+1..n-1 = star leaves.
    edges: list[tuple[int, int, float]] = [(i, i + 1, 1.0) for i in range(k)]
    edges.extend((0, leaf, 1.0) for leaf in range(k + 1, n))
    return Network(range(n), edges, name=f"broom(k={k})")


def caterpillar_network(spine: int, legs_per_node: int, *, length: float = 1.0) -> Network:
    """A caterpillar: a path spine with *legs_per_node* leaves per spine node."""
    check_integer_in_range(spine, "spine", low=1)
    check_integer_in_range(legs_per_node, "legs_per_node", low=0)
    check_positive(length, "length")
    nodes: list[Node] = [("s", i) for i in range(spine)]
    edges = [(("s", i), ("s", i + 1), length) for i in range(spine - 1)]
    for i in range(spine):
        for leg in range(legs_per_node):
            leaf = ("l", i, leg)
            nodes.append(leaf)
            edges.append((("s", i), leaf, length))
    return Network(nodes, edges, name=f"caterpillar({spine},{legs_per_node})")


def two_cluster_network(
    cluster_size: int, *, local_length: float = 1.0, bridge_length: float = 10.0
) -> Network:
    """Two dense clusters joined by one long bridge.

    The canonical wide-area motif (two datacenters): placements that
    straddle the bridge pay its latency on every max-delay access, so
    this topology separates clustering-aware placements from naive ones.
    """
    check_integer_in_range(cluster_size, "cluster_size", low=1)
    check_positive(local_length, "local_length")
    check_positive(bridge_length, "bridge_length")
    nodes = [("a", i) for i in range(cluster_size)] + [("b", i) for i in range(cluster_size)]
    edges: list[tuple[Node, Node, float]] = []
    for side in ("a", "b"):
        for i in range(cluster_size):
            for j in range(i + 1, cluster_size):
                edges.append(((side, i), (side, j), local_length))
    edges.append((("a", 0), ("b", 0), bridge_length))
    return Network(nodes, edges, name=f"two_cluster({cluster_size})")


# -- capacity policies ---------------------------------------------------------------


@solver_api(aliases={"value": "capacity"})
def uniform_capacities(network: Network, capacity: float) -> Network:
    """Give every node capacity *capacity*.

    The parameter was called ``value`` before the API unification;
    calling with ``value=`` still works but warns.
    """
    return network.with_capacities(float(capacity))


def proportional_capacities(network: Network, total: float) -> Network:
    """Split *total* capacity evenly across nodes (models a fixed fleet
    budget spread over the deployment)."""
    check_positive(total, "total")
    return network.with_capacities(total / network.size)


def random_capacities(
    network: Network,
    *,
    rng: np.random.Generator,
    low: float,
    high: float,
) -> Network:
    """Independent uniform capacities in ``[low, high]`` (heterogeneous
    fleets: the paper's PDA-next-to-server scenario)."""
    if low < 0 or high < low:
        raise ValidationError("need 0 <= low <= high for random capacities")
    values = {node: float(rng.uniform(low, high)) for node in network.nodes}
    return network.with_capacities(values)
