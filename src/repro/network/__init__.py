"""Physical-network substrate: graphs, metrics, and topology generators."""

from .generators import (
    balanced_tree_network,
    barabasi_albert_network,
    broom_network,
    caterpillar_network,
    complete_network,
    cycle_network,
    erdos_renyi_network,
    fat_tree_network,
    grid_network,
    path_network,
    proportional_capacities,
    random_capacities,
    random_geometric_network,
    ring_of_clusters_network,
    star_network,
    two_cluster_network,
    uniform_capacities,
    waxman_network,
)
from .graph import Network, Node
from .metric import Metric, dijkstra

__all__ = [
    "Metric",
    "Network",
    "Node",
    "balanced_tree_network",
    "barabasi_albert_network",
    "broom_network",
    "caterpillar_network",
    "complete_network",
    "cycle_network",
    "dijkstra",
    "erdos_renyi_network",
    "fat_tree_network",
    "grid_network",
    "path_network",
    "proportional_capacities",
    "random_capacities",
    "random_geometric_network",
    "ring_of_clusters_network",
    "star_network",
    "two_cluster_network",
    "uniform_capacities",
    "waxman_network",
]
