"""Shortest-path metrics over networks.

The placement algorithms never touch edges directly: everything is
phrased in terms of the metric ``d(u, v)`` induced by shortest paths.
This module computes that metric with a self-contained binary-heap
Dijkstra (cross-checked against networkx in the test suite), wraps it in
the :class:`Metric` value type, and provides the metric-space utilities
the paper's proofs lean on (triangle-inequality audits, medians, nodes
sorted by distance from a source).
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Mapping, Sequence

import numpy as np
from numpy.typing import NDArray

from .._validation import contract, cost
from ..exceptions import ValidationError
from ..obs.trace import span
from .graph import Network, Node

__all__ = ["dijkstra", "dijkstra_batched", "Metric"]


@cost("n * log(n) + m * log(n)", scale="large")
def dijkstra(adjacency: Mapping[Node, Mapping[Node, float]], source: Node) -> dict[Node, float]:
    """Single-source shortest-path distances by Dijkstra's algorithm.

    Parameters
    ----------
    adjacency:
        ``{u: {v: length}}`` with symmetric entries for undirected graphs.
    source:
        Start node; must be a key of *adjacency*.

    Returns
    -------
    dict
        Distance from *source* to every **reachable** node (unreachable
        nodes are absent, letting callers distinguish disconnection).

    Examples
    --------
    >>> dijkstra({0: {1: 2.0}, 1: {0: 2.0, 2: 1.0}, 2: {1: 1.0}}, 0)
    {0: 0.0, 1: 2.0, 2: 3.0}
    """
    if source not in adjacency:
        raise ValidationError(f"source {source!r} is not in the graph")
    distances: dict[Node, float] = {source: 0.0}
    settled: set[Node] = set()
    heap: list[tuple[float, int, Node]] = [(0.0, 0, source)]
    counter = 1  # tie-breaker so heterogeneous nodes never get compared
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        for neighbor, length in adjacency[node].items():
            candidate = dist + length
            if candidate < distances.get(neighbor, math.inf):
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, counter, neighbor))
                counter += 1
    return distances


@contract(returns={"shape": ("k", "n"), "dtype": "float", "nonnegative": True})
@cost("n**2 * log(n) + n * m * log(n)")
def dijkstra_batched(
    adjacency: Mapping[Node, Mapping[Node, float]],
    sources: Sequence[Node] | None = None,
) -> NDArray[np.float64]:
    """Multi-source shortest-path distances in one batched call.

    The batched entry point behind :meth:`Metric.from_network`: instead
    of running one Python binary-heap per source, the adjacency is
    compiled once into a sparse matrix and handed to scipy's C
    implementation of Dijkstra for every source at once.  The scalar
    :func:`dijkstra` is retained as the paper-faithful reference and the
    two are cross-checked in the test suite.

    Parameters
    ----------
    adjacency:
        ``{u: {v: length}}`` with symmetric entries for undirected
        graphs (the same format :func:`dijkstra` accepts).
    sources:
        Sources to run from, defaulting to every node.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(len(sources), len(adjacency))`` whose columns
        follow the adjacency's key order.  Unreachable pairs are
        ``math.inf`` — the batched counterpart of the scalar path's
        *absent* dictionary entries.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _dijkstra_csgraph

    nodes = list(adjacency)
    if not nodes:
        raise ValidationError("adjacency must contain at least one node")
    index = {v: i for i, v in enumerate(nodes)}
    if sources is None:
        source_indices = list(range(len(nodes)))
    else:
        source_indices = []
        for source in sources:
            if source not in index:
                raise ValidationError(f"source {source!r} is not in the graph")
            source_indices.append(index[source])
        if not source_indices:
            raise ValidationError("at least one source is required")
    rows: list[int] = []
    cols: list[int] = []
    data: list[float] = []
    for u, neighbors in adjacency.items():
        for v, length in neighbors.items():
            if v not in index:
                raise ValidationError(
                    f"adjacency of {u!r} references unknown node {v!r}"
                )
            rows.append(index[u])
            cols.append(index[v])
            data.append(float(length))
    graph = csr_matrix((data, (rows, cols)), shape=(len(nodes), len(nodes)))
    # directed=True honours the entries exactly as given, matching the
    # scalar reference's semantics for (symmetric) adjacencies.
    with span("metric.dijkstra", nodes=len(nodes), sources=len(source_indices)):
        distances = _dijkstra_csgraph(graph, directed=True, indices=source_indices)
    return np.atleast_2d(np.asarray(distances, dtype=float))


class Metric:
    """A finite metric space over an ordered node set.

    Stores the full ``n x n`` distance matrix.  Construction from a
    network runs Dijkstra from every node (``O(n (m + n) log n)``).
    Dense storage pays off when every placement algorithm consumes
    all-pairs distances repeatedly *and* ``n`` stays in the hundreds; at
    the 10^3-10^5 nodes the large-scale paths target, the ``O(n^2)``
    matrix is the bottleneck and
    :class:`repro.network.lazymetric.LazyMetric` (same
    :class:`~repro.network.lazymetric.MetricView` surface, rows on
    demand behind an LRU) is the right choice — see
    ``docs/performance.md``.
    """

    __slots__ = ("_nodes", "_index", "_matrix")

    def __init__(self, nodes: Sequence[Node], matrix: NDArray[np.float64]) -> None:
        self._nodes = tuple(nodes)
        array = np.asarray(matrix, dtype=float)
        n = len(self._nodes)
        if array.shape != (n, n):
            raise ValidationError(
                f"distance matrix must be {n}x{n}, got {array.shape}"
            )
        if not np.all(np.isfinite(array)):
            raise ValidationError("distance matrix contains non-finite entries")
        if np.any(array < 0):
            raise ValidationError("distances must be non-negative")
        if np.any(np.abs(np.diag(array)) > 1e-12):
            raise ValidationError("self-distances must be zero")
        if not np.allclose(array, array.T, atol=1e-9):
            raise ValidationError("distance matrix must be symmetric")
        self._index = {v: i for i, v in enumerate(self._nodes)}
        self._matrix = array
        self._matrix.setflags(write=False)

    @classmethod
    def from_network(cls, network: Network) -> "Metric":
        """All-pairs shortest-path metric of *network* (must be connected).

        Uses the batched multi-source Dijkstra (one sparse-graph call for
        all sources); the dense matrix is materialized exactly once per
        network — :meth:`repro.network.graph.Network.metric` caches it and
        every evaluator shares the cached instance.
        """
        nodes = network.nodes
        adjacency = {u: {v: network.edge_length(u, v) for v in network.neighbors(u)} for u in nodes}
        matrix = dijkstra_batched(adjacency)
        unreachable = ~np.isfinite(matrix)
        if np.any(unreachable):
            source_row = int(np.argwhere(unreachable)[0][0])
            source = nodes[source_row]
            missing = [nodes[int(j)] for j in np.nonzero(unreachable[source_row])[0]]
            raise ValidationError(
                f"network {network.name!r} is disconnected: {source!r} cannot "
                f"reach {missing[:5]!r}"
            )
        return cls(nodes, matrix)

    # -- accessors ---------------------------------------------------------------

    @property
    def nodes(self) -> tuple[Node, ...]:
        return self._nodes

    @property
    def size(self) -> int:
        return len(self._nodes)

    @property
    def matrix(self) -> NDArray[np.float64]:
        """The read-only distance matrix in node order."""
        return self._matrix

    def node_index(self, node: Node) -> int:
        try:
            return self._index[node]
        except KeyError:
            raise ValidationError(f"{node!r} is not in the metric space") from None

    def distance(self, u: Node, v: Node) -> float:
        return float(self._matrix[self.node_index(u), self.node_index(v)])

    def distances_from(self, source: Node) -> NDArray[np.float64]:
        """Row of distances from *source*, in node order."""
        row: NDArray[np.float64] = self._matrix[self.node_index(source)]
        return row

    def row_block(self, start: int, stop: int) -> NDArray[np.float64]:
        """Rows ``start:stop`` of the distance matrix (a zero-copy view).

        Part of the :class:`~repro.network.lazymetric.MetricView`
        surface: evaluators that stream a lazy metric block-by-block get
        the identical values here without any copying.
        """
        if not (0 <= start <= stop <= self.size):
            raise ValidationError(
                f"row block [{start}, {stop}) out of range for size {self.size}"
            )
        block: NDArray[np.float64] = self._matrix[start:stop]
        return block

    def submatrix(
        self, sources: Sequence[Node], targets: Sequence[Node] | None = None
    ) -> NDArray[np.float64]:
        """Distances from *sources* to *targets* (default: all nodes)."""
        source_indices = np.asarray(
            [self.node_index(v) for v in sources], dtype=np.intp
        )
        rows: NDArray[np.float64] = self._matrix[source_indices]
        if targets is None:
            return rows
        target_indices = np.asarray(
            [self.node_index(v) for v in targets], dtype=np.intp
        )
        return rows[:, target_indices]

    # -- metric-space utilities -----------------------------------------------------

    def verify_triangle_inequality(self, tolerance: float = 1e-9) -> None:
        """Assert ``d(u, w) <= d(u, v) + d(v, w)`` for all triples.

        Shortest-path metrics satisfy this by construction; the check
        exists for metrics built from raw matrices and for tests.
        """
        d = self._matrix
        n = self.size
        for k in range(n):
            # Vectorized check of d <= d[:, k, None] + d[None, k, :].
            via = d[:, k][:, None] + d[k, :][None, :]
            if np.any(d > via + tolerance):
                bad = np.argwhere(d > via + tolerance)[0]
                raise ValidationError(
                    f"triangle inequality violated: d({self._nodes[bad[0]]!r}, "
                    f"{self._nodes[bad[1]]!r}) > via {self._nodes[k]!r}"
                )

    def eccentricity(self, node: Node) -> float:
        """Maximum distance from *node* to any other node."""
        return float(self.distances_from(node).max())

    def diameter(self) -> float:
        return float(self._matrix.max())

    def median(self) -> Node:
        """The 1-median: a node minimizing the sum of distances to all
        nodes (the placement target of Lin's single-node baseline)."""
        sums = self._matrix.sum(axis=1)
        return self._nodes[int(np.argmin(sums))]

    def nodes_by_distance(self, source: Node) -> list[Node]:
        """All nodes sorted by increasing distance from *source*.

        This is the ordering ``d_0 <= d_1 <= ... <= d_{n-1}`` that
        Section 3.3 renames nodes into; ties are broken by node index so
        the order is deterministic.
        """
        row = self.distances_from(source)
        order = np.lexsort((np.arange(self.size), row))
        return [self._nodes[int(i)] for i in order]

    def average_distance_to(self, target: Node) -> float:
        """``Avg_v d(v, target)`` over all nodes ``v`` (uniform clients)."""
        return float(self.distances_from(target).mean())

    def k_centers(self, k: int) -> list[Node]:
        """Greedy farthest-point k-center selection.

        Starts from the 1-median and repeatedly adds the node farthest
        from the current centers — the classical 2-approximation for the
        k-center objective.  Used to prune the Theorem 1.2 relay-candidate
        sweep: a small, well-spread candidate set almost always contains
        a near-optimal relay node (measured in the E12b ablation).
        """
        if k < 1:
            raise ValidationError("k_centers requires k >= 1")
        k = min(k, self.size)
        centers = [self.median()]
        center_indices = [self.node_index(centers[0])]
        while len(centers) < k:
            distance_to_centers = self._matrix[:, center_indices].min(axis=1)
            farthest = int(np.argmax(distance_to_centers))
            if distance_to_centers[farthest] <= 0:
                break  # all remaining nodes coincide with a center
            centers.append(self._nodes[farthest])
            center_indices.append(farthest)
        return centers

    def __repr__(self) -> str:
        return f"Metric(nodes={self.size}, diameter={self.diameter():.4g})"
