"""repro — a reproduction of *Quorum Placement in Networks to Minimize
Access Delays* (Gupta, Maggs, Oprea, Reiter; PODC 2005).

The library implements the paper end to end:

* **Quorum systems** (:mod:`repro.quorums`): the :class:`QuorumSystem` /
  :class:`AccessStrategy` types, the classical constructions (Grid,
  Majority, projective planes, trees, crumbling walls, ...), and the
  Naor-Wool load-optimal strategy LP.
* **Networks** (:mod:`repro.network`): capacitated weighted graphs, exact
  shortest-path metrics, and topology generators including the paper's
  Figure 1 "broom".
* **Placement algorithms** (:mod:`repro.core`): the Theorem 1.2 QPP
  solver, the §3.3 single-source LP-rounding algorithm (Theorem 3.7),
  the §4 optimal Grid/Majority layouts (Theorem 1.3), the §5 total-delay
  algorithm (Theorem 1.4), Lemma 3.1 relay analysis, exact brute-force
  optima, baselines, and the Theorem 3.6 NP-hardness reduction.
* **Substrates**: a declarative LP layer (:mod:`repro.lp`), Generalized
  Assignment with Shmoys-Tardos rounding (:mod:`repro.gap`), and
  precedence scheduling (:mod:`repro.scheduling`).
* **Analysis & experiments** (:mod:`repro.analysis`,
  :mod:`repro.experiments`): Appendix A integrality-gap instances,
  result tables, workload suites, and an access simulator.
* **Observability** (:mod:`repro.obs`): structured tracing, a process
  metrics registry, and solver telemetry (``repro profile``,
  ``docs/observability.md``).

Quickstart::

    import numpy as np
    from repro.quorums import grid, AccessStrategy
    from repro.network import random_geometric_network
    from repro.core import solve_qpp

    net = random_geometric_network(12, 0.5, rng=np.random.default_rng(0))
    net = net.with_capacities(1.0)
    system = grid(3)
    result = solve_qpp(system, AccessStrategy.uniform(system), network=net, alpha=2.0)
    print(result.objective, result.approximation_factor)
"""

from . import analysis, core, experiments, gap, lp, network, obs, quorums, scheduling
from .core import (
    Placement,
    Provenance,
    QPPResult,
    SolveResult,
    SSQPPResult,
    TotalDelayResult,
    average_max_delay,
    average_total_delay,
    optimal_grid_placement,
    optimal_majority_placement,
    relay_analysis,
    solve_qpp,
    solve_ssqpp,
    solve_total_delay,
)
from .exceptions import (
    CapacityError,
    InfeasibleError,
    IntersectionError,
    ParallelSafetyError,
    ReproError,
    SolverError,
    UnboundedError,
    ValidationError,
)
from .network import Network
from .quorums import AccessStrategy, QuorumSystem

__version__ = "1.0.0"

__all__ = [
    "AccessStrategy",
    "CapacityError",
    "InfeasibleError",
    "IntersectionError",
    "Network",
    "ParallelSafetyError",
    "Placement",
    "Provenance",
    "QPPResult",
    "QuorumSystem",
    "ReproError",
    "SSQPPResult",
    "SolveResult",
    "SolverError",
    "TotalDelayResult",
    "UnboundedError",
    "ValidationError",
    "analysis",
    "average_max_delay",
    "average_total_delay",
    "core",
    "experiments",
    "gap",
    "lp",
    "network",
    "obs",
    "optimal_grid_placement",
    "optimal_majority_placement",
    "quorums",
    "relay_analysis",
    "scheduling",
    "solve_qpp",
    "solve_ssqpp",
    "solve_total_delay",
    "__version__",
]
