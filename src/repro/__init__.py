"""repro — a reproduction of *Quorum Placement in Networks to Minimize
Access Delays* (Gupta, Maggs, Oprea, Reiter; PODC 2005).

The library implements the paper end to end:

* **Quorum systems** (:mod:`repro.quorums`): the :class:`QuorumSystem` /
  :class:`AccessStrategy` types, the classical constructions (Grid,
  Majority, projective planes, trees, crumbling walls, ...), and the
  Naor-Wool load-optimal strategy LP.
* **Networks** (:mod:`repro.network`): capacitated weighted graphs, exact
  shortest-path metrics (dense :class:`Metric` and on-demand
  :class:`LazyMetric`, both satisfying :class:`MetricView`), and topology
  generators including the paper's Figure 1 "broom".
* **Placement algorithms** (:mod:`repro.core`): the Theorem 1.2 QPP
  solver, the §3.3 single-source LP-rounding algorithm (Theorem 3.7),
  the §4 optimal Grid/Majority layouts (Theorem 1.3), the §5 total-delay
  algorithm (Theorem 1.4), Lemma 3.1 relay analysis, exact brute-force
  optima, baselines, and the Theorem 3.6 NP-hardness reduction.
* **Substrates**: a declarative LP layer (:mod:`repro.lp`), Generalized
  Assignment with Shmoys-Tardos rounding (:mod:`repro.gap`), and
  precedence scheduling (:mod:`repro.scheduling`).
* **Serving** (:mod:`repro.serve`): placement-as-a-service — a
  versioned placement cache, drift-triggered incremental re-solve, and
  the frozen ``repro-serve-request``/``repro-serve-response`` JSONL
  protocol behind ``repro serve`` (``docs/serving.md``).
* **Analysis & experiments** (:mod:`repro.analysis`,
  :mod:`repro.experiments`): Appendix A integrality-gap instances,
  result tables, workload suites, and an access simulator.
* **Observability** (:mod:`repro.obs`): structured tracing, a process
  metrics registry, and solver telemetry (``repro profile``,
  ``docs/observability.md``).

Stable API
----------
This module is the library's stable surface: every solver entry point
(the 21 ``solve_*`` / ``optimal_*`` functions), the core types
(:class:`Network`, :class:`Metric`, :class:`MetricView`,
:class:`Placement`, :class:`QuorumSystem`, :class:`AccessStrategy`),
the :class:`SolveResult` family, and the exception hierarchy are all
importable directly from ``repro`` — ``__all__`` below is the
authoritative list.  Deep imports (``repro.core.qpp.solve_qpp``)
continue to work but are not part of the stability contract.

Quickstart::

    import numpy as np
    from repro import AccessStrategy, solve_qpp
    from repro.network import random_geometric_network
    from repro.quorums import grid

    net = random_geometric_network(12, 0.5, rng=np.random.default_rng(0))
    net = net.with_capacities(1.0)
    system = grid(3)
    result = solve_qpp(system, AccessStrategy.uniform(system), network=net, alpha=2.0)
    print(result.objective, result.approximation_factor)
"""

from . import (
    analysis,
    core,
    experiments,
    gap,
    lp,
    network,
    obs,
    quorums,
    scheduling,
    serve,
)
from .analysis import GapInstance, solve_gap_instance_lp
from .core import (
    ExactPlacement,
    GridLayoutResult,
    MajorityLayoutResult,
    PartialDeployment,
    Placement,
    Provenance,
    QPPResult,
    RWPlacementResult,
    ScalarizedResult,
    SolveResult,
    SSQPPResult,
    TotalDelayResult,
    average_max_delay,
    average_total_delay,
    optimal_grid_placement,
    optimal_majority_placement,
    per_client_expected_max_delay,
    relay_analysis,
    solve_partial_deployment,
    solve_partial_deployment_exact,
    solve_qpp,
    solve_qpp_exact,
    solve_rw_placement,
    solve_rw_ssqpp,
    solve_scalarized_placement,
    solve_ssqpp,
    solve_ssqpp_exact,
    solve_total_delay,
    solve_total_delay_exact,
    warm_candidates,
)
from .exceptions import (
    CapacityError,
    InfeasibleError,
    IntersectionError,
    ParallelSafetyError,
    ReproError,
    SolverError,
    UnboundedError,
    ValidationError,
)
from .gap import (
    FractionalAssignment,
    GAPSolution,
    GreedyAssignment,
    solve_gap,
    solve_gap_exact,
    solve_gap_greedy,
    solve_gap_lp,
)
from .lp import Solution, solve_model
from .network import LazyMetric, Metric, MetricView, Network
from .quorums import (
    AccessStrategy,
    OptimalStrategyResult,
    QuorumSystem,
    optimal_strategy,
)
from .scheduling import ExactSchedule, solve_scheduling_exact

__version__ = "1.0.0"

__all__ = [
    "AccessStrategy",
    "CapacityError",
    "ExactPlacement",
    "ExactSchedule",
    "FractionalAssignment",
    "GAPSolution",
    "GapInstance",
    "GreedyAssignment",
    "GridLayoutResult",
    "InfeasibleError",
    "IntersectionError",
    "LazyMetric",
    "MajorityLayoutResult",
    "Metric",
    "MetricView",
    "Network",
    "OptimalStrategyResult",
    "ParallelSafetyError",
    "PartialDeployment",
    "Placement",
    "Provenance",
    "QPPResult",
    "QuorumSystem",
    "RWPlacementResult",
    "ReproError",
    "SSQPPResult",
    "ScalarizedResult",
    "Solution",
    "SolveResult",
    "SolverError",
    "TotalDelayResult",
    "UnboundedError",
    "ValidationError",
    "__version__",
    "analysis",
    "average_max_delay",
    "average_total_delay",
    "core",
    "experiments",
    "gap",
    "lp",
    "network",
    "obs",
    "optimal_grid_placement",
    "optimal_majority_placement",
    "optimal_strategy",
    "per_client_expected_max_delay",
    "quorums",
    "relay_analysis",
    "scheduling",
    "serve",
    "solve_gap",
    "solve_gap_exact",
    "solve_gap_greedy",
    "solve_gap_instance_lp",
    "solve_gap_lp",
    "solve_model",
    "solve_partial_deployment",
    "solve_partial_deployment_exact",
    "solve_qpp",
    "solve_qpp_exact",
    "solve_rw_placement",
    "solve_rw_ssqpp",
    "solve_scalarized_placement",
    "solve_scheduling_exact",
    "solve_ssqpp",
    "solve_ssqpp_exact",
    "solve_total_delay",
    "solve_total_delay_exact",
    "warm_candidates",
]
