"""Internal validation helpers shared across the package.

These helpers keep precondition checks uniform: every public entry point
validates its inputs eagerly and raises :class:`repro.exceptions.ValidationError`
with an actionable message, rather than failing deep inside numpy/scipy
with an inscrutable traceback.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from typing import Any

from .exceptions import ValidationError

__all__ = [
    "require",
    "check_positive",
    "check_nonnegative",
    "check_probability",
    "check_probability_vector",
    "check_integer_in_range",
    "check_finite",
]

#: Tolerance used when validating probability vectors and comparing loads.
PROBABILITY_TOLERANCE = 1e-9


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with *message* unless *condition* holds."""
    if not condition:
        raise ValidationError(message)


def check_finite(value: float, name: str) -> float:
    """Validate that *value* is a finite real number and return it as float."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a real number, got {value!r}") from exc
    if not math.isfinite(result):
        raise ValidationError(f"{name} must be finite, got {result!r}")
    return result


def check_positive(value: float, name: str) -> float:
    """Validate that *value* is a finite number strictly greater than zero."""
    result = check_finite(value, name)
    if result <= 0:
        raise ValidationError(f"{name} must be positive, got {result!r}")
    return result


def check_nonnegative(value: float, name: str) -> float:
    """Validate that *value* is a finite number greater than or equal to zero."""
    result = check_finite(value, name)
    if result < 0:
        raise ValidationError(f"{name} must be non-negative, got {result!r}")
    return result


def check_probability(value: float, name: str) -> float:
    """Validate that *value* lies in the closed interval [0, 1]."""
    result = check_finite(value, name)
    if not -PROBABILITY_TOLERANCE <= result <= 1 + PROBABILITY_TOLERANCE:
        raise ValidationError(f"{name} must lie in [0, 1], got {result!r}")
    return min(max(result, 0.0), 1.0)


def check_probability_vector(values: Sequence[float], name: str) -> list[float]:
    """Validate that *values* are non-negative and sum to one.

    Returns the values normalized exactly (dividing by their sum) so that
    downstream arithmetic can rely on an exact unit total.
    """
    cleaned = [check_nonnegative(v, f"{name}[{i}]") for i, v in enumerate(values)]
    total = sum(cleaned)
    if abs(total - 1.0) > 1e-6:
        raise ValidationError(
            f"{name} must sum to 1 (got {total!r}); normalize weights with "
            "AccessStrategy.from_weights if they are unnormalized"
        )
    return [v / total for v in cleaned]


def check_integer_in_range(
    value: Any, name: str, *, low: int | None = None, high: int | None = None
) -> int:
    """Validate that *value* is an integer within the inclusive range [low, high]."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if low is not None and value < low:
        raise ValidationError(f"{name} must be >= {low}, got {value}")
    if high is not None and value > high:
        raise ValidationError(f"{name} must be <= {high}, got {value}")
    return value


def unique_items(items: Iterable[Any], name: str) -> list[Any]:
    """Return *items* as a list, raising if any item appears more than once."""
    seen: set[Any] = set()
    result: list[Any] = []
    for item in items:
        if item in seen:
            raise ValidationError(f"{name} contains duplicate item {item!r}")
        seen.add(item)
        result.append(item)
    return result
